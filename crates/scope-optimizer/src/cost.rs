//! The optimizer's *estimated* cost model and degree-of-parallelism
//! heuristic, plus the per-implementation physical property table
//! (required child partitionings, output partitioning).
//!
//! Costs are in abstract "cost units" calibrated so that typical workload
//! jobs land in the few-minutes-to-an-hour range. The model charges CPU per
//! row, IO per byte, network per byte moved, and a per-vertex startup
//! overhead — and it is *systematically wrong* in the ways §3.2/§6.3 of the
//! paper describe: it prices UDOs with one global constant, assumes uniform
//! partitioning (no skew), and never anticipates spills.
//!
//! ## Cost vectors
//!
//! Every formula is decomposed into a [`CostEstimate`] vector (rows, cpu,
//! io, net, memory, vertices) and scalarized only at comparison points via
//! [`CostWeights::scalarize`]. Under [`CostWeights::DEFAULT`] the scalar is
//! **bit-for-bit** the value the pre-vector model produced — the fold order
//! in `scalarize` and the component classification of every arm below are
//! part of that contract (see the comments on both). The frozen `classic`
//! differential oracle holds the whole pipeline to it.

use scope_ir::ids::ColId;
use scope_ir::{LogicalOp, ObservableCatalog};

use crate::estimate::{ChildEsts, LogicalEst};
use crate::physical::Partitioning;
use crate::rules::PhysImpl;

/// Degrees of parallelism the optimizer considers (SCOPE-style discrete
/// tiers; the heuristic picks the smallest tier covering the data).
pub const DOP_TIERS: [u32; 10] = [1, 2, 5, 10, 25, 50, 100, 150, 200, 250];

/// Bytes one vertex comfortably handles; drives the DOP heuristic.
pub const BYTES_PER_VERTEX: f64 = 256.0 * 1024.0 * 1024.0;

// Cost-unit constants (roughly: seconds of one vertex's work).
pub const C_IO: f64 = 1.0 / (120.0 * 1024.0 * 1024.0); // 120 MB/s sequential IO
pub const C_NET: f64 = 1.0 / (60.0 * 1024.0 * 1024.0); // 60 MB/s shuffle
pub const C_CPU_ROW: f64 = 0.4e-6; // basic per-row handling
pub const C_HASH_ROW: f64 = 1.2e-6; // hash build/probe per row
pub const C_SORT_ROW: f64 = 0.5e-6; // per row per log2(rows)
pub const C_UDO_ROW: f64 = 1.0e-6; // per unit of (assumed) UDO work
pub const C_VERTEX: f64 = 0.35; // vertex startup/scheduling overhead

/// Producer-boundary guard for row/byte estimates crossing into the cost
/// model. The estimator's output contract (see `LogicalEst::bytes`) makes
/// a non-finite or negative volume a bug, so debug builds refuse it at the
/// boundary; release builds clamp to 0.0 so one poisoned estimate yields a
/// harmless zero charge instead of NaN-poisoning every winner comparison
/// downstream (NaN never wins a strict `<`, which would silently freeze a
/// group's incumbent). Identity for every healthy value.
#[inline]
fn sane_volume(v: f64, what: &str) -> f64 {
    debug_assert!(
        v.is_finite() && v >= 0.0,
        "cost model received a {what} estimate outside [0, ∞): {v}"
    );
    clamp_volume(v)
}

/// The release-mode half of [`sane_volume`], split out so tests can cover
/// the clamp itself without tripping the debug assertion.
#[inline]
pub fn clamp_volume(v: f64) -> f64 {
    if v.is_finite() && v >= 0.0 {
        v
    } else {
        0.0
    }
}

/// Pick the DOP tier for an estimated byte volume.
pub fn dop_for_bytes(bytes: f64) -> u32 {
    let bytes = sane_volume(bytes, "byte");
    let need = (bytes / BYTES_PER_VERTEX).ceil().max(1.0) as u32;
    for &tier in &DOP_TIERS {
        if tier >= need {
            return tier;
        }
    }
    *DOP_TIERS.last().expect("tiers non-empty")
}

/// Structured estimated cost of one plan fragment, decomposed along the
/// resource axes the execution simulator reports. All components are in
/// the same abstract cost units as the old scalar (≈ seconds of one
/// vertex's work) except `rows` (output cardinality, advisory) and
/// `memory` (peak per-stage working-set bytes, advisory): those two carry
/// weight 0 under [`CostWeights::DEFAULT`] and exist for steering,
/// reporting, and feedback.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// Estimated output rows of the fragment root (advisory).
    pub rows: f64,
    /// Per-row compute charges.
    pub cpu: f64,
    /// Storage read/write charges.
    pub io: f64,
    /// Shuffle / broadcast network charges.
    pub net: f64,
    /// Peak working-set bytes (hash builds, sort runs; advisory).
    pub memory: f64,
    /// Vertex startup/scheduling overhead charges.
    pub vertices: f64,
}

impl CostEstimate {
    pub const ZERO: CostEstimate = CostEstimate {
        rows: 0.0,
        cpu: 0.0,
        io: 0.0,
        net: 0.0,
        memory: 0.0,
        vertices: 0.0,
    };

    /// Component-wise sum.
    #[must_use]
    pub fn add(&self, o: &CostEstimate) -> CostEstimate {
        CostEstimate {
            rows: self.rows + o.rows,
            cpu: self.cpu + o.cpu,
            io: self.io + o.io,
            net: self.net + o.net,
            memory: self.memory + o.memory,
            vertices: self.vertices + o.vertices,
        }
    }

    /// Component-wise subtraction floored at zero (used when recovering an
    /// operator's own cost from a subtree total, mirroring the scalar
    /// `.max(0.0)` in plan extraction).
    #[must_use]
    pub fn saturating_sub(&self, o: &CostEstimate) -> CostEstimate {
        CostEstimate {
            rows: (self.rows - o.rows).max(0.0),
            cpu: (self.cpu - o.cpu).max(0.0),
            io: (self.io - o.io).max(0.0),
            net: (self.net - o.net).max(0.0),
            memory: (self.memory - o.memory).max(0.0),
            vertices: (self.vertices - o.vertices).max(0.0),
        }
    }

    /// Whether every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        ok(self.rows)
            && ok(self.cpu)
            && ok(self.io)
            && ok(self.net)
            && ok(self.memory)
            && ok(self.vertices)
    }
}

/// Scalarization weights for [`CostEstimate`]. The optimizer compares
/// plans on the weighted scalar only; changing weights steers plan choice
/// along the resource axes (e.g. raising `io` favors shuffle-heavy but
/// read-light plans).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    pub rows: f64,
    pub cpu: f64,
    pub io: f64,
    pub net: f64,
    pub memory: f64,
    pub vertices: f64,
}

impl CostWeights {
    /// The classic scalar model: every charged component at weight 1, the
    /// advisory components (rows, memory) at 0. Reproduces the pre-vector
    /// scalar bit-for-bit (see [`CostWeights::scalarize`]).
    pub const DEFAULT: CostWeights = CostWeights {
        rows: 0.0,
        cpu: 1.0,
        io: 1.0,
        net: 1.0,
        memory: 0.0,
        vertices: 1.0,
    };

    /// Weighted scalar of a cost vector.
    ///
    /// The fold order — rows, io, net, vertices, cpu, memory — is a
    /// compatibility contract, not a style choice. Under `DEFAULT` weights
    /// it reproduces the pre-vector scalar model bit-for-bit for every
    /// implementation and exchange formula: each arm's components are
    /// classified so this fold re-creates the original left-to-right f64
    /// additions exactly, relying only on `x * 1.0 == x`, `+0.0 + x == x`
    /// for non-negative `x`, and the bitwise commutativity of two-operand
    /// addition where the original term order differs. Do not reorder.
    pub fn scalarize(&self, c: &CostEstimate) -> f64 {
        let mut acc = c.rows * self.rows;
        acc += c.io * self.io;
        acc += c.net * self.net;
        acc += c.vertices * self.vertices;
        acc += c.cpu * self.cpu;
        acc += c.memory * self.memory;
        acc
    }

    /// Exact-bits digest of the six weights, for compile-cache keys.
    pub fn fingerprint_bits(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for w in [
            self.rows,
            self.cpu,
            self.io,
            self.net,
            self.memory,
            self.vertices,
        ] {
            w.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

impl Default for CostWeights {
    fn default() -> CostWeights {
        CostWeights::DEFAULT
    }
}

/// Bounded multiplicative corrections derived from executed-plan feedback
/// (observed/estimated ratios, clamped and smoothed upstream in
/// `steer-core`). `rows` scales the estimator's scan cardinalities; `cpu`
/// and `io` scale the matching cost components at costing time (`io`
/// covers both storage and network, matching the simulator's io metric).
/// All factors must be finite and strictly positive; [`IDENTITY`] (all
/// 1.0) is bit-exact no-op by IEEE 754 `x * 1.0 == x`.
///
/// [`IDENTITY`]: CostCorrections::IDENTITY
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostCorrections {
    pub rows: f64,
    pub cpu: f64,
    pub io: f64,
}

impl CostCorrections {
    pub const IDENTITY: CostCorrections = CostCorrections {
        rows: 1.0,
        cpu: 1.0,
        io: 1.0,
    };

    pub fn is_identity(&self) -> bool {
        *self == CostCorrections::IDENTITY
    }

    /// Whether every factor is finite and strictly positive (the invariant
    /// the feedback ratio guards uphold).
    pub fn is_valid(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v > 0.0;
        ok(self.rows) && ok(self.cpu) && ok(self.io)
    }
}

impl Default for CostCorrections {
    fn default() -> CostCorrections {
        CostCorrections::IDENTITY
    }
}

/// The full cost-model configuration a compile runs under: scalarization
/// weights plus per-template feedback corrections. [`CostModel::DEFAULT`]
/// is bit-identical to the classic scalar model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    pub weights: CostWeights,
    pub corrections: CostCorrections,
}

impl CostModel {
    pub const DEFAULT: CostModel = CostModel {
        weights: CostWeights::DEFAULT,
        corrections: CostCorrections::IDENTITY,
    };

    /// Apply the multiplicative corrections to a raw cost vector. The `io`
    /// factor covers both storage and network components because the
    /// simulator's observed io metric aggregates both.
    pub fn corrected(&self, c: &CostEstimate) -> CostEstimate {
        CostEstimate {
            rows: c.rows,
            cpu: c.cpu * self.corrections.cpu,
            io: c.io * self.corrections.io,
            net: c.net * self.corrections.io,
            memory: c.memory,
            vertices: c.vertices,
        }
    }

    /// Corrected, weighted scalar — the single comparison value the search
    /// ranks alternatives by.
    pub fn scalar(&self, c: &CostEstimate) -> f64 {
        self.weights.scalarize(&self.corrected(c))
    }

    /// Exact-bits digest of the whole model (weights + corrections), for
    /// compile-cache keys: two compiles under different models must never
    /// share a cache entry.
    pub fn fingerprint_bits(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.weights.fingerprint_bits().hash(&mut h);
        for f in [
            self.corrections.rows,
            self.corrections.cpu,
            self.corrections.io,
        ] {
            f.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::DEFAULT
    }
}

/// Estimated cost and planned parallelism of one physical operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    pub cost: CostEstimate,
    pub dop: u32,
}

fn log2(rows: f64) -> f64 {
    rows.max(2.0).log2()
}

/// Required input partitionings for `phys` implementing logical `op`.
/// One entry per child; `Any` means no exchange needed.
pub fn required_child_parts(phys: PhysImpl, op: &LogicalOp, arity: usize) -> Vec<Partitioning> {
    use PhysImpl::*;
    let join_keys = |op: &LogicalOp| -> (Vec<ColId>, Vec<ColId>) {
        match op {
            LogicalOp::Join { keys, .. } => (
                keys.iter().map(|&(l, _)| l).collect(),
                keys.iter().map(|&(_, r)| r).collect(),
            ),
            _ => (Vec::new(), Vec::new()),
        }
    };
    let gb_keys = |op: &LogicalOp| -> Vec<ColId> {
        match op {
            LogicalOp::GroupBy { keys, .. } => keys.clone(),
            _ => Vec::new(),
        }
    };
    let sort_keys = |op: &LogicalOp| -> Vec<ColId> {
        match op {
            LogicalOp::Sort { keys } | LogicalOp::Window { keys } => keys.clone(),
            _ => Vec::new(),
        }
    };
    match phys {
        ScanSerial | ScanParallel | ScanIndexed => Vec::new(),
        FilterImpl | ProjectImpl | OutputImpl => vec![Partitioning::Any; arity],
        HashJoin1 | HashJoin2 | HashJoin3 => {
            let (l, r) = join_keys(op);
            if l.is_empty() {
                // Cross joins degenerate to a gather.
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Hash(l), Partitioning::Hash(r)]
            }
        }
        MergeJoin => {
            let (l, r) = join_keys(op);
            if l.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Range(l), Partitioning::Range(r)]
            }
        }
        BroadcastJoin => vec![Partitioning::Any, Partitioning::Broadcast],
        LoopJoin => vec![Partitioning::Singleton, Partitioning::Singleton],
        IndexJoin => {
            let (_, r) = join_keys(op);
            if r.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Any, Partitioning::Hash(r)]
            }
        }
        HashAgg => {
            let partial = matches!(op, LogicalOp::GroupBy { partial: true, .. });
            if partial {
                vec![Partitioning::Any]
            } else {
                let keys = gb_keys(op);
                if keys.is_empty() {
                    vec![Partitioning::Singleton]
                } else {
                    vec![Partitioning::Hash(keys)]
                }
            }
        }
        SortAgg | StreamAgg => {
            let partial = matches!(op, LogicalOp::GroupBy { partial: true, .. });
            if partial {
                vec![Partitioning::Any]
            } else {
                let keys = gb_keys(op);
                if keys.is_empty() {
                    vec![Partitioning::Singleton]
                } else {
                    vec![Partitioning::Range(keys)]
                }
            }
        }
        UnionConcat | UnionVirtual | VirtualDatasetImpl => vec![Partitioning::Any; arity],
        UnionSerial => vec![Partitioning::Singleton; arity],
        TopN => vec![Partitioning::Any],
        TopSort => vec![Partitioning::Singleton],
        SortParallel => vec![Partitioning::Range(sort_keys(op))],
        SortSerial => vec![Partitioning::Singleton],
        WindowHash => vec![Partitioning::Hash(sort_keys(op))],
        WindowSort => vec![Partitioning::Range(sort_keys(op))],
        ProcessParallel => vec![Partitioning::Any],
        ProcessSerial => vec![Partitioning::Singleton],
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            vec![Partitioning::Any]
        }
    }
}

/// Output partitioning of `phys` given its child output partitionings.
pub fn output_part(phys: PhysImpl, op: &LogicalOp, child_parts: &[Partitioning]) -> Partitioning {
    use PhysImpl::*;
    match phys {
        ScanSerial => Partitioning::Singleton,
        ScanParallel | ScanIndexed => Partitioning::Any,
        FilterImpl | ProjectImpl | ProcessParallel | TopN => {
            child_parts.first().cloned().unwrap_or(Partitioning::Any)
        }
        HashJoin1 | HashJoin2 | HashJoin3 => match op {
            LogicalOp::Join { keys, .. } if !keys.is_empty() => {
                Partitioning::Hash(keys.iter().map(|&(l, _)| l).collect())
            }
            _ => Partitioning::Singleton,
        },
        MergeJoin => match op {
            LogicalOp::Join { keys, .. } if !keys.is_empty() => {
                Partitioning::Range(keys.iter().map(|&(l, _)| l).collect())
            }
            _ => Partitioning::Singleton,
        },
        BroadcastJoin | IndexJoin => child_parts.first().cloned().unwrap_or(Partitioning::Any),
        LoopJoin | TopSort | SortSerial | UnionSerial | ProcessSerial => Partitioning::Singleton,
        HashAgg => match op {
            LogicalOp::GroupBy {
                keys,
                partial: false,
                ..
            } if !keys.is_empty() => Partitioning::Hash(keys.clone()),
            LogicalOp::GroupBy { partial: true, .. } => {
                child_parts.first().cloned().unwrap_or(Partitioning::Any)
            }
            _ => Partitioning::Singleton,
        },
        SortAgg | StreamAgg => match op {
            LogicalOp::GroupBy {
                keys,
                partial: false,
                ..
            } if !keys.is_empty() => Partitioning::Range(keys.clone()),
            LogicalOp::GroupBy { partial: true, .. } => {
                child_parts.first().cloned().unwrap_or(Partitioning::Any)
            }
            _ => Partitioning::Singleton,
        },
        UnionConcat => Partitioning::Any,
        UnionVirtual | VirtualDatasetImpl => Partitioning::Any,
        SortParallel => match op {
            LogicalOp::Sort { keys } => Partitioning::Range(keys.clone()),
            _ => Partitioning::Any,
        },
        WindowHash => match op {
            LogicalOp::Window { keys } => Partitioning::Hash(keys.clone()),
            _ => Partitioning::Any,
        },
        WindowSort => match op {
            LogicalOp::Window { keys } => Partitioning::Range(keys.clone()),
            _ => Partitioning::Any,
        },
        OutputImpl => Partitioning::Any,
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            unreachable!("exchange output partitioning is the enforcer's requirement")
        }
    }
}

/// Estimated cost of `phys` implementing `op`, given the operator's own
/// estimate, its children's estimates, and the observable catalog (for the
/// raw size of scanned tables).
///
/// Generic over [`ChildEsts`] so the search can pass a memo-slab view
/// without materialising a `Vec<&LogicalEst>` per costed alternative
/// (slices and arrays of `&LogicalEst` still work unchanged).
///
/// Component classification is a bit-identity contract with
/// [`CostWeights::scalarize`]: within each component the original
/// left-to-right term order is preserved (notably ScanIndexed's lookup
/// term stays fused into `io`, and ExchangeRange's trailing sampling
/// constant is classified as `cpu` so the fold re-adds it last).
pub fn impl_cost<C: ChildEsts + ?Sized>(
    phys: PhysImpl,
    op: &LogicalOp,
    own: &LogicalEst,
    children: &C,
    obs: &ObservableCatalog,
) -> OpCost {
    use PhysImpl::*;
    fn child<C: ChildEsts + ?Sized>(c: &C, i: usize) -> Option<&LogicalEst> {
        (i < c.len()).then(|| c.get(i))
    }
    let n = children.len();
    let mut in_rows = 0.0f64;
    let mut in_bytes = 0.0f64;
    for i in 0..n {
        let c = children.get(i);
        in_rows += c.rows;
        in_bytes += c.bytes();
    }
    // Producer boundary: whatever estimate.rs (or a buggy future rewrite)
    // hands us, nothing non-finite or negative proceeds into the formulas.
    let in_rows = sane_volume(in_rows, "row");
    let in_bytes = sane_volume(in_bytes, "byte");
    let mut oc = match phys {
        ScanSerial => OpCost {
            cost: CostEstimate {
                io: raw_scan_bytes(op, obs) * C_IO,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        ScanParallel => {
            // Parallel scans read the full input; the pushed predicate is
            // evaluated while scanning.
            let raw = raw_scan_bytes(op, obs);
            let dop = dop_for_bytes(raw);
            OpCost {
                cost: CostEstimate {
                    io: raw * C_IO / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        ScanIndexed => {
            // Indexed scans skip irrelevant partitions when a predicate was
            // pushed: charged on output bytes plus a lookup overhead. The
            // lookup term is classified as io (index pages), keeping the
            // original `read-io + lookup` addition order inside one
            // component.
            let raw = raw_scan_bytes(op, obs);
            let read = (own.bytes() * 2.0).min(raw).max(1.0);
            let dop = dop_for_bytes(read);
            OpCost {
                cost: CostEstimate {
                    io: read * C_IO / dop as f64 + 0.05 * raw.max(1.0).log2(),
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        FilterImpl => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_CPU_ROW / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        ProjectImpl => {
            let computed = match op {
                LogicalOp::Project { computed, .. } => *computed as f64,
                _ => 0.0,
            };
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_CPU_ROW * (1.0 + computed) / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        HashJoin1 | HashJoin2 | HashJoin3 => {
            let base = dop_for_bytes(in_bytes);
            let dop = match phys {
                HashJoin2 => bump_tier(base, 1),
                HashJoin3 => bump_tier(base, -1),
                _ => base,
            };
            // Build-side working set: the (estimated) right input, spread
            // across the vertices.
            let build = child(children, 1)
                .map(super::estimate::LogicalEst::bytes)
                .unwrap_or(0.0);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_HASH_ROW / dop as f64,
                    memory: build / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        MergeJoin => {
            let dop = dop_for_bytes(in_bytes);
            let sort = (0..n)
                .map(|i| {
                    let c = children.get(i);
                    c.rows * log2(c.rows) * C_SORT_ROW
                })
                .sum::<f64>();
            OpCost {
                cost: CostEstimate {
                    cpu: (sort + in_rows * C_CPU_ROW) / dop as f64,
                    memory: in_bytes / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        BroadcastJoin => {
            let l = child(children, 0);
            let r = child(children, 1);
            let l_bytes = l.map(super::estimate::LogicalEst::bytes).unwrap_or(0.0);
            let r_rows = r.map(|c| c.rows).unwrap_or(0.0);
            let r_bytes = r.map(super::estimate::LogicalEst::bytes).unwrap_or(0.0);
            let dop = dop_for_bytes(l_bytes);
            // Every vertex builds a hash table over the full right side.
            OpCost {
                cost: CostEstimate {
                    cpu: (l.map(|c| c.rows).unwrap_or(0.0) * C_HASH_ROW) / dop as f64
                        + r_rows * C_HASH_ROW,
                    memory: r_bytes,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        LoopJoin => {
            let l = child(children, 0).map(|c| c.rows).unwrap_or(0.0);
            let r = child(children, 1).map(|c| c.rows).unwrap_or(0.0);
            OpCost {
                cost: CostEstimate {
                    cpu: l * r * 0.02e-6,
                    vertices: C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop: 1,
            }
        }
        IndexJoin => {
            let l = child(children, 0).map(|c| c.rows).unwrap_or(0.0);
            let r = child(children, 1).map(|c| c.rows).unwrap_or(1.0);
            let dop = dop_for_bytes(child(children, 0).map(LogicalEst::bytes).unwrap_or(0.0));
            OpCost {
                cost: CostEstimate {
                    cpu: l * log2(r) * 0.8e-6 / dop as f64 + r * C_CPU_ROW * 0.1,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        HashAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_HASH_ROW / dop as f64,
                    memory: in_bytes / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        SortAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * log2(in_rows) * C_SORT_ROW / dop as f64,
                    memory: in_bytes / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        StreamAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_CPU_ROW * 0.8 / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        UnionConcat => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_CPU_ROW * 0.1 / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        UnionSerial => OpCost {
            cost: CostEstimate {
                cpu: in_rows * C_CPU_ROW,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        UnionVirtual | VirtualDatasetImpl => {
            let dop = dop_for_bytes(in_bytes);
            // Materialization: write everything once, read it back once.
            OpCost {
                cost: CostEstimate {
                    io: 2.0 * in_bytes * C_IO / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        TopN => {
            let dop = dop_for_bytes(in_bytes);
            let k = top_k(op);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_CPU_ROW / dop as f64 + k * log2(k) * C_SORT_ROW,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        TopSort => OpCost {
            cost: CostEstimate {
                cpu: in_rows * log2(in_rows) * C_SORT_ROW,
                memory: in_bytes,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        SortParallel => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * log2(in_rows / dop as f64) * C_SORT_ROW / dop as f64,
                    memory: in_bytes / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        SortSerial => OpCost {
            cost: CostEstimate {
                cpu: in_rows * log2(in_rows) * C_SORT_ROW,
                memory: in_bytes,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        WindowHash => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * C_HASH_ROW / dop as f64,
                    memory: in_bytes / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        WindowSort => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    cpu: in_rows * log2(in_rows) * C_SORT_ROW / dop as f64,
                    memory: in_bytes / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        ProcessParallel => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    // One global assumption for every UDO's per-row cost.
                    cpu: in_rows * C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW
                        / dop as f64,
                    vertices: dop as f64 * C_VERTEX,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        ProcessSerial => OpCost {
            cost: CostEstimate {
                cpu: in_rows * C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        OutputImpl => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: CostEstimate {
                    io: in_bytes * C_IO / dop as f64,
                    ..CostEstimate::ZERO
                },
                dop,
            }
        }
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            exchange_cost(phys, in_bytes, dop_for_bytes(in_bytes))
        }
    };
    // Advisory output cardinality, weight 0 by default. Must stay finite:
    // an infinite value here would turn the `rows * 0.0` scalarize term
    // into NaN.
    oc.cost.rows = sane_volume(own.rows, "row");
    oc
}

/// Cost of an enforcer exchange moving `bytes` towards `target_dop`
/// consumers.
pub fn exchange_cost(phys: PhysImpl, bytes: f64, target_dop: u32) -> OpCost {
    use PhysImpl::*;
    let bytes = sane_volume(bytes, "byte");
    match phys {
        ExchangeHash => OpCost {
            cost: CostEstimate {
                net: bytes * C_NET / target_dop as f64,
                vertices: target_dop as f64 * C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: target_dop,
        },
        ExchangeRange => OpCost {
            // Range partitioning pays an extra sampling pass. The flat
            // sampling constant is classified as cpu — the scalarize fold
            // adds cpu after net and vertices, reproducing the original
            // `net + vertices + 0.5` addition order exactly.
            cost: CostEstimate {
                net: bytes * C_NET * 1.15 / target_dop as f64,
                vertices: target_dop as f64 * C_VERTEX,
                cpu: 0.5,
                ..CostEstimate::ZERO
            },
            dop: target_dop,
        },
        ExchangeBroadcast => OpCost {
            // Full copy to every consumer vertex.
            cost: CostEstimate {
                net: bytes * C_NET * target_dop as f64 / target_dop as f64 * 1.0
                    + bytes * C_NET * (target_dop as f64 - 1.0).max(0.0) * 0.02,
                vertices: target_dop as f64 * C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: target_dop,
        },
        ExchangeGather => OpCost {
            cost: CostEstimate {
                net: bytes * C_NET,
                vertices: C_VERTEX,
                ..CostEstimate::ZERO
            },
            dop: 1,
        },
        _ => unreachable!("not an exchange implementation"),
    }
}

/// Which exchange implementation realizes a required partitioning.
pub fn exchange_impl_for(required: &Partitioning) -> Option<PhysImpl> {
    match required {
        Partitioning::Hash(_) => Some(PhysImpl::ExchangeHash),
        Partitioning::Range(_) => Some(PhysImpl::ExchangeRange),
        Partitioning::Broadcast => Some(PhysImpl::ExchangeBroadcast),
        Partitioning::Singleton => Some(PhysImpl::ExchangeGather),
        Partitioning::Any => None,
    }
}

/// The raw byte volume a scan reads: the whole table, regardless of any
/// pushed predicate (predicates are evaluated while reading). Public so the
/// bounds analysis (`scope-lint::bounds`) can anchor its scan cost floors on
/// the same rewrite-invariant quantity the cost model charges.
pub fn raw_scan_bytes(op: &LogicalOp, obs: &ObservableCatalog) -> f64 {
    match op {
        LogicalOp::RangeGet { table, .. } | LogicalOp::Get { table } => {
            obs.table_rows(*table) as f64 * obs.table_row_bytes(*table) as f64
        }
        _ => 0.0,
    }
}

fn top_k(op: &LogicalOp) -> f64 {
    match op {
        LogicalOp::Top { k } => *k as f64,
        _ => 1.0,
    }
}

fn bump_tier(dop: u32, delta: i32) -> u32 {
    let idx = DOP_TIERS.iter().position(|&t| t == dop).unwrap_or(0) as i32;
    let new = (idx + delta).clamp(0, DOP_TIERS.len() as i32 - 1) as usize;
    DOP_TIERS[new]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_ir::{JoinKind, Predicate, TrueCatalog};

    fn est(rows: f64, row_bytes: f64) -> LogicalEst {
        LogicalEst {
            rows,
            row_bytes,
            cols: vec![],
        }
    }

    fn obs() -> ObservableCatalog {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(10_000_000, 100, 1, vec![c]);
        cat.observe()
    }

    /// Default scalarization — the one comparison value tests may rank by.
    fn ds(oc: &OpCost) -> f64 {
        CostWeights::DEFAULT.scalarize(&oc.cost)
    }

    #[test]
    fn dop_tiers_monotone() {
        assert_eq!(dop_for_bytes(0.0), 1);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX), 1);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX * 3.0), 5);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX * 1e6), 250);
        let mut last = 0;
        for mult in [0.5, 1.5, 4.0, 20.0, 60.0, 120.0, 400.0] {
            let d = dop_for_bytes(BYTES_PER_VERTEX * mult);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn hash_join_variants_change_dop() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let l = est(1e7, 100.0);
        let r = est(1e7, 100.0);
        let own = est(1e7, 200.0);
        let c1 = impl_cost(PhysImpl::HashJoin1, &op, &own, &[&l, &r], &obs());
        let c2 = impl_cost(PhysImpl::HashJoin2, &op, &own, &[&l, &r], &obs());
        let c3 = impl_cost(PhysImpl::HashJoin3, &op, &own, &[&l, &r], &obs());
        assert!(c2.dop > c1.dop);
        assert!(c3.dop < c1.dop);
    }

    #[test]
    fn broadcast_join_cheap_when_right_small() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let big = est(1e8, 100.0);
        let small = est(100.0, 50.0);
        let own = est(1e8, 150.0);
        let bc = impl_cost(PhysImpl::BroadcastJoin, &op, &own, &[&big, &small], &obs());
        let hash = impl_cost(PhysImpl::HashJoin1, &op, &own, &[&big, &small], &obs());
        // Broadcast itself is cheap; the exchange difference decides the
        // rest (no repartitioning of the big side).
        assert!(ds(&bc) < ds(&hash) * 2.0);
    }

    #[test]
    fn loop_join_only_sane_for_tiny_inputs() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let tiny = est(100.0, 50.0);
        let own = est(100.0, 100.0);
        let cheap = impl_cost(PhysImpl::LoopJoin, &op, &own, &[&tiny, &tiny], &obs());
        let big = est(1e6, 50.0);
        let expensive = impl_cost(PhysImpl::LoopJoin, &op, &own, &[&big, &big], &obs());
        assert!(ds(&cheap) < 1.0);
        assert!(ds(&expensive) > 1000.0);
    }

    #[test]
    fn required_parts_for_hash_join_are_hash() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(3), ColId(7))],
        };
        let parts = required_child_parts(PhysImpl::HashJoin1, &op, 2);
        assert_eq!(parts[0], Partitioning::Hash(vec![ColId(3)]));
        assert_eq!(parts[1], Partitioning::Hash(vec![ColId(7)]));
        let bparts = required_child_parts(PhysImpl::BroadcastJoin, &op, 2);
        assert_eq!(bparts[0], Partitioning::Any);
        assert_eq!(bparts[1], Partitioning::Broadcast);
    }

    #[test]
    fn exchange_impl_mapping() {
        assert_eq!(
            exchange_impl_for(&Partitioning::Hash(vec![ColId(0)])),
            Some(PhysImpl::ExchangeHash)
        );
        assert_eq!(
            exchange_impl_for(&Partitioning::Singleton),
            Some(PhysImpl::ExchangeGather)
        );
        assert_eq!(exchange_impl_for(&Partitioning::Any), None);
    }

    #[test]
    fn scan_cost_scales_with_pushed_predicates() {
        let pushed = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::atom(scope_ir::PredAtom::unknown(
                ColId(0),
                scope_ir::CmpOp::Eq,
                scope_ir::Literal::Int(1),
            )),
        };
        let own = est(1e4, 100.0);
        let idx = impl_cost(PhysImpl::ScanIndexed, &pushed, &own, &[], &obs());
        let par = impl_cost(PhysImpl::ScanParallel, &pushed, &own, &[], &obs());
        // Indexed scans profit from selective pushed predicates.
        assert!(ds(&idx) < ds(&par));
    }

    /// Bit-identity spot checks: the default scalarization of the
    /// decomposed arms equals the legacy single-expression formulas down to
    /// the last bit. The frozen `classic` oracle checks whole plans; these
    /// pin the trickiest individual arms (fused ScanIndexed lookup term,
    /// the ExchangeRange trailing constant, commuted cpu+vertex sums).
    #[test]
    fn default_scalarization_matches_legacy_formulas_bitwise() {
        let obs = obs();
        let op = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::atom(scope_ir::PredAtom::unknown(
                ColId(0),
                scope_ir::CmpOp::Eq,
                scope_ir::Literal::Int(1),
            )),
        };
        let own = est(1e4, 100.0);

        // ScanIndexed: read*C_IO/dop + lookup + dop*C_VERTEX.
        let idx = impl_cost(PhysImpl::ScanIndexed, &op, &own, &[], &obs);
        let raw = raw_scan_bytes(&op, &obs);
        let read = (own.bytes() * 2.0).min(raw).max(1.0);
        let dop = dop_for_bytes(read);
        let legacy = read * C_IO / dop as f64 + 0.05 * raw.max(1.0).log2() + dop as f64 * C_VERTEX;
        assert_eq!(ds(&idx).to_bits(), legacy.to_bits());

        // ExchangeRange: net + vertices + 0.5, in that order.
        let er = exchange_cost(PhysImpl::ExchangeRange, 3.5e9, 25);
        let legacy = 3.5e9 * C_NET * 1.15 / 25.0 + 25.0 * C_VERTEX + 0.5;
        assert_eq!(ds(&er).to_bits(), legacy.to_bits());

        // HashJoin1: cpu + vertices (commuted in the fold).
        let jop = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let l = est(1e7, 100.0);
        let r = est(3e6, 80.0);
        let jown = est(1e7, 180.0);
        let hj = impl_cost(PhysImpl::HashJoin1, &jop, &jown, &[&l, &r], &obs);
        let in_rows = l.rows + r.rows;
        let in_bytes = l.bytes() + r.bytes();
        let dop = dop_for_bytes(in_bytes);
        let legacy = in_rows * C_HASH_ROW / dop as f64 + dop as f64 * C_VERTEX;
        assert_eq!(ds(&hj).to_bits(), legacy.to_bits());

        // MergeJoin: (sort + cpu)/dop + vertices.
        let mj = impl_cost(PhysImpl::MergeJoin, &jop, &jown, &[&l, &r], &obs);
        let sort = l.rows * l.rows.max(2.0).log2() * C_SORT_ROW
            + r.rows * r.rows.max(2.0).log2() * C_SORT_ROW;
        let legacy = (sort + in_rows * C_CPU_ROW) / dop as f64 + dop as f64 * C_VERTEX;
        assert_eq!(ds(&mj).to_bits(), legacy.to_bits());
    }

    #[test]
    fn identity_corrections_are_bit_exact() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let l = est(1e7, 100.0);
        let r = est(3e6, 80.0);
        let own = est(1e7, 180.0);
        for phys in [
            PhysImpl::HashJoin1,
            PhysImpl::MergeJoin,
            PhysImpl::BroadcastJoin,
            PhysImpl::LoopJoin,
        ] {
            let oc = impl_cost(phys, &op, &own, &[&l, &r], &obs());
            assert_eq!(
                CostModel::DEFAULT.scalar(&oc.cost).to_bits(),
                CostWeights::DEFAULT.scalarize(&oc.cost).to_bits()
            );
        }
    }

    #[test]
    fn weights_steer_along_the_io_axis() {
        // An IO-heavy materialization vs a cpu-heavy union concat: raising
        // the io weight must flip (or at least widen) their relative order.
        let op = LogicalOp::UnionAll;
        let a = est(5e5, 400.0);
        let b = est(5e5, 400.0);
        let own = est(1e6, 400.0);
        let virt = impl_cost(PhysImpl::UnionVirtual, &op, &own, &[&a, &b], &obs());
        let concat = impl_cost(PhysImpl::UnionConcat, &op, &own, &[&a, &b], &obs());
        let hi_io = CostWeights {
            io: 8.0,
            ..CostWeights::DEFAULT
        };
        let gap_default = CostWeights::DEFAULT.scalarize(&virt.cost)
            - CostWeights::DEFAULT.scalarize(&concat.cost);
        let gap_hi = hi_io.scalarize(&virt.cost) - hi_io.scalarize(&concat.cost);
        assert!(gap_hi > gap_default, "io weight must penalize io-heavy ops");
    }

    #[test]
    fn clamp_volume_neutralizes_degenerate_estimates() {
        assert_eq!(clamp_volume(f64::NAN), 0.0);
        assert_eq!(clamp_volume(f64::INFINITY), 0.0);
        assert_eq!(clamp_volume(f64::NEG_INFINITY), 0.0);
        assert_eq!(clamp_volume(-3.5), 0.0);
        // Identity for healthy values, bit-exactly.
        for v in [0.0, 1.0, 1e-300, 7.25e18] {
            assert_eq!(clamp_volume(v).to_bits(), v.to_bits());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "byte estimate outside")]
    fn dop_for_bytes_refuses_nan_in_debug() {
        dop_for_bytes(f64::NAN);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "byte estimate outside")]
    fn dop_for_bytes_refuses_negative_in_debug() {
        dop_for_bytes(-1.0);
    }

    #[test]
    fn cost_estimate_arithmetic() {
        let a = CostEstimate {
            rows: 1.0,
            cpu: 2.0,
            io: 3.0,
            net: 4.0,
            memory: 5.0,
            vertices: 6.0,
        };
        let b = CostEstimate {
            rows: 0.5,
            cpu: 3.0,
            io: 1.0,
            net: 1.0,
            memory: 1.0,
            vertices: 1.0,
        };
        let s = a.add(&b);
        assert_eq!(s.cpu, 5.0);
        assert_eq!(s.vertices, 7.0);
        let d = a.saturating_sub(&b);
        assert_eq!(d.cpu, 0.0); // floored, 2 - 3 < 0
        assert_eq!(d.io, 2.0);
        assert!(a.is_valid());
        assert!(!CostEstimate {
            cpu: f64::NAN,
            ..CostEstimate::ZERO
        }
        .is_valid());
    }

    #[test]
    fn model_fingerprints_distinguish_weights_and_corrections() {
        let d = CostModel::DEFAULT;
        let w = CostModel {
            weights: CostWeights {
                io: 2.0,
                ..CostWeights::DEFAULT
            },
            corrections: CostCorrections::IDENTITY,
        };
        let c = CostModel {
            weights: CostWeights::DEFAULT,
            corrections: CostCorrections {
                cpu: 1.5,
                ..CostCorrections::IDENTITY
            },
        };
        assert_ne!(d.fingerprint_bits(), w.fingerprint_bits());
        assert_ne!(d.fingerprint_bits(), c.fingerprint_bits());
        assert_ne!(w.fingerprint_bits(), c.fingerprint_bits());
        assert_eq!(d.fingerprint_bits(), CostModel::DEFAULT.fingerprint_bits());
    }
}
