//! The optimizer's *estimated* cost model and degree-of-parallelism
//! heuristic, plus the per-implementation physical property table
//! (required child partitionings, output partitioning).
//!
//! Costs are in abstract "cost units" calibrated so that typical workload
//! jobs land in the few-minutes-to-an-hour range. The model charges CPU per
//! row, IO per byte, network per byte moved, and a per-vertex startup
//! overhead — and it is *systematically wrong* in the ways §3.2/§6.3 of the
//! paper describe: it prices UDOs with one global constant, assumes uniform
//! partitioning (no skew), and never anticipates spills.

use scope_ir::ids::ColId;
use scope_ir::{LogicalOp, ObservableCatalog};

use crate::estimate::{ChildEsts, LogicalEst};
use crate::physical::Partitioning;
use crate::rules::PhysImpl;

/// Degrees of parallelism the optimizer considers (SCOPE-style discrete
/// tiers; the heuristic picks the smallest tier covering the data).
pub const DOP_TIERS: [u32; 10] = [1, 2, 5, 10, 25, 50, 100, 150, 200, 250];

/// Bytes one vertex comfortably handles; drives the DOP heuristic.
pub const BYTES_PER_VERTEX: f64 = 256.0 * 1024.0 * 1024.0;

// Cost-unit constants (roughly: seconds of one vertex's work).
pub const C_IO: f64 = 1.0 / (120.0 * 1024.0 * 1024.0); // 120 MB/s sequential IO
pub const C_NET: f64 = 1.0 / (60.0 * 1024.0 * 1024.0); // 60 MB/s shuffle
pub const C_CPU_ROW: f64 = 0.4e-6; // basic per-row handling
pub const C_HASH_ROW: f64 = 1.2e-6; // hash build/probe per row
pub const C_SORT_ROW: f64 = 0.5e-6; // per row per log2(rows)
pub const C_UDO_ROW: f64 = 1.0e-6; // per unit of (assumed) UDO work
pub const C_VERTEX: f64 = 0.35; // vertex startup/scheduling overhead

/// Pick the DOP tier for an estimated byte volume.
pub fn dop_for_bytes(bytes: f64) -> u32 {
    let need = (bytes / BYTES_PER_VERTEX).ceil().max(1.0) as u32;
    for &tier in &DOP_TIERS {
        if tier >= need {
            return tier;
        }
    }
    *DOP_TIERS.last().expect("tiers non-empty")
}

/// Estimated cost and planned parallelism of one physical operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    pub cost: f64,
    pub dop: u32,
}

fn log2(rows: f64) -> f64 {
    rows.max(2.0).log2()
}

/// Required input partitionings for `phys` implementing logical `op`.
/// One entry per child; `Any` means no exchange needed.
pub fn required_child_parts(phys: PhysImpl, op: &LogicalOp, arity: usize) -> Vec<Partitioning> {
    use PhysImpl::*;
    let join_keys = |op: &LogicalOp| -> (Vec<ColId>, Vec<ColId>) {
        match op {
            LogicalOp::Join { keys, .. } => (
                keys.iter().map(|&(l, _)| l).collect(),
                keys.iter().map(|&(_, r)| r).collect(),
            ),
            _ => (Vec::new(), Vec::new()),
        }
    };
    let gb_keys = |op: &LogicalOp| -> Vec<ColId> {
        match op {
            LogicalOp::GroupBy { keys, .. } => keys.clone(),
            _ => Vec::new(),
        }
    };
    let sort_keys = |op: &LogicalOp| -> Vec<ColId> {
        match op {
            LogicalOp::Sort { keys } | LogicalOp::Window { keys } => keys.clone(),
            _ => Vec::new(),
        }
    };
    match phys {
        ScanSerial | ScanParallel | ScanIndexed => Vec::new(),
        FilterImpl | ProjectImpl | OutputImpl => vec![Partitioning::Any; arity],
        HashJoin1 | HashJoin2 | HashJoin3 => {
            let (l, r) = join_keys(op);
            if l.is_empty() {
                // Cross joins degenerate to a gather.
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Hash(l), Partitioning::Hash(r)]
            }
        }
        MergeJoin => {
            let (l, r) = join_keys(op);
            if l.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Range(l), Partitioning::Range(r)]
            }
        }
        BroadcastJoin => vec![Partitioning::Any, Partitioning::Broadcast],
        LoopJoin => vec![Partitioning::Singleton, Partitioning::Singleton],
        IndexJoin => {
            let (_, r) = join_keys(op);
            if r.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Any, Partitioning::Hash(r)]
            }
        }
        HashAgg => {
            let partial = matches!(op, LogicalOp::GroupBy { partial: true, .. });
            if partial {
                vec![Partitioning::Any]
            } else {
                let keys = gb_keys(op);
                if keys.is_empty() {
                    vec![Partitioning::Singleton]
                } else {
                    vec![Partitioning::Hash(keys)]
                }
            }
        }
        SortAgg | StreamAgg => {
            let partial = matches!(op, LogicalOp::GroupBy { partial: true, .. });
            if partial {
                vec![Partitioning::Any]
            } else {
                let keys = gb_keys(op);
                if keys.is_empty() {
                    vec![Partitioning::Singleton]
                } else {
                    vec![Partitioning::Range(keys)]
                }
            }
        }
        UnionConcat | UnionVirtual | VirtualDatasetImpl => vec![Partitioning::Any; arity],
        UnionSerial => vec![Partitioning::Singleton; arity],
        TopN => vec![Partitioning::Any],
        TopSort => vec![Partitioning::Singleton],
        SortParallel => vec![Partitioning::Range(sort_keys(op))],
        SortSerial => vec![Partitioning::Singleton],
        WindowHash => vec![Partitioning::Hash(sort_keys(op))],
        WindowSort => vec![Partitioning::Range(sort_keys(op))],
        ProcessParallel => vec![Partitioning::Any],
        ProcessSerial => vec![Partitioning::Singleton],
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            vec![Partitioning::Any]
        }
    }
}

/// Output partitioning of `phys` given its child output partitionings.
pub fn output_part(phys: PhysImpl, op: &LogicalOp, child_parts: &[Partitioning]) -> Partitioning {
    use PhysImpl::*;
    match phys {
        ScanSerial => Partitioning::Singleton,
        ScanParallel | ScanIndexed => Partitioning::Any,
        FilterImpl | ProjectImpl | ProcessParallel | TopN => {
            child_parts.first().cloned().unwrap_or(Partitioning::Any)
        }
        HashJoin1 | HashJoin2 | HashJoin3 => match op {
            LogicalOp::Join { keys, .. } if !keys.is_empty() => {
                Partitioning::Hash(keys.iter().map(|&(l, _)| l).collect())
            }
            _ => Partitioning::Singleton,
        },
        MergeJoin => match op {
            LogicalOp::Join { keys, .. } if !keys.is_empty() => {
                Partitioning::Range(keys.iter().map(|&(l, _)| l).collect())
            }
            _ => Partitioning::Singleton,
        },
        BroadcastJoin | IndexJoin => child_parts.first().cloned().unwrap_or(Partitioning::Any),
        LoopJoin | TopSort | SortSerial | UnionSerial | ProcessSerial => Partitioning::Singleton,
        HashAgg => match op {
            LogicalOp::GroupBy {
                keys,
                partial: false,
                ..
            } if !keys.is_empty() => Partitioning::Hash(keys.clone()),
            LogicalOp::GroupBy { partial: true, .. } => {
                child_parts.first().cloned().unwrap_or(Partitioning::Any)
            }
            _ => Partitioning::Singleton,
        },
        SortAgg | StreamAgg => match op {
            LogicalOp::GroupBy {
                keys,
                partial: false,
                ..
            } if !keys.is_empty() => Partitioning::Range(keys.clone()),
            LogicalOp::GroupBy { partial: true, .. } => {
                child_parts.first().cloned().unwrap_or(Partitioning::Any)
            }
            _ => Partitioning::Singleton,
        },
        UnionConcat => Partitioning::Any,
        UnionVirtual | VirtualDatasetImpl => Partitioning::Any,
        SortParallel => match op {
            LogicalOp::Sort { keys } => Partitioning::Range(keys.clone()),
            _ => Partitioning::Any,
        },
        WindowHash => match op {
            LogicalOp::Window { keys } => Partitioning::Hash(keys.clone()),
            _ => Partitioning::Any,
        },
        WindowSort => match op {
            LogicalOp::Window { keys } => Partitioning::Range(keys.clone()),
            _ => Partitioning::Any,
        },
        OutputImpl => Partitioning::Any,
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            unreachable!("exchange output partitioning is the enforcer's requirement")
        }
    }
}

/// Estimated cost of `phys` implementing `op`, given the operator's own
/// estimate, its children's estimates, and the observable catalog (for the
/// raw size of scanned tables).
///
/// Generic over [`ChildEsts`] so the search can pass a memo-slab view
/// without materialising a `Vec<&LogicalEst>` per costed alternative
/// (slices and arrays of `&LogicalEst` still work unchanged).
pub fn impl_cost<C: ChildEsts + ?Sized>(
    phys: PhysImpl,
    op: &LogicalOp,
    own: &LogicalEst,
    children: &C,
    obs: &ObservableCatalog,
) -> OpCost {
    use PhysImpl::*;
    fn child<C: ChildEsts + ?Sized>(c: &C, i: usize) -> Option<&LogicalEst> {
        (i < c.len()).then(|| c.get(i))
    }
    let n = children.len();
    let mut in_rows = 0.0f64;
    let mut in_bytes = 0.0f64;
    for i in 0..n {
        let c = children.get(i);
        in_rows += c.rows;
        in_bytes += c.bytes();
    }
    match phys {
        ScanSerial => OpCost {
            cost: raw_scan_bytes(op, obs) * C_IO + C_VERTEX,
            dop: 1,
        },
        ScanParallel => {
            // Parallel scans read the full input; the pushed predicate is
            // evaluated while scanning.
            let raw = raw_scan_bytes(op, obs);
            let dop = dop_for_bytes(raw);
            OpCost {
                cost: raw * C_IO / dop as f64 + dop as f64 * C_VERTEX,
                dop,
            }
        }
        ScanIndexed => {
            // Indexed scans skip irrelevant partitions when a predicate was
            // pushed: charged on output bytes plus a lookup overhead.
            let raw = raw_scan_bytes(op, obs);
            let read = (own.bytes() * 2.0).min(raw).max(1.0);
            let dop = dop_for_bytes(read);
            OpCost {
                cost: read * C_IO / dop as f64 + 0.05 * raw.max(1.0).log2() + dop as f64 * C_VERTEX,
                dop,
            }
        }
        FilterImpl => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_CPU_ROW / dop as f64,
                dop,
            }
        }
        ProjectImpl => {
            let computed = match op {
                LogicalOp::Project { computed, .. } => *computed as f64,
                _ => 0.0,
            };
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_CPU_ROW * (1.0 + computed) / dop as f64,
                dop,
            }
        }
        HashJoin1 | HashJoin2 | HashJoin3 => {
            let base = dop_for_bytes(in_bytes);
            let dop = match phys {
                HashJoin2 => bump_tier(base, 1),
                HashJoin3 => bump_tier(base, -1),
                _ => base,
            };
            OpCost {
                cost: in_rows * C_HASH_ROW / dop as f64 + dop as f64 * C_VERTEX,
                dop,
            }
        }
        MergeJoin => {
            let dop = dop_for_bytes(in_bytes);
            let sort = (0..n)
                .map(|i| {
                    let c = children.get(i);
                    c.rows * log2(c.rows) * C_SORT_ROW
                })
                .sum::<f64>();
            OpCost {
                cost: (sort + in_rows * C_CPU_ROW) / dop as f64 + dop as f64 * C_VERTEX,
                dop,
            }
        }
        BroadcastJoin => {
            let l = child(children, 0);
            let r = child(children, 1);
            let l_bytes = l.map(super::estimate::LogicalEst::bytes).unwrap_or(0.0);
            let r_rows = r.map(|c| c.rows).unwrap_or(0.0);
            let dop = dop_for_bytes(l_bytes);
            // Every vertex builds a hash table over the full right side.
            OpCost {
                cost: (l.map(|c| c.rows).unwrap_or(0.0) * C_HASH_ROW) / dop as f64
                    + r_rows * C_HASH_ROW
                    + dop as f64 * C_VERTEX,
                dop,
            }
        }
        LoopJoin => {
            let l = child(children, 0).map(|c| c.rows).unwrap_or(0.0);
            let r = child(children, 1).map(|c| c.rows).unwrap_or(0.0);
            OpCost {
                cost: l * r * 0.02e-6 + C_VERTEX,
                dop: 1,
            }
        }
        IndexJoin => {
            let l = child(children, 0).map(|c| c.rows).unwrap_or(0.0);
            let r = child(children, 1).map(|c| c.rows).unwrap_or(1.0);
            let dop = dop_for_bytes(child(children, 0).map(LogicalEst::bytes).unwrap_or(0.0));
            OpCost {
                cost: l * log2(r) * 0.8e-6 / dop as f64
                    + r * C_CPU_ROW * 0.1
                    + dop as f64 * C_VERTEX,
                dop,
            }
        }
        HashAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_HASH_ROW / dop as f64,
                dop,
            }
        }
        SortAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * log2(in_rows) * C_SORT_ROW / dop as f64,
                dop,
            }
        }
        StreamAgg => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_CPU_ROW * 0.8 / dop as f64,
                dop,
            }
        }
        UnionConcat => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_CPU_ROW * 0.1 / dop as f64,
                dop,
            }
        }
        UnionSerial => OpCost {
            cost: in_rows * C_CPU_ROW + C_VERTEX,
            dop: 1,
        },
        UnionVirtual | VirtualDatasetImpl => {
            let dop = dop_for_bytes(in_bytes);
            // Materialization: write everything once, read it back once.
            OpCost {
                cost: 2.0 * in_bytes * C_IO / dop as f64 + dop as f64 * C_VERTEX,
                dop,
            }
        }
        TopN => {
            let dop = dop_for_bytes(in_bytes);
            let k = top_k(op);
            OpCost {
                cost: in_rows * C_CPU_ROW / dop as f64 + k * log2(k) * C_SORT_ROW,
                dop,
            }
        }
        TopSort => OpCost {
            cost: in_rows * log2(in_rows) * C_SORT_ROW + C_VERTEX,
            dop: 1,
        },
        SortParallel => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * log2(in_rows / dop as f64) * C_SORT_ROW / dop as f64
                    + dop as f64 * C_VERTEX,
                dop,
            }
        }
        SortSerial => OpCost {
            cost: in_rows * log2(in_rows) * C_SORT_ROW + C_VERTEX,
            dop: 1,
        },
        WindowHash => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * C_HASH_ROW / dop as f64,
                dop,
            }
        }
        WindowSort => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_rows * log2(in_rows) * C_SORT_ROW / dop as f64,
                dop,
            }
        }
        ProcessParallel => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                // One global assumption for every UDO's per-row cost.
                cost: in_rows * C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW / dop as f64
                    + dop as f64 * C_VERTEX,
                dop,
            }
        }
        ProcessSerial => OpCost {
            cost: in_rows * C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW + C_VERTEX,
            dop: 1,
        },
        OutputImpl => {
            let dop = dop_for_bytes(in_bytes);
            OpCost {
                cost: in_bytes * C_IO / dop as f64,
                dop,
            }
        }
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            exchange_cost(phys, in_bytes, dop_for_bytes(in_bytes))
        }
    }
}

/// Cost of an enforcer exchange moving `bytes` towards `target_dop`
/// consumers.
pub fn exchange_cost(phys: PhysImpl, bytes: f64, target_dop: u32) -> OpCost {
    use PhysImpl::*;
    match phys {
        ExchangeHash => OpCost {
            cost: bytes * C_NET / target_dop as f64 + target_dop as f64 * C_VERTEX,
            dop: target_dop,
        },
        ExchangeRange => OpCost {
            // Range partitioning pays an extra sampling pass.
            cost: bytes * C_NET * 1.15 / target_dop as f64 + target_dop as f64 * C_VERTEX + 0.5,
            dop: target_dop,
        },
        ExchangeBroadcast => OpCost {
            // Full copy to every consumer vertex.
            cost: bytes * C_NET * target_dop as f64 / target_dop as f64 * 1.0
                + bytes * C_NET * (target_dop as f64 - 1.0).max(0.0) * 0.02
                + target_dop as f64 * C_VERTEX,
            dop: target_dop,
        },
        ExchangeGather => OpCost {
            cost: bytes * C_NET + C_VERTEX,
            dop: 1,
        },
        _ => unreachable!("not an exchange implementation"),
    }
}

/// Which exchange implementation realizes a required partitioning.
pub fn exchange_impl_for(required: &Partitioning) -> Option<PhysImpl> {
    match required {
        Partitioning::Hash(_) => Some(PhysImpl::ExchangeHash),
        Partitioning::Range(_) => Some(PhysImpl::ExchangeRange),
        Partitioning::Broadcast => Some(PhysImpl::ExchangeBroadcast),
        Partitioning::Singleton => Some(PhysImpl::ExchangeGather),
        Partitioning::Any => None,
    }
}

/// The raw byte volume a scan reads: the whole table, regardless of any
/// pushed predicate (predicates are evaluated while reading). Public so the
/// bounds analysis (`scope-lint::bounds`) can anchor its scan cost floors on
/// the same rewrite-invariant quantity the cost model charges.
pub fn raw_scan_bytes(op: &LogicalOp, obs: &ObservableCatalog) -> f64 {
    match op {
        LogicalOp::RangeGet { table, .. } | LogicalOp::Get { table } => {
            obs.table_rows(*table) as f64 * obs.table_row_bytes(*table) as f64
        }
        _ => 0.0,
    }
}

fn top_k(op: &LogicalOp) -> f64 {
    match op {
        LogicalOp::Top { k } => *k as f64,
        _ => 1.0,
    }
}

fn bump_tier(dop: u32, delta: i32) -> u32 {
    let idx = DOP_TIERS.iter().position(|&t| t == dop).unwrap_or(0) as i32;
    let new = (idx + delta).clamp(0, DOP_TIERS.len() as i32 - 1) as usize;
    DOP_TIERS[new]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_ir::{JoinKind, Predicate, TrueCatalog};

    fn est(rows: f64, row_bytes: f64) -> LogicalEst {
        LogicalEst {
            rows,
            row_bytes,
            cols: vec![],
        }
    }

    fn obs() -> ObservableCatalog {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(10_000_000, 100, 1, vec![c]);
        cat.observe()
    }

    #[test]
    fn dop_tiers_monotone() {
        assert_eq!(dop_for_bytes(0.0), 1);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX), 1);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX * 3.0), 5);
        assert_eq!(dop_for_bytes(BYTES_PER_VERTEX * 1e6), 250);
        let mut last = 0;
        for mult in [0.5, 1.5, 4.0, 20.0, 60.0, 120.0, 400.0] {
            let d = dop_for_bytes(BYTES_PER_VERTEX * mult);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn hash_join_variants_change_dop() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let l = est(1e7, 100.0);
        let r = est(1e7, 100.0);
        let own = est(1e7, 200.0);
        let c1 = impl_cost(PhysImpl::HashJoin1, &op, &own, &[&l, &r], &obs());
        let c2 = impl_cost(PhysImpl::HashJoin2, &op, &own, &[&l, &r], &obs());
        let c3 = impl_cost(PhysImpl::HashJoin3, &op, &own, &[&l, &r], &obs());
        assert!(c2.dop > c1.dop);
        assert!(c3.dop < c1.dop);
    }

    #[test]
    fn broadcast_join_cheap_when_right_small() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let big = est(1e8, 100.0);
        let small = est(100.0, 50.0);
        let own = est(1e8, 150.0);
        let bc = impl_cost(PhysImpl::BroadcastJoin, &op, &own, &[&big, &small], &obs());
        let hash = impl_cost(PhysImpl::HashJoin1, &op, &own, &[&big, &small], &obs());
        // Broadcast itself is cheap; the exchange difference decides the
        // rest (no repartitioning of the big side).
        assert!(bc.cost < hash.cost * 2.0);
    }

    #[test]
    fn loop_join_only_sane_for_tiny_inputs() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let tiny = est(100.0, 50.0);
        let own = est(100.0, 100.0);
        let cheap = impl_cost(PhysImpl::LoopJoin, &op, &own, &[&tiny, &tiny], &obs());
        let big = est(1e6, 50.0);
        let expensive = impl_cost(PhysImpl::LoopJoin, &op, &own, &[&big, &big], &obs());
        assert!(cheap.cost < 1.0);
        assert!(expensive.cost > 1000.0);
    }

    #[test]
    fn required_parts_for_hash_join_are_hash() {
        let op = LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(3), ColId(7))],
        };
        let parts = required_child_parts(PhysImpl::HashJoin1, &op, 2);
        assert_eq!(parts[0], Partitioning::Hash(vec![ColId(3)]));
        assert_eq!(parts[1], Partitioning::Hash(vec![ColId(7)]));
        let bparts = required_child_parts(PhysImpl::BroadcastJoin, &op, 2);
        assert_eq!(bparts[0], Partitioning::Any);
        assert_eq!(bparts[1], Partitioning::Broadcast);
    }

    #[test]
    fn exchange_impl_mapping() {
        assert_eq!(
            exchange_impl_for(&Partitioning::Hash(vec![ColId(0)])),
            Some(PhysImpl::ExchangeHash)
        );
        assert_eq!(
            exchange_impl_for(&Partitioning::Singleton),
            Some(PhysImpl::ExchangeGather)
        );
        assert_eq!(exchange_impl_for(&Partitioning::Any), None);
    }

    #[test]
    fn scan_cost_scales_with_pushed_predicates() {
        let pushed = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::atom(scope_ir::PredAtom::unknown(
                ColId(0),
                scope_ir::CmpOp::Eq,
                scope_ir::Literal::Int(1),
            )),
        };
        let own = est(1e4, 100.0);
        let idx = impl_cost(PhysImpl::ScanIndexed, &pushed, &own, &[], &obs());
        let par = impl_cost(PhysImpl::ScanParallel, &pushed, &own, &[], &obs());
        // Indexed scans profit from selective pushed predicates.
        assert!(idx.cost < par.cost);
    }
}
