//! The Cascades memo: hash-consed groups of logically-equivalent
//! expressions, backed by flat slabs instead of per-expression heap nodes.
//!
//! Groups hold alternative expressions ([`MExpr`]) plus the logical
//! estimates derived from the group's *canonical* (first) expression.
//! Estimates are also kept **per expression**: two equivalent shapes can
//! carry different estimated cardinalities (order-sensitive backoff, moved
//! predicates), which is exactly why estimated costs across rule
//! configurations are not comparable (§5.3).
//!
//! ## Arena layout
//!
//! The memo owns four parallel slabs plus an operator interner:
//!
//! * `exprs` — [`MExpr`] records, which are small `Copy` structs holding
//!   *handles* (an interned [`ExprId`] for the operator, a range into
//!   `child_slab`, an [`EstId`] into `ests`) instead of owned data,
//! * `child_slab` — concatenated child-group lists; expressions that share
//!   children (e.g. re-inserted via [`Memo::insert_existing`]) share the
//!   same range,
//! * `ests` — one [`LogicalEst`] per expression; a group's canonical
//!   estimate is the same slab entry as its first expression's,
//! * `interner` — a per-memo [`ExprInterner`], so each distinct operator
//!   is stored once no matter how many expressions reference it.
//!
//! Group membership is an intrusive singly-linked list threaded through
//! `MExpr::next_in_group` (append-at-tail preserves insertion order, so the
//! canonical expression and exploration order match the old `Vec<MExprId>`
//! representation exactly).
//!
//! [`Memo::clear`] resets every slab without freeing, so a thread-local
//! compile scratch ([`crate::optimizer::CompileScratch`]) reaches a
//! steady state where inserting an expression allocates nothing.
//!
//! ## Dedup keys
//!
//! Expressions are deduplicated by the streamed `(op.memo_hash, children)`
//! hash, exactly as before interning: the interner stores the hasher state
//! after the op prefix, and [`Memo::insert_inner`] resumes a clone of it
//! with the children. This is byte-identical to the old `expr_key`
//! (proven by a unit test in `scope-ir::intern`), including its
//! hash-only collision semantics.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use scope_ir::ids::NodeId;
use scope_ir::{ExprId, ExprInterner, LogicalOp, OpKind, PlanGraph};

use crate::estimate::{ChildEsts, Estimator, LogicalEst};
use crate::ruleset::RuleId;
use crate::search::CompileError;

/// Maximum alternative expressions per group; further additions are
/// rejected (exploration budget, like real optimizers' promise cutoffs).
pub const MAX_EXPRS_PER_GROUP: usize = 24;

/// Maximum total expressions in a memo; exploration stops beyond this.
pub const MAX_TOTAL_EXPRS: usize = 20_000;

/// Sentinel for "no expression" in the intrusive group lists.
const NONE: u32 = u32::MAX;

/// Id of a memo group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl GroupId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupId({})", self.0)
    }
}

/// Id of a memo expression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MExprId(pub u32);

impl MExprId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MExprId({})", self.0)
    }
}

/// Index of a [`LogicalEst`] in the memo's estimate slab.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EstId(u32);

impl EstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One expression: an operator over child *groups*. A plain-`Copy` record
/// of handles — resolve them through the owning [`Memo`]
/// ([`Memo::op`], [`Memo::children`], [`Memo::expr_est`]).
#[derive(Clone, Copy, Debug)]
pub struct MExpr {
    /// Interned operator handle ([`Memo::op`] resolves it).
    pub op: ExprId,
    /// Cached operator kind (no interner lookup needed).
    pub kind: OpKind,
    children_start: u32,
    children_len: u32,
    /// Group this expression belongs to.
    pub group: GroupId,
    /// Transformation rule that created it (`None` for original nodes).
    pub created_by: Option<RuleId>,
    /// This expression's own estimated output ([`Memo::est`] resolves it).
    pub est: EstId,
    /// Next expression in the same group (intrusive list; `NONE` ends it).
    next_in_group: u32,
}

impl MExpr {
    /// Number of child groups.
    #[inline]
    pub fn n_children(&self) -> usize {
        self.children_len as usize
    }
}

/// A set of logically-equivalent expressions (an intrusive list headed at
/// `first`, in insertion order).
#[derive(Clone, Copy, Debug)]
pub struct Group {
    first: u32,
    last: u32,
    len: u32,
    /// Canonical logical estimate (shared with the first expression).
    pub est: EstId,
}

impl Group {
    /// Number of alternative expressions in the group.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Operator source for [`Memo::insert_inner`]: borrow, move, or an
/// already-interned handle. Cloning happens at most once (borrowed op,
/// first sight) and never for duplicates or budget rejections.
enum OpSrc<'a> {
    Ref(&'a LogicalOp),
    Owned(LogicalOp),
    Interned(ExprId),
}

/// Children source: an external slice (copied into the slab only when the
/// insertion actually lands) or an existing expression's range (shared,
/// zero-copy).
enum ChildSrc<'a> {
    Slice(&'a [GroupId]),
    OfExpr(MExprId),
}

/// Adapter exposing a child-group list's canonical estimates to
/// [`Estimator::derive`] without collecting a `Vec<&LogicalEst>`.
struct SlabChildEsts<'a> {
    groups: &'a [Group],
    ests: &'a [LogicalEst],
    children: &'a [GroupId],
}

impl ChildEsts for SlabChildEsts<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.children.len()
    }

    #[inline]
    fn get(&self, i: usize) -> &LogicalEst {
        &self.ests[self.groups[self.children[i].index()].est.index()]
    }
}

/// Outcome of inserting an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inserted {
    /// Fresh expression added to this group.
    New(MExprId),
    /// Expression already existed (same or different group).
    Duplicate(MExprId),
    /// Rejected by the per-group or global budget.
    Budget,
}

/// The memo.
pub struct Memo {
    groups: Vec<Group>,
    exprs: Vec<MExpr>,
    /// Concatenated child-group lists; each expression owns (or shares) a
    /// `[children_start, children_start + children_len)` range.
    child_slab: Vec<GroupId>,
    /// One estimate per expression; group estimates alias the canonical
    /// expression's entry.
    ests: Vec<LogicalEst>,
    /// Per-memo operator interner (see module docs).
    interner: ExprInterner,
    /// `(op value-hash, children)` → first expression anywhere; used to
    /// reuse groups when a rewrite re-creates a known sub-expression.
    any_group: HashMap<u64, MExprId>,
    /// `(op value-hash, children, group)` → expression; prevents duplicate
    /// alternatives within one group while still allowing the same shape to
    /// appear in several groups (needed for identity-elimination rewrites).
    by_group: HashMap<(u64, GroupId), MExprId>,
    /// Insertions rejected by the per-group or global budget (observability
    /// counter, surfaced in `CompiledPlan` stats).
    budget_rejections: usize,
    /// Ingest scratch, kept across [`Memo::clear`] for allocation reuse.
    node_group: HashMap<NodeId, GroupId>,
    ingest_children: Vec<GroupId>,
}

impl Default for Memo {
    fn default() -> Memo {
        Memo::empty()
    }
}

impl Memo {
    /// Ingest a normalized logical plan into a fresh memo. Shared DAG nodes
    /// map to shared groups. Returns the memo and the root group, or a
    /// typed [`CompileError::MemoExhausted`] when the plan alone blows the
    /// hard expression cap.
    pub fn from_plan(
        plan: &PlanGraph,
        est: &Estimator<'_>,
    ) -> Result<(Memo, GroupId), CompileError> {
        let mut memo = Memo::empty();
        let root = memo.ingest(plan, est)?;
        Ok((memo, root))
    }

    /// An empty memo (normal use is [`Memo::from_plan`] or a reused
    /// scratch memo via [`Memo::clear`] + [`Memo::ingest`]).
    pub fn empty() -> Memo {
        Memo {
            groups: Vec::new(),
            exprs: Vec::new(),
            child_slab: Vec::new(),
            ests: Vec::new(),
            interner: ExprInterner::new(),
            any_group: HashMap::new(),
            by_group: HashMap::new(),
            budget_rejections: 0,
            node_group: HashMap::new(),
            ingest_children: Vec::new(),
        }
    }

    /// Reset every slab and table without freeing — the allocation-reuse
    /// half of the compile-scratch contract.
    pub fn clear(&mut self) {
        self.groups.clear();
        self.exprs.clear();
        self.child_slab.clear();
        self.ests.clear();
        self.interner.clear();
        self.any_group.clear();
        self.by_group.clear();
        self.budget_rejections = 0;
        self.node_group.clear();
        self.ingest_children.clear();
    }

    /// Ingest a normalized plan into this (empty or cleared) memo and
    /// return the root group. Each node's operator is inserted by
    /// reference — the memo no longer clones one `LogicalOp` per node.
    pub fn ingest(
        &mut self,
        plan: &PlanGraph,
        est: &Estimator<'_>,
    ) -> Result<GroupId, CompileError> {
        debug_assert!(self.exprs.is_empty(), "ingest expects an empty memo");
        let mut node_group = std::mem::take(&mut self.node_group);
        let mut children = std::mem::take(&mut self.ingest_children);
        node_group.clear();
        let reachable = plan.reachable();
        for id in &reachable {
            let node = plan.node(*id);
            children.clear();
            children.extend(node.children.iter().map(|c| node_group[c]));
            let inserted = self.insert_ref(&node.op, &children, None, None, est);
            let gid = match inserted {
                Inserted::New(e) | Inserted::Duplicate(e) => self.exprs[e.index()].group,
                Inserted::Budget => {
                    self.node_group = node_group;
                    self.ingest_children = children;
                    return Err(CompileError::MemoExhausted {
                        groups: self.num_groups(),
                        exprs: self.num_exprs(),
                    });
                }
            };
            node_group.insert(*id, gid);
        }
        let root = node_group[&plan.root().expect("plan has root")];
        self.node_group = node_group;
        self.ingest_children = children;
        Ok(root)
    }

    /// Insert an expression, borrowing the operator (cloned only if this
    /// is the first time the memo sees it). If `target` is `Some`, the
    /// expression is an alternative for that group; otherwise a new group
    /// is created (unless the expression already exists somewhere, in
    /// which case its group is reused).
    pub fn insert_ref(
        &mut self,
        op: &LogicalOp,
        children: &[GroupId],
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        self.insert_inner(
            OpSrc::Ref(op),
            ChildSrc::Slice(children),
            target,
            created_by,
            est,
        )
    }

    /// Insert an expression, taking ownership of the operator (moved into
    /// the interner on first sight, dropped on a duplicate — never cloned).
    pub fn insert_owned(
        &mut self,
        op: LogicalOp,
        children: &[GroupId],
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        self.insert_inner(
            OpSrc::Owned(op),
            ChildSrc::Slice(children),
            target,
            created_by,
            est,
        )
    }

    /// Insert an expression whose operator is already interned in *this*
    /// memo (e.g. reusing an existing expression's op with new children).
    pub fn insert_interned(
        &mut self,
        op: ExprId,
        children: &[GroupId],
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        self.insert_inner(
            OpSrc::Interned(op),
            ChildSrc::Slice(children),
            target,
            created_by,
            est,
        )
    }

    /// Insert an owned operator over an existing expression's children
    /// (shared child range — no copy).
    pub fn insert_owned_children_of(
        &mut self,
        op: LogicalOp,
        children_of: MExprId,
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        self.insert_inner(
            OpSrc::Owned(op),
            ChildSrc::OfExpr(children_of),
            target,
            created_by,
            est,
        )
    }

    /// Insert an already-interned operator over an existing expression's
    /// children (shared child range — no copy, no clone).
    pub fn insert_interned_children_of(
        &mut self,
        op: ExprId,
        children_of: MExprId,
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        self.insert_inner(
            OpSrc::Interned(op),
            ChildSrc::OfExpr(children_of),
            target,
            created_by,
            est,
        )
    }

    /// Re-insert an existing expression (same operator, same children)
    /// into another group. Shares the source's child range — no copies at
    /// all.
    pub fn insert_existing(
        &mut self,
        src: MExprId,
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        let op = self.exprs[src.index()].op;
        self.insert_inner(
            OpSrc::Interned(op),
            ChildSrc::OfExpr(src),
            target,
            created_by,
            est,
        )
    }

    fn insert_inner(
        &mut self,
        op: OpSrc<'_>,
        children: ChildSrc<'_>,
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        let op_id = match op {
            OpSrc::Ref(r) => self.interner.intern(r),
            OpSrc::Owned(o) => self.interner.intern_owned(o),
            OpSrc::Interned(id) => id,
        };
        let shared_range = match children {
            ChildSrc::Slice(_) => None,
            ChildSrc::OfExpr(e) => {
                let ex = &self.exprs[e.index()];
                Some((ex.children_start, ex.children_len))
            }
        };
        let shared_slice = |slab: &[GroupId]| -> std::ops::Range<usize> {
            let (s, l) = shared_range.expect("range view only for shared children");
            debug_assert!((s + l) as usize <= slab.len());
            s as usize..(s + l) as usize
        };
        // Byte-identical to the legacy `expr_key`: the interner's stored
        // prefix is the hasher state right after `op.memo_hash`.
        let key = {
            let mut h = self.interner.prefix_hasher(op_id);
            match &children {
                ChildSrc::Slice(s) => s.hash(&mut h),
                ChildSrc::OfExpr(_) => {
                    self.child_slab[shared_slice(&self.child_slab)].hash(&mut h);
                }
            }
            h.finish()
        };
        // Dedup and budget checks first — rejected insertions touch no slab.
        match target {
            None => {
                if let Some(&existing) = self.any_group.get(&key) {
                    return Inserted::Duplicate(existing);
                }
            }
            Some(g) => {
                if let Some(&existing) = self.by_group.get(&(key, g)) {
                    return Inserted::Duplicate(existing);
                }
                if self.groups[g.index()].len() >= MAX_EXPRS_PER_GROUP {
                    self.budget_rejections += 1;
                    return Inserted::Budget;
                }
            }
        }
        if self.exprs.len() >= MAX_TOTAL_EXPRS {
            self.budget_rejections += 1;
            return Inserted::Budget;
        }
        let e = {
            let child_slice: &[GroupId] = match &children {
                ChildSrc::Slice(s) => s,
                ChildSrc::OfExpr(_) => &self.child_slab[shared_slice(&self.child_slab)],
            };
            let ce = SlabChildEsts {
                groups: &self.groups,
                ests: &self.ests,
                children: child_slice,
            };
            est.derive(self.interner.op(op_id), &ce)
        };
        let (children_start, children_len) = match children {
            ChildSrc::Slice(s) => {
                let start = self.child_slab.len() as u32;
                self.child_slab.extend_from_slice(s);
                (start, s.len() as u32)
            }
            ChildSrc::OfExpr(_) => shared_range.expect("shared range resolved above"),
        };
        let est_id = EstId(self.ests.len() as u32);
        self.ests.push(e);
        let group = match target {
            Some(g) => g,
            None => {
                let g = GroupId(self.groups.len() as u32);
                self.groups.push(Group {
                    first: NONE,
                    last: NONE,
                    len: 0,
                    est: est_id,
                });
                g
            }
        };
        let id = MExprId(self.exprs.len() as u32);
        self.exprs.push(MExpr {
            op: op_id,
            kind: self.interner.kind(op_id),
            children_start,
            children_len,
            group,
            created_by,
            est: est_id,
            next_in_group: NONE,
        });
        let gi = group.index();
        let prev_last = self.groups[gi].last;
        let was_empty = self.groups[gi].len == 0;
        self.groups[gi].len += 1;
        self.groups[gi].last = id.0;
        if was_empty {
            self.groups[gi].first = id.0;
        } else {
            self.exprs[prev_last as usize].next_in_group = id.0;
        }
        self.any_group.entry(key).or_insert(id);
        self.by_group.insert((key, group), id);
        Inserted::New(id)
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.index()]
    }

    pub fn expr(&self, id: MExprId) -> &MExpr {
        &self.exprs[id.index()]
    }

    /// The expression's operator, resolved through the interner.
    #[inline]
    pub fn op(&self, id: MExprId) -> &LogicalOp {
        self.interner.op(self.exprs[id.index()].op)
    }

    /// The expression's operator kind (cached; no interner lookup).
    #[inline]
    pub fn kind_of(&self, id: MExprId) -> OpKind {
        self.exprs[id.index()].kind
    }

    /// The expression's child groups.
    #[inline]
    pub fn children(&self, id: MExprId) -> &[GroupId] {
        let e = &self.exprs[id.index()];
        &self.child_slab[e.children_start as usize..(e.children_start + e.children_len) as usize]
    }

    /// Resolve an interned operator handle (e.g. `MExpr::op`).
    #[inline]
    pub fn interned_op(&self, id: ExprId) -> &LogicalOp {
        self.interner.op(id)
    }

    /// The canonical (first) expression of a group.
    #[inline]
    pub fn canonical(&self, id: GroupId) -> MExprId {
        MExprId(self.groups[id.index()].first)
    }

    /// The canonical expression's operator.
    #[inline]
    pub fn canonical_op(&self, id: GroupId) -> &LogicalOp {
        self.op(self.canonical(id))
    }

    /// The canonical expression's kind.
    #[inline]
    pub fn canonical_kind(&self, id: GroupId) -> OpKind {
        self.kind_of(self.canonical(id))
    }

    /// Number of alternative expressions in a group.
    #[inline]
    pub fn group_len(&self, id: GroupId) -> usize {
        self.groups[id.index()].len()
    }

    /// Iterate a group's expressions in insertion order (canonical first).
    pub fn group_exprs(&self, id: GroupId) -> GroupExprs<'_> {
        GroupExprs {
            exprs: &self.exprs,
            next: self.groups[id.index()].first,
        }
    }

    /// The group's canonical logical estimate.
    #[inline]
    pub fn group_est(&self, id: GroupId) -> &LogicalEst {
        &self.ests[self.groups[id.index()].est.index()]
    }

    /// An expression's own logical estimate.
    #[inline]
    pub fn expr_est(&self, id: MExprId) -> &LogicalEst {
        &self.ests[self.exprs[id.index()].est.index()]
    }

    /// Resolve an estimate handle (e.g. `MExpr::est`, `Group::est`).
    #[inline]
    pub fn est(&self, id: EstId) -> &LogicalEst {
        &self.ests[id.index()]
    }

    /// View a child-group slice as its canonical estimates without
    /// materialising a `Vec<&LogicalEst>` (a [`ChildEsts`] impl for the
    /// costing path).
    #[inline]
    pub fn group_ests<'a>(&'a self, children: &'a [GroupId]) -> GroupEsts<'a> {
        GroupEsts {
            memo: self,
            children,
        }
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Number of insertions rejected by the memo's space budgets.
    pub fn budget_rejections(&self) -> usize {
        self.budget_rejections
    }

    /// Iterate all expression ids (insertion order — original plan first,
    /// then rule outputs).
    pub fn expr_ids(&self) -> impl Iterator<Item = MExprId> {
        (0..self.exprs.len() as u32).map(MExprId)
    }
}

/// Zero-allocation [`ChildEsts`] view: resolves each child group to its
/// canonical estimate on demand.
pub struct GroupEsts<'a> {
    memo: &'a Memo,
    children: &'a [GroupId],
}

impl ChildEsts for GroupEsts<'_> {
    fn len(&self) -> usize {
        self.children.len()
    }
    fn get(&self, i: usize) -> &LogicalEst {
        self.memo.group_est(self.children[i])
    }
}

/// Iterator over a group's expressions (intrusive list walk).
pub struct GroupExprs<'a> {
    exprs: &'a [MExpr],
    next: u32,
}

impl Iterator for GroupExprs<'_> {
    type Item = MExprId;

    fn next(&mut self) -> Option<MExprId> {
        if self.next == NONE {
            return None;
        }
        let id = MExprId(self.next);
        self.next = self.exprs[id.index()].next_in_group;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_ir::TrueCatalog;

    fn cat() -> TrueCatalog {
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(100, 0.0, DomainId(0));
        cat.add_table(10_000, 100, 1, vec![c0]);
        cat
    }

    fn filter_op(lit: i64) -> LogicalOp {
        LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(0), CmpOp::Eq, Literal::Int(lit))),
        }
    }

    #[test]
    fn ingest_dedups_shared_nodes() {
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(0),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let f = plan.add_unchecked(filter_op(1), vec![s]);
        let u = plan.add_unchecked(LogicalOp::UnionAll, vec![f, f]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 0 }, vec![u]);
        plan.set_root(o);

        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let (memo, root) = Memo::from_plan(&plan, &est).unwrap();
        // scan, filter, union, output — shared filter ingested once.
        assert_eq!(memo.num_groups(), 4);
        assert_eq!(memo.num_exprs(), 4);
        assert_eq!(memo.canonical_kind(root), scope_ir::OpKind::Output);
    }

    #[test]
    fn insert_dedups_identical_expressions() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let first = memo.insert_ref(&scan, &[], None, None, &est);
        let Inserted::New(e1) = first else { panic!() };
        let second = memo.insert_owned(scan, &[], None, None, &est);
        assert_eq!(second, Inserted::Duplicate(e1));
        assert_eq!(memo.num_groups(), 1);
        // The duplicate was deduplicated inside the interner too.
        assert_eq!(memo.num_exprs(), 1);
    }

    #[test]
    fn alternative_exprs_share_group_but_keep_own_estimates() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let Inserted::New(scan_e) = memo.insert_owned(scan, &[], None, None, &est) else {
            panic!()
        };
        let scan_g = memo.expr(scan_e).group;
        let Inserted::New(f1) = memo.insert_owned(filter_op(1), &[scan_g], None, None, &est) else {
            panic!()
        };
        let fg = memo.expr(f1).group;
        // An alternative in the same group: the same filter with the
        // predicate pushed into the scan would be the realistic case; here
        // we just add a differently-valued filter as a stand-in alternative.
        let Inserted::New(f2) =
            memo.insert_owned(filter_op(2), &[scan_g], Some(fg), Some(RuleId(90)), &est)
        else {
            panic!()
        };
        assert_eq!(memo.expr(f2).group, fg);
        assert_eq!(memo.group_len(fg), 2);
        assert_eq!(memo.expr(f2).created_by, Some(RuleId(90)));
        // Canonical estimate is from the first expression.
        assert_eq!(memo.group_est(fg).rows, memo.expr_est(f1).rows);
        // Intrusive list yields insertion order, canonical first.
        let order: Vec<MExprId> = memo.group_exprs(fg).collect();
        assert_eq!(order, vec![f1, f2]);
        assert_eq!(memo.canonical(fg), f1);
    }

    #[test]
    fn group_budget_is_enforced() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let Inserted::New(scan_e) = memo.insert_owned(scan, &[], None, None, &est) else {
            panic!()
        };
        let scan_g = memo.expr(scan_e).group;
        let Inserted::New(f) = memo.insert_owned(filter_op(0), &[scan_g], None, None, &est) else {
            panic!()
        };
        let fg = memo.expr(f).group;
        let mut budget_hit = false;
        for lit in 1..100 {
            if let Inserted::Budget =
                memo.insert_owned(filter_op(lit), &[scan_g], Some(fg), None, &est)
            {
                budget_hit = true;
                break;
            }
        }
        assert!(budget_hit);
        assert_eq!(memo.group_len(fg), MAX_EXPRS_PER_GROUP);
        assert!(memo.budget_rejections() >= 1);
    }

    #[test]
    fn insert_existing_shares_the_child_range() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let Inserted::New(scan_e) = memo.insert_owned(scan, &[], None, None, &est) else {
            panic!()
        };
        let scan_g = memo.expr(scan_e).group;
        let Inserted::New(f1) = memo.insert_owned(filter_op(1), &[scan_g], None, None, &est) else {
            panic!()
        };
        // Make a second group, then re-insert f1's expression into it.
        let Inserted::New(f2) = memo.insert_owned(filter_op(2), &[scan_g], None, None, &est) else {
            panic!()
        };
        let other = memo.expr(f2).group;
        let slab_before = memo.child_slab.len();
        let Inserted::New(re) = memo.insert_existing(f1, Some(other), Some(RuleId(84)), &est)
        else {
            panic!()
        };
        assert_eq!(memo.child_slab.len(), slab_before, "no child copy");
        assert_eq!(memo.children(re), memo.children(f1));
        assert_eq!(memo.op(re), memo.op(f1));
        // Re-inserting the identical shape into the same group again is a
        // duplicate, not a new expression.
        assert_eq!(
            memo.insert_existing(f1, Some(other), Some(RuleId(84)), &est),
            Inserted::Duplicate(re)
        );
    }

    #[test]
    fn cleared_memo_reproduces_identical_ids() {
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(0),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let f = plan.add_unchecked(filter_op(1), vec![s]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
        plan.set_root(o);

        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let root1 = memo.ingest(&plan, &est).unwrap();
        let n1 = (memo.num_groups(), memo.num_exprs());
        memo.clear();
        assert_eq!(memo.num_exprs(), 0);
        let root2 = memo.ingest(&plan, &est).unwrap();
        assert_eq!(root1, root2);
        assert_eq!(n1, (memo.num_groups(), memo.num_exprs()));
    }
}
