//! The Cascades memo: hash-consed groups of logically-equivalent
//! expressions.
//!
//! Groups hold alternative expressions ([`MExpr`]) plus the logical
//! estimates derived from the group's *canonical* (first) expression.
//! Estimates are also kept **per expression**: two equivalent shapes can
//! carry different estimated cardinalities (order-sensitive backoff, moved
//! predicates), which is exactly why estimated costs across rule
//! configurations are not comparable (§5.3).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use scope_ir::ids::NodeId;
use scope_ir::{LogicalOp, PlanGraph};

use crate::estimate::{Estimator, LogicalEst};
use crate::ruleset::RuleId;
use crate::search::CompileError;

/// Maximum alternative expressions per group; further additions are
/// rejected (exploration budget, like real optimizers' promise cutoffs).
pub const MAX_EXPRS_PER_GROUP: usize = 24;

/// Maximum total expressions in a memo; exploration stops beyond this.
pub const MAX_TOTAL_EXPRS: usize = 20_000;

/// Id of a memo group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl GroupId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupId({})", self.0)
    }
}

/// Id of a memo expression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MExprId(pub u32);

impl MExprId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MExprId({})", self.0)
    }
}

/// One expression: an operator over child *groups*.
#[derive(Clone, Debug)]
pub struct MExpr {
    pub op: LogicalOp,
    pub children: Vec<GroupId>,
    /// Group this expression belongs to.
    pub group: GroupId,
    /// Transformation rule that created it (`None` for original nodes).
    pub created_by: Option<RuleId>,
    /// This expression's own estimated output.
    pub est: LogicalEst,
}

/// A set of logically-equivalent expressions.
#[derive(Clone, Debug)]
pub struct Group {
    pub exprs: Vec<MExprId>,
    /// Canonical logical estimate (from the first expression).
    pub est: LogicalEst,
}

/// The memo.
pub struct Memo {
    groups: Vec<Group>,
    exprs: Vec<MExpr>,
    /// `(op value-hash, children)` → first expression anywhere; used to
    /// reuse groups when a rewrite re-creates a known sub-expression.
    any_group: HashMap<u64, MExprId>,
    /// `(op value-hash, children, group)` → expression; prevents duplicate
    /// alternatives within one group while still allowing the same shape to
    /// appear in several groups (needed for identity-elimination rewrites).
    by_group: HashMap<(u64, GroupId), MExprId>,
    /// Insertions rejected by the per-group or global budget (observability
    /// counter, surfaced in `CompiledPlan` stats).
    budget_rejections: usize,
}

fn expr_key(op: &LogicalOp, children: &[GroupId]) -> u64 {
    let mut h = DefaultHasher::new();
    op.memo_hash(&mut h);
    children.hash(&mut h);
    h.finish()
}

/// Outcome of inserting an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inserted {
    /// Fresh expression added to this group.
    New(MExprId),
    /// Expression already existed (same or different group).
    Duplicate(MExprId),
    /// Rejected by the per-group or global budget.
    Budget,
}

impl Memo {
    /// Ingest a normalized logical plan. Shared DAG nodes map to shared
    /// groups. Returns the memo and the root group, or a typed
    /// [`CompileError::MemoExhausted`] when the plan alone blows the hard
    /// expression cap (every node is a fresh group during ingest, so only
    /// the global budget can fire — but a typed error beats an
    /// `unreachable!` if that assumption ever breaks).
    pub fn from_plan(
        plan: &PlanGraph,
        est: &Estimator<'_>,
    ) -> Result<(Memo, GroupId), CompileError> {
        let mut memo = Memo::empty();
        let mut node_group: HashMap<NodeId, GroupId> = HashMap::new();
        let reachable = plan.reachable();
        for id in &reachable {
            let node = plan.node(*id);
            let children: Vec<GroupId> = node.children.iter().map(|c| node_group[c]).collect();
            let gid = match memo.insert(node.op.clone(), children, None, None, est) {
                Inserted::New(e) | Inserted::Duplicate(e) => memo.exprs[e.index()].group,
                Inserted::Budget => {
                    return Err(CompileError::MemoExhausted {
                        groups: memo.num_groups(),
                        exprs: memo.num_exprs(),
                    })
                }
            };
            node_group.insert(*id, gid);
        }
        let root = node_group[&plan.root().expect("plan has root")];
        Ok((memo, root))
    }

    /// An empty memo (mainly for tests; normal use is [`Memo::from_plan`]).
    pub fn empty() -> Memo {
        Memo {
            groups: Vec::new(),
            exprs: Vec::new(),
            any_group: HashMap::new(),
            by_group: HashMap::new(),
            budget_rejections: 0,
        }
    }

    /// Insert an expression. If `target` is `Some`, the expression is an
    /// alternative for that group; otherwise a new group is created (unless
    /// the expression already exists somewhere, in which case its group is
    /// reused).
    pub fn insert(
        &mut self,
        op: LogicalOp,
        children: Vec<GroupId>,
        target: Option<GroupId>,
        created_by: Option<RuleId>,
        est: &Estimator<'_>,
    ) -> Inserted {
        let key = expr_key(&op, &children);
        match target {
            None => {
                if let Some(&existing) = self.any_group.get(&key) {
                    return Inserted::Duplicate(existing);
                }
            }
            Some(g) => {
                if let Some(&existing) = self.by_group.get(&(key, g)) {
                    return Inserted::Duplicate(existing);
                }
                if self.groups[g.index()].exprs.len() >= MAX_EXPRS_PER_GROUP {
                    self.budget_rejections += 1;
                    return Inserted::Budget;
                }
            }
        }
        if self.exprs.len() >= MAX_TOTAL_EXPRS {
            self.budget_rejections += 1;
            return Inserted::Budget;
        }
        let child_ests: Vec<&LogicalEst> = children
            .iter()
            .map(|g| &self.groups[g.index()].est)
            .collect();
        let e = est.derive(&op, &child_ests);
        let group = match target {
            Some(g) => g,
            None => {
                let g = GroupId(self.groups.len() as u32);
                self.groups.push(Group {
                    exprs: Vec::new(),
                    est: e.clone(),
                });
                g
            }
        };
        let id = MExprId(self.exprs.len() as u32);
        self.exprs.push(MExpr {
            op,
            children,
            group,
            created_by,
            est: e,
        });
        self.groups[group.index()].exprs.push(id);
        self.any_group.entry(key).or_insert(id);
        self.by_group.insert((key, group), id);
        Inserted::New(id)
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.index()]
    }

    pub fn expr(&self, id: MExprId) -> &MExpr {
        &self.exprs[id.index()]
    }

    /// The canonical (first) expression of a group.
    pub fn canonical(&self, id: GroupId) -> &MExpr {
        let e = self.groups[id.index()].exprs[0];
        &self.exprs[e.index()]
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Number of insertions rejected by the memo's space budgets.
    pub fn budget_rejections(&self) -> usize {
        self.budget_rejections
    }

    /// Iterate all expression ids (insertion order — original plan first,
    /// then rule outputs).
    pub fn expr_ids(&self) -> impl Iterator<Item = MExprId> {
        (0..self.exprs.len() as u32).map(MExprId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_ir::TrueCatalog;

    fn cat() -> TrueCatalog {
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(100, 0.0, DomainId(0));
        cat.add_table(10_000, 100, 1, vec![c0]);
        cat
    }

    fn filter_op(lit: i64) -> LogicalOp {
        LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(0), CmpOp::Eq, Literal::Int(lit))),
        }
    }

    #[test]
    fn ingest_dedups_shared_nodes() {
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(0),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let f = plan.add_unchecked(filter_op(1), vec![s]);
        let u = plan.add_unchecked(LogicalOp::UnionAll, vec![f, f]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 0 }, vec![u]);
        plan.set_root(o);

        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let (memo, root) = Memo::from_plan(&plan, &est).unwrap();
        // scan, filter, union, output — shared filter ingested once.
        assert_eq!(memo.num_groups(), 4);
        assert_eq!(memo.num_exprs(), 4);
        assert_eq!(memo.canonical(root).op.kind(), scope_ir::OpKind::Output);
    }

    #[test]
    fn insert_dedups_identical_expressions() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let first = memo.insert(scan.clone(), vec![], None, None, &est);
        let Inserted::New(e1) = first else { panic!() };
        let second = memo.insert(scan, vec![], None, None, &est);
        assert_eq!(second, Inserted::Duplicate(e1));
        assert_eq!(memo.num_groups(), 1);
    }

    #[test]
    fn alternative_exprs_share_group_but_keep_own_estimates() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let Inserted::New(scan_e) = memo.insert(scan, vec![], None, None, &est) else {
            panic!()
        };
        let scan_g = memo.expr(scan_e).group;
        let Inserted::New(f1) = memo.insert(filter_op(1), vec![scan_g], None, None, &est) else {
            panic!()
        };
        let fg = memo.expr(f1).group;
        // An alternative in the same group: the same filter with the
        // predicate pushed into the scan would be the realistic case; here
        // we just add a differently-valued filter as a stand-in alternative.
        let Inserted::New(f2) =
            memo.insert(filter_op(2), vec![scan_g], Some(fg), Some(RuleId(90)), &est)
        else {
            panic!()
        };
        assert_eq!(memo.expr(f2).group, fg);
        assert_eq!(memo.group(fg).exprs.len(), 2);
        assert_eq!(memo.expr(f2).created_by, Some(RuleId(90)));
        // Canonical estimate is from the first expression.
        assert_eq!(memo.group(fg).est.rows, memo.expr(f1).est.rows);
    }

    #[test]
    fn group_budget_is_enforced() {
        let cat = cat();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let mut memo = Memo::empty();
        let scan = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let Inserted::New(scan_e) = memo.insert(scan, vec![], None, None, &est) else {
            panic!()
        };
        let scan_g = memo.expr(scan_e).group;
        let Inserted::New(f) = memo.insert(filter_op(0), vec![scan_g], None, None, &est) else {
            panic!()
        };
        let fg = memo.expr(f).group;
        let mut budget_hit = false;
        for lit in 1..100 {
            if let Inserted::Budget =
                memo.insert(filter_op(lit), vec![scan_g], Some(fg), None, &est)
            {
                budget_hit = true;
                break;
            }
        }
        assert!(budget_hit);
        assert_eq!(memo.group(fg).exprs.len(), MAX_EXPRS_PER_GROUP);
    }
}
