//! Physical-plan validation.
//!
//! [`validate_physical`] checks the invariants the optimizer *guarantees*
//! for every extracted [`PhysPlan`]: a well-formed `Output`-rooted DAG,
//! arity-correct operators, enforced physical properties (every partitioned
//! operator sees correctly-partitioned input, i.e. exchanges were inserted
//! where required), finite non-negative estimates, and sane parallelism.
//! Violations come back as the shared [`PlanViolation`] vocabulary from
//! `scope-ir`, so the pipeline can reject a corrupted candidate plan with a
//! typed reason instead of executing it.
//!
//! Column-availability is deliberately *not* checked here: legitimate
//! rewrites (`ReseqProjectOnFilter` and friends) push projections below
//! column-referencing operators, so column flow is not invariant under
//! exploration. See `scope_ir::validate::validate_logical` for the input-
//! plan column checks.

use scope_ir::validate::{check_structure, PlanViolation, StructuralNode};

use crate::physical::{Partitioning, PhysOp, PhysPlan};

/// Valid child-count range `(min, max)` for a physical operator.
fn phys_arity(op: &PhysOp) -> (usize, usize) {
    match op {
        PhysOp::Scan { .. } => (0, 0),
        PhysOp::HashJoin { .. }
        | PhysOp::MergeJoin { .. }
        | PhysOp::BroadcastJoin { .. }
        | PhysOp::LoopJoin { .. }
        | PhysOp::IndexJoin { .. } => (2, 2),
        PhysOp::UnionAll { .. } | PhysOp::VirtualDataset => (2, usize::MAX),
        _ => (1, 1),
    }
}

/// Input partitionings `op` requires of its `arity` children. Mirrors the
/// cost model's requirement table, but reads the keys straight from the
/// physical operator so it can audit a finished plan without the memo.
pub fn required_parts_phys(op: &PhysOp, arity: usize) -> Vec<Partitioning> {
    let split = |keys: &[(scope_ir::ColId, scope_ir::ColId)]| {
        (
            keys.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            keys.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
        )
    };
    match op {
        PhysOp::Scan { .. } => Vec::new(),
        PhysOp::Filter { .. } | PhysOp::Project { .. } | PhysOp::Output { .. } => {
            vec![Partitioning::Any; arity]
        }
        PhysOp::HashJoin { keys, .. } => {
            let (l, r) = split(keys);
            if l.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Hash(l), Partitioning::Hash(r)]
            }
        }
        PhysOp::MergeJoin { keys, .. } => {
            let (l, r) = split(keys);
            if l.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Range(l), Partitioning::Range(r)]
            }
        }
        PhysOp::BroadcastJoin { .. } => vec![Partitioning::Any, Partitioning::Broadcast],
        PhysOp::LoopJoin { .. } => vec![Partitioning::Singleton, Partitioning::Singleton],
        PhysOp::IndexJoin { keys, .. } => {
            let (_, r) = split(keys);
            if r.is_empty() {
                vec![Partitioning::Singleton, Partitioning::Singleton]
            } else {
                vec![Partitioning::Any, Partitioning::Hash(r)]
            }
        }
        PhysOp::HashAgg { keys, partial, .. } => {
            if *partial {
                vec![Partitioning::Any]
            } else if keys.is_empty() {
                vec![Partitioning::Singleton]
            } else {
                vec![Partitioning::Hash(keys.clone())]
            }
        }
        PhysOp::SortAgg { keys, partial, .. } | PhysOp::StreamAgg { keys, partial, .. } => {
            if *partial {
                vec![Partitioning::Any]
            } else if keys.is_empty() {
                vec![Partitioning::Singleton]
            } else {
                vec![Partitioning::Range(keys.clone())]
            }
        }
        PhysOp::UnionAll { serial } => {
            if *serial {
                vec![Partitioning::Singleton; arity]
            } else {
                vec![Partitioning::Any; arity]
            }
        }
        PhysOp::VirtualDataset => vec![Partitioning::Any; arity],
        PhysOp::Top { heap, .. } => {
            if *heap {
                vec![Partitioning::Any]
            } else {
                vec![Partitioning::Singleton]
            }
        }
        PhysOp::Sort { keys, parallel } => {
            if *parallel {
                vec![Partitioning::Range(keys.clone())]
            } else {
                vec![Partitioning::Singleton]
            }
        }
        PhysOp::Window { keys, hash_based } => {
            if *hash_based {
                vec![Partitioning::Hash(keys.clone())]
            } else {
                vec![Partitioning::Range(keys.clone())]
            }
        }
        PhysOp::Process { parallel, .. } => {
            if *parallel {
                vec![Partitioning::Any]
            } else {
                vec![Partitioning::Singleton]
            }
        }
        PhysOp::Exchange { .. } => vec![Partitioning::Any],
    }
}

/// Validate a physical plan. Returns the empty vector iff the plan upholds
/// every optimizer-guaranteed invariant (see module docs).
pub fn validate_physical(plan: &PhysPlan) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    // Root/arity/dangling-edge checks are the shared structural core from
    // `scope-ir`; only the physical-property checks below are specific to
    // this validator.
    let edges_ok = check_structure(
        plan.root(),
        plan.len(),
        plan.reachable(),
        |id| {
            let node = plan.node(id);
            StructuralNode {
                kind: node.op.name(),
                children: &node.children,
                arity: phys_arity(&node.op),
                is_output: matches!(node.op, PhysOp::Output { .. }),
            }
        },
        &mut out,
    );
    if plan.root().is_none() {
        return out;
    }
    for id in plan.reachable() {
        let node = plan.node(id);
        let got = node.children.len();
        let (min, max) = phys_arity(&node.op);
        // Physical-property enforcement: each child's output partitioning
        // must satisfy what this operator requires (the enforcer's job).
        if edges_ok[id.index()] && got >= min && got <= max {
            let required = required_parts_phys(&node.op, got);
            for (&c, req) in node.children.iter().zip(required.iter()) {
                let found = &plan.node(c).partitioning;
                if !found.satisfies(req) {
                    out.push(PlanViolation::MissingExchange {
                        node: id,
                        child: c,
                        required: format!("{req:?}"),
                        found: format!("{found:?}"),
                    });
                }
            }
        }
        if let PhysOp::Exchange { scheme, .. } = &node.op {
            if &node.partitioning != scheme {
                out.push(PlanViolation::ExchangeSchemeMismatch { node: id });
            }
        }
        for (value, what) in [
            (node.est_rows, "rows"),
            (node.est_bytes, "bytes"),
            (node.est_cost, "cost"),
        ] {
            if !value.is_finite() {
                out.push(PlanViolation::NonFiniteEstimate { node: id, what });
            } else if value < 0.0 {
                out.push(PlanViolation::NegativeEstimate { node: id, what });
            }
        }
        if node.dop == 0 {
            out.push(PlanViolation::BadParallelism { node: id, dop: 0 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysNode;
    use scope_ir::ids::{ColId, NodeId, TableId};
    use scope_ir::{JoinKind, Predicate};

    fn node(op: PhysOp, children: Vec<NodeId>, part: Partitioning) -> PhysNode {
        PhysNode {
            op,
            children,
            est_rows: 100.0,
            est_bytes: 1_000.0,
            est_cost: 5.0,
            est_cost_vec: crate::cost::CostEstimate {
                cpu: 5.0,
                ..crate::cost::CostEstimate::ZERO
            },
            partitioning: part,
            dop: 4,
            created_by: None,
            logical_rule: None,
        }
    }

    fn scan(table: u32) -> PhysOp {
        PhysOp::Scan {
            table: TableId(table),
            pushed: Predicate::true_pred(),
            parallel: true,
            indexed: false,
        }
    }

    #[test]
    fn well_formed_plan_is_clean() {
        let mut p = PhysPlan::new();
        let s = p.add(node(scan(0), vec![], Partitioning::Any));
        let e = p.add(node(
            PhysOp::Exchange {
                scheme: Partitioning::Hash(vec![ColId(0)]),
                dop: 8,
            },
            vec![s],
            Partitioning::Hash(vec![ColId(0)]),
        ));
        let a = p.add(node(
            PhysOp::HashAgg {
                keys: vec![ColId(0)],
                aggs: vec![],
                partial: false,
            },
            vec![e],
            Partitioning::Hash(vec![ColId(0)]),
        ));
        let o = p.add(node(
            PhysOp::Output { stream: 7 },
            vec![a],
            Partitioning::Any,
        ));
        p.set_root(o);
        assert!(validate_physical(&p).is_empty());
    }

    #[test]
    fn empty_plan_reports_no_root() {
        assert_eq!(
            validate_physical(&PhysPlan::new()),
            vec![PlanViolation::NoRoot]
        );
    }

    #[test]
    fn missing_exchange_before_partitioned_agg_is_caught() {
        let mut p = PhysPlan::new();
        // Scan feeds the final hash aggregate directly: no exchange enforced.
        let s = p.add(node(scan(0), vec![], Partitioning::Any));
        let a = p.add(node(
            PhysOp::HashAgg {
                keys: vec![ColId(0)],
                aggs: vec![],
                partial: false,
            },
            vec![s],
            Partitioning::Hash(vec![ColId(0)]),
        ));
        let o = p.add(node(
            PhysOp::Output { stream: 7 },
            vec![a],
            Partitioning::Any,
        ));
        p.set_root(o);
        let v = validate_physical(&p);
        assert!(matches!(
            v.as_slice(),
            [PlanViolation::MissingExchange { .. }]
        ));
    }

    #[test]
    fn join_arity_violation_is_caught() {
        let mut p = PhysPlan::new();
        let s = p.add(node(scan(0), vec![], Partitioning::Singleton));
        // A one-input join: the dangling-input corruption a buggy transform
        // would produce.
        let j = p.add(node(
            PhysOp::LoopJoin {
                kind: JoinKind::Inner,
                keys: vec![],
            },
            vec![s],
            Partitioning::Singleton,
        ));
        let o = p.add(node(
            PhysOp::Output { stream: 7 },
            vec![j],
            Partitioning::Any,
        ));
        p.set_root(o);
        let v = validate_physical(&p);
        assert!(v.contains(&PlanViolation::BadArity {
            node: j,
            kind: "LoopJoin",
            got: 1,
            min: 2,
            max: 2,
        }));
    }

    #[test]
    fn bad_estimates_and_dop_are_caught() {
        let mut p = PhysPlan::new();
        let mut broken = node(scan(0), vec![], Partitioning::Any);
        broken.est_rows = f64::NAN;
        broken.est_cost = -1.0;
        broken.dop = 0;
        let s = p.add(broken);
        let o = p.add(node(
            PhysOp::Output { stream: 7 },
            vec![s],
            Partitioning::Any,
        ));
        p.set_root(o);
        let v = validate_physical(&p);
        assert!(v.contains(&PlanViolation::NonFiniteEstimate {
            node: s,
            what: "rows"
        }));
        assert!(v.contains(&PlanViolation::NegativeEstimate {
            node: s,
            what: "cost"
        }));
        assert!(v.contains(&PlanViolation::BadParallelism { node: s, dop: 0 }));
    }

    #[test]
    fn exchange_scheme_mismatch_is_caught() {
        let mut p = PhysPlan::new();
        let s = p.add(node(scan(0), vec![], Partitioning::Any));
        let e = p.add(node(
            PhysOp::Exchange {
                scheme: Partitioning::Hash(vec![ColId(0)]),
                dop: 8,
            },
            vec![s],
            // Claims a different output partitioning than its scheme.
            Partitioning::Singleton,
        ));
        let o = p.add(node(
            PhysOp::Output { stream: 7 },
            vec![e],
            Partitioning::Any,
        ));
        p.set_root(o);
        let v = validate_physical(&p);
        assert!(v.contains(&PlanViolation::ExchangeSchemeMismatch { node: e }));
    }
}
