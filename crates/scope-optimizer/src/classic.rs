//! The frozen pre-arena compile path, kept as a differential oracle.
//!
//! This module is a byte-for-byte snapshot of the memo / exploration /
//! implementation engine as it existed **before** the interned-IR +
//! arena-memo rework: `Memo::insert` clones `LogicalOp`s and `LogicalEst`s,
//! `explore` materializes `Vec<RuleId>` per expression, and `implement`
//! allocates fresh `HashMap`s per compile. [`compile_classic`] must produce
//! bit-identical [`CompiledPlan`]s (plan, cost, signature, task counts) to
//! [`crate::compile`] on every input; the `tests/arena.rs` differential
//! proptest and the `exp_compile_micro` benchmark both hold the new fast
//! path to this reference.
//!
//! Do not "improve" this module — its entire value is that it never
//! changes. It shares only types whose semantics the rework left untouched
//! (`GroupId`, `MExprId`, `Inserted`, errors, budgets, the cost model, the
//! catalog); everything on the hot path is duplicated here on purpose.

use std::collections::BTreeSet;

use scope_ir::ids::ColId;
use scope_ir::{ObservableCatalog, PlanGraph};

use crate::config::{RuleConfig, RuleSignature};
use crate::estimate::Estimator;
use crate::optimizer::{fire_markers, CompileStats, CompiledPlan};
use crate::search::{BudgetTracker, CompileBudget, CompileError};
use crate::transform::{referenced_cols, TransformCtx};

/// [`crate::compile`] as it behaved before the arena/interner rework.
pub fn compile_classic(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
) -> Result<CompiledPlan, CompileError> {
    compile_classic_with_budget(plan, obs, config, &CompileBudget::default())
}

/// [`crate::compile_with_budget`] as it behaved before the rework.
pub fn compile_classic_with_budget(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
    budget: &CompileBudget,
) -> Result<CompiledPlan, CompileError> {
    let start = std::time::Instant::now();
    let _compile_span = scope_trace::span_timed("compile", scope_trace::Histogram::CompileMicros);
    let mut tracker = BudgetTracker::new(budget);
    let normalized = crate::normalize::normalize(plan);
    let estimator = Estimator::new(obs);

    let mut referenced: BTreeSet<ColId> = BTreeSet::new();
    for (_, node) in normalized.plan.iter() {
        referenced_cols(&node.op, &mut referenced);
    }

    let ctx = TransformCtx {
        est: &estimator,
        referenced: &referenced,
    };

    let (mut memo, root) = cmemo::Memo::from_plan(&normalized.plan, &estimator)?;
    let explore_added = {
        let _span =
            scope_trace::span_timed("compile.explore", scope_trace::Histogram::ExploreMicros);
        csearch::explore(&mut memo, config, &ctx, &mut tracker)?
    };
    let outcome = {
        let _span =
            scope_trace::span_timed("compile.implement", scope_trace::Histogram::ImplementMicros);
        csearch::implement(&memo, root, config, obs, &mut tracker)?
    };
    if scope_trace::enabled() {
        scope_trace::record(scope_trace::Histogram::MemoGroups, memo.num_groups() as u64);
        scope_trace::record(scope_trace::Histogram::MemoExprs, memo.num_exprs() as u64);
        scope_trace::record(scope_trace::Histogram::CompileTasks, tracker.tasks());
    }

    let kind_counts = normalized.plan.op_counts();
    let mut fired = normalized.fired.union(&outcome.used_rules);
    fire_markers(config, &kind_counts, &mut fired);

    debug_assert!(
        fired
            .difference(
                &config
                    .enabled()
                    .union(crate::rules::RuleCatalog::global().required())
            )
            .is_empty(),
        "signature must be a subset of enabled ∪ required"
    );

    #[cfg(debug_assertions)]
    {
        let violations = crate::validate::validate_physical(&outcome.plan);
        debug_assert!(
            violations.is_empty(),
            "compiled plan violates invariants: {violations:?}\n{}",
            outcome.plan.render()
        );
    }

    Ok(CompiledPlan {
        est_cost: outcome.est_cost,
        est_cost_vec: outcome.est_cost_vec,
        plan: outcome.plan,
        signature: RuleSignature(fired),
        memo_groups: memo.num_groups(),
        memo_exprs: memo.num_exprs(),
        stats: CompileStats {
            tasks: tracker.tasks(),
            explore_added,
            memo_budget_rejections: memo.budget_rejections(),
            compile_micros: start.elapsed().as_micros() as u64,
        },
    })
}

/// The pre-rework memo: owned `LogicalOp` + cloned estimates per entry.
mod cmemo {
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};

    use scope_ir::ids::NodeId;
    use scope_ir::{LogicalOp, PlanGraph};

    use crate::estimate::{Estimator, LogicalEst};
    use crate::memo::{GroupId, Inserted, MExprId, MAX_EXPRS_PER_GROUP, MAX_TOTAL_EXPRS};
    use crate::ruleset::RuleId;
    use crate::search::CompileError;

    /// One expression: an operator over child *groups* (owned op + est).
    #[derive(Clone, Debug)]
    pub struct MExpr {
        pub op: LogicalOp,
        pub children: Vec<GroupId>,
        pub group: GroupId,
        pub created_by: Option<RuleId>,
        pub est: LogicalEst,
    }

    /// A set of logically-equivalent expressions.
    #[derive(Clone, Debug)]
    pub struct Group {
        pub exprs: Vec<MExprId>,
        pub est: LogicalEst,
    }

    /// The pre-rework memo.
    pub struct Memo {
        groups: Vec<Group>,
        exprs: Vec<MExpr>,
        any_group: HashMap<u64, MExprId>,
        by_group: HashMap<(u64, GroupId), MExprId>,
        budget_rejections: usize,
    }

    fn expr_key(op: &LogicalOp, children: &[GroupId]) -> u64 {
        let mut h = DefaultHasher::new();
        op.memo_hash(&mut h);
        children.hash(&mut h);
        h.finish()
    }

    impl Memo {
        pub fn from_plan(
            plan: &PlanGraph,
            est: &Estimator<'_>,
        ) -> Result<(Memo, GroupId), CompileError> {
            let mut memo = Memo::empty();
            let mut node_group: HashMap<NodeId, GroupId> = HashMap::new();
            let reachable = plan.reachable();
            for id in &reachable {
                let node = plan.node(*id);
                let children: Vec<GroupId> = node.children.iter().map(|c| node_group[c]).collect();
                let gid = match memo.insert(node.op.clone(), children, None, None, est) {
                    Inserted::New(e) | Inserted::Duplicate(e) => memo.exprs[e.index()].group,
                    Inserted::Budget => {
                        return Err(CompileError::MemoExhausted {
                            groups: memo.num_groups(),
                            exprs: memo.num_exprs(),
                        })
                    }
                };
                node_group.insert(*id, gid);
            }
            let root = node_group[&plan.root().expect("plan has root")];
            Ok((memo, root))
        }

        pub fn empty() -> Memo {
            Memo {
                groups: Vec::new(),
                exprs: Vec::new(),
                any_group: HashMap::new(),
                by_group: HashMap::new(),
                budget_rejections: 0,
            }
        }

        pub fn insert(
            &mut self,
            op: LogicalOp,
            children: Vec<GroupId>,
            target: Option<GroupId>,
            created_by: Option<RuleId>,
            est: &Estimator<'_>,
        ) -> Inserted {
            let key = expr_key(&op, &children);
            match target {
                None => {
                    if let Some(&existing) = self.any_group.get(&key) {
                        return Inserted::Duplicate(existing);
                    }
                }
                Some(g) => {
                    if let Some(&existing) = self.by_group.get(&(key, g)) {
                        return Inserted::Duplicate(existing);
                    }
                    if self.groups[g.index()].exprs.len() >= MAX_EXPRS_PER_GROUP {
                        self.budget_rejections += 1;
                        return Inserted::Budget;
                    }
                }
            }
            if self.exprs.len() >= MAX_TOTAL_EXPRS {
                self.budget_rejections += 1;
                return Inserted::Budget;
            }
            let child_ests: Vec<&LogicalEst> = children
                .iter()
                .map(|g| &self.groups[g.index()].est)
                .collect();
            let e = est.derive(&op, &child_ests);
            let group = match target {
                Some(g) => g,
                None => {
                    let g = GroupId(self.groups.len() as u32);
                    self.groups.push(Group {
                        exprs: Vec::new(),
                        est: e.clone(),
                    });
                    g
                }
            };
            let id = MExprId(self.exprs.len() as u32);
            self.exprs.push(MExpr {
                op,
                children,
                group,
                created_by,
                est: e,
            });
            self.groups[group.index()].exprs.push(id);
            self.any_group.entry(key).or_insert(id);
            self.by_group.insert((key, group), id);
            Inserted::New(id)
        }

        pub fn group(&self, id: GroupId) -> &Group {
            &self.groups[id.index()]
        }

        pub fn expr(&self, id: MExprId) -> &MExpr {
            &self.exprs[id.index()]
        }

        pub fn canonical(&self, id: GroupId) -> &MExpr {
            let e = self.groups[id.index()].exprs[0];
            &self.exprs[e.index()]
        }

        pub fn num_groups(&self) -> usize {
            self.groups.len()
        }

        pub fn num_exprs(&self) -> usize {
            self.exprs.len()
        }

        pub fn budget_rejections(&self) -> usize {
            self.budget_rejections
        }
    }
}

/// The pre-rework transformation interpreter: clones the matched `MExpr`
/// (op, children, estimate) on every single rule application.
mod ctransform {
    use std::collections::BTreeSet;

    use scope_ir::ids::ColId;
    use scope_ir::{JoinKind, LogicalOp, OpKind, PredAtom, Predicate};

    use super::cmemo::{MExpr as ExprView, Memo};
    use crate::memo::{GroupId, Inserted, MExprId, MAX_TOTAL_EXPRS};
    use crate::rules::{AtomOrder, Rule, RuleAction};
    use crate::ruleset::RuleId;
    use crate::transform::TransformCtx;

    const REWRITE_MARGIN: usize = 64;

    pub fn apply_rule(
        rule: &Rule,
        expr_id: MExprId,
        memo: &mut Memo,
        ctx: &TransformCtx<'_>,
    ) -> usize {
        if memo.num_exprs() + REWRITE_MARGIN >= MAX_TOTAL_EXPRS {
            return 0;
        }
        let rewriter = Rewriter {
            rule_id: rule.id,
            expr_id,
            ctx,
        };
        rewriter.dispatch(&rule.action, memo)
    }

    struct Rewriter<'a, 'b> {
        rule_id: RuleId,
        expr_id: MExprId,
        ctx: &'a TransformCtx<'b>,
    }

    impl Rewriter<'_, '_> {
        fn sub(&self, memo: &mut Memo, op: LogicalOp, children: Vec<GroupId>) -> GroupId {
            match memo.insert(op, children, None, Some(self.rule_id), self.ctx.est) {
                Inserted::New(e) | Inserted::Duplicate(e) => memo.expr(e).group,
                Inserted::Budget => unreachable!("apply_rule reserves budget margin"),
            }
        }

        fn alt(&self, memo: &mut Memo, op: LogicalOp, children: Vec<GroupId>) -> usize {
            let target = memo.expr(self.expr_id).group;
            match memo.insert(op, children, Some(target), Some(self.rule_id), self.ctx.est) {
                Inserted::New(_) => 1,
                _ => 0,
            }
        }

        fn dispatch(&self, action: &RuleAction, memo: &mut Memo) -> usize {
            use RuleAction::*;
            let expr = memo.expr(self.expr_id).clone();
            match action {
                CollapseFilters => self.collapse_filters(memo, &expr),
                DropTrueFilter => self.drop_true_filter(memo, &expr),
                FilterIntoScan => self.filter_into_scan(memo, &expr),
                FilterBelow { kind, eq_only } => self.filter_below(memo, &expr, *kind, *eq_only),
                ReorderAtoms(order) => self.reorder_atoms(memo, &expr, *order),
                MergeProjects => self.merge_projects(memo, &expr),
                ProjectBelow(kind) => self.project_below(memo, &expr, *kind),
                PruneBelow { kind, eager } => self.prune_below(memo, &expr, *kind, *eager),
                JoinCommute { guarded } => self.join_commute(memo, &expr, *guarded),
                JoinAssoc { right, guarded } => self.join_assoc(memo, &expr, *right, *guarded),
                JoinOnUnion { max_arity, left } => {
                    self.join_on_union(memo, &expr, *max_arity as usize, *left)
                }
                GroupByOnJoin { variant } => self.groupby_on_join(memo, &expr, *variant),
                GroupByBelowUnion { variant } => self.groupby_below_union(memo, &expr, *variant),
                SplitGroupBy { variant } => self.split_groupby(memo, &expr, *variant),
                UnionFlatten { deep } => self.union_flatten(memo, &expr, *deep),
                ProcessBelowUnion { .. } => self.process_below_union(memo, &expr),
                TopBelowUnion { .. } => self.top_below_union(memo, &expr),
                SwapUnary { parent, child, .. } => self.swap_unary(memo, &expr, *parent, *child),
                NormalizeReduce { variant } => self.normalize_reduce(memo, &expr, *variant),
                EliminateIdentity(kind) => self.eliminate_identity(memo, &expr, *kind),
                CollapseSame(kind) => self.collapse_same(memo, &expr, *kind),
                _ => 0,
            }
        }

        fn collapse_filters(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Filter { predicate: p_up } = &expr.op else {
                return 0;
            };
            let child = memo.canonical(expr.children[0]).clone();
            let LogicalOp::Filter { predicate: p_down } = &child.op else {
                return 0;
            };
            let merged = p_up.clone().and(p_down.clone());
            self.alt(
                memo,
                LogicalOp::Filter { predicate: merged },
                child.children.clone(),
            )
        }

        fn drop_true_filter(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Filter { predicate } = &expr.op else {
                return 0;
            };
            if !predicate.is_true() {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            self.alt(memo, child.op, child.children)
        }

        fn filter_into_scan(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Filter { predicate } = &expr.op else {
                return 0;
            };
            if predicate.is_true() {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            let LogicalOp::RangeGet { table, pushed } = &child.op else {
                return 0;
            };
            let merged = pushed.clone().and(predicate.clone());
            self.alt(
                memo,
                LogicalOp::RangeGet {
                    table: *table,
                    pushed: merged,
                },
                vec![],
            )
        }

        fn filter_below(
            &self,
            memo: &mut Memo,
            expr: &ExprView,
            kind: OpKind,
            eq_only: bool,
        ) -> usize {
            let LogicalOp::Filter { predicate } = &expr.op else {
                return 0;
            };
            if predicate.is_true() {
                return 0;
            }
            let child_group = expr.children[0];
            let child = memo.canonical(child_group).clone();
            if child.op.kind() != kind {
                return 0;
            }
            let (pushable, residual): (Vec<PredAtom>, Vec<PredAtom>) = predicate
                .atoms
                .iter()
                .cloned()
                .partition(|a| !eq_only || a.op == scope_ir::CmpOp::Eq);
            if pushable.is_empty() {
                return 0;
            }
            match &child.op {
                LogicalOp::Project { .. }
                | LogicalOp::Sort { .. }
                | LogicalOp::Window { .. }
                | LogicalOp::Top { .. }
                | LogicalOp::Process { .. } => {
                    let below = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: pushable },
                        },
                        vec![child.children[0]],
                    );
                    let inner = self.sub(memo, child.op.clone(), vec![below]);
                    self.wrap_residual(memo, inner, residual)
                }
                LogicalOp::UnionAll | LogicalOp::VirtualDataset => {
                    let pred = Predicate { atoms: pushable };
                    let mut pushed_children = Vec::with_capacity(child.children.len());
                    for &g in &child.children {
                        pushed_children.push(self.sub(
                            memo,
                            LogicalOp::Filter {
                                predicate: pred.clone(),
                            },
                            vec![g],
                        ));
                    }
                    let inner = self.sub(memo, child.op.clone(), pushed_children);
                    self.wrap_residual(memo, inner, residual)
                }
                LogicalOp::Join { kind: jk, keys } => {
                    let l_cols: BTreeSet<ColId> = memo
                        .group(child.children[0])
                        .est
                        .cols
                        .iter()
                        .copied()
                        .collect();
                    let r_cols: BTreeSet<ColId> = memo
                        .group(child.children[1])
                        .est
                        .cols
                        .iter()
                        .copied()
                        .collect();
                    let mut l_atoms = Vec::new();
                    let mut r_atoms = Vec::new();
                    let mut rest = residual;
                    for atom in pushable {
                        if l_cols.contains(&atom.col) {
                            l_atoms.push(atom);
                        } else if r_cols.contains(&atom.col) {
                            r_atoms.push(atom);
                        } else {
                            rest.push(atom);
                        }
                    }
                    if l_atoms.is_empty() && r_atoms.is_empty() {
                        return 0;
                    }
                    let mut lg = child.children[0];
                    let mut rg = child.children[1];
                    if !l_atoms.is_empty() {
                        lg = self.sub(
                            memo,
                            LogicalOp::Filter {
                                predicate: Predicate { atoms: l_atoms },
                            },
                            vec![lg],
                        );
                    }
                    if !r_atoms.is_empty() {
                        rg = self.sub(
                            memo,
                            LogicalOp::Filter {
                                predicate: Predicate { atoms: r_atoms },
                            },
                            vec![rg],
                        );
                    }
                    let inner = self.sub(
                        memo,
                        LogicalOp::Join {
                            kind: *jk,
                            keys: keys.clone(),
                        },
                        vec![lg, rg],
                    );
                    self.wrap_residual(memo, inner, rest)
                }
                LogicalOp::GroupBy { keys, .. } => {
                    let key_set: BTreeSet<ColId> = keys.iter().copied().collect();
                    let (on_keys, rest): (Vec<PredAtom>, Vec<PredAtom>) =
                        pushable.into_iter().partition(|a| key_set.contains(&a.col));
                    if on_keys.is_empty() {
                        return 0;
                    }
                    let below = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: on_keys },
                        },
                        vec![child.children[0]],
                    );
                    let inner = self.sub(memo, child.op.clone(), vec![below]);
                    let mut all_rest = residual;
                    all_rest.extend(rest);
                    self.wrap_residual(memo, inner, all_rest)
                }
                _ => 0,
            }
        }

        fn wrap_residual(&self, memo: &mut Memo, inner: GroupId, residual: Vec<PredAtom>) -> usize {
            if residual.is_empty() {
                let canon = memo.canonical(inner).clone();
                self.alt(memo, canon.op, canon.children)
            } else {
                self.alt(
                    memo,
                    LogicalOp::Filter {
                        predicate: Predicate { atoms: residual },
                    },
                    vec![inner],
                )
            }
        }

        fn reorder_atoms(&self, memo: &mut Memo, expr: &ExprView, order: AtomOrder) -> usize {
            let LogicalOp::Filter { predicate } = &expr.op else {
                return 0;
            };
            if predicate.len() < 2 {
                return 0;
            }
            let mut atoms = predicate.atoms.clone();
            match order {
                AtomOrder::SelAsc => atoms.sort_by(|a, b| {
                    self.ctx
                        .est
                        .atom_selectivity(a)
                        .total_cmp(&self.ctx.est.atom_selectivity(b))
                }),
                AtomOrder::SelDesc => atoms.sort_by(|a, b| {
                    self.ctx
                        .est
                        .atom_selectivity(b)
                        .total_cmp(&self.ctx.est.atom_selectivity(a))
                }),
                AtomOrder::EqFirst => atoms.sort_by_key(|a| match a.op {
                    scope_ir::CmpOp::Eq => 0u8,
                    scope_ir::CmpOp::Between | scope_ir::CmpOp::Range => 1,
                    _ => 2,
                }),
                AtomOrder::ByCol => atoms.sort_by_key(|a| a.col),
            }
            if atoms == predicate.atoms {
                return 0;
            }
            self.alt(
                memo,
                LogicalOp::Filter {
                    predicate: Predicate { atoms },
                },
                expr.children.clone(),
            )
        }

        fn merge_projects(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Project { cols, computed } = &expr.op else {
                return 0;
            };
            let child = memo.canonical(expr.children[0]).clone();
            let LogicalOp::Project { computed: c2, .. } = &child.op else {
                return 0;
            };
            self.alt(
                memo,
                LogicalOp::Project {
                    cols: cols.clone(),
                    computed: computed.saturating_add(*c2),
                },
                child.children.clone(),
            )
        }

        fn project_below(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
            let LogicalOp::Project { cols, computed } = &expr.op else {
                return 0;
            };
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != kind {
                return 0;
            }
            match &child.op {
                LogicalOp::UnionAll => {
                    let mut pushed = Vec::with_capacity(child.children.len());
                    for &g in &child.children {
                        pushed.push(self.sub(
                            memo,
                            LogicalOp::Project {
                                cols: cols.clone(),
                                computed: *computed,
                            },
                            vec![g],
                        ));
                    }
                    self.alt(memo, LogicalOp::UnionAll, pushed)
                }
                LogicalOp::Join { kind: jk, keys } => {
                    if *computed > 0 {
                        return 0;
                    }
                    let mut need: BTreeSet<ColId> = cols.iter().copied().collect();
                    for &(l, r) in keys {
                        need.insert(l);
                        need.insert(r);
                    }
                    let narrow = |memo: &mut Memo, g: GroupId, this: &Self| -> GroupId {
                        let avail: Vec<ColId> = memo.group(g).est.cols.clone();
                        let kept: Vec<ColId> =
                            avail.iter().copied().filter(|c| need.contains(c)).collect();
                        if kept.len() == avail.len() || kept.is_empty() {
                            g
                        } else {
                            this.sub(
                                memo,
                                LogicalOp::Project {
                                    cols: kept,
                                    computed: 0,
                                },
                                vec![g],
                            )
                        }
                    };
                    let lg = narrow(memo, child.children[0], self);
                    let rg = narrow(memo, child.children[1], self);
                    if lg == child.children[0] && rg == child.children[1] {
                        return 0;
                    }
                    let inner = self.sub(
                        memo,
                        LogicalOp::Join {
                            kind: *jk,
                            keys: keys.clone(),
                        },
                        vec![lg, rg],
                    );
                    self.alt(
                        memo,
                        LogicalOp::Project {
                            cols: cols.clone(),
                            computed: 0,
                        },
                        vec![inner],
                    )
                }
                LogicalOp::Sort { keys } | LogicalOp::Window { keys } => {
                    let mut kept: Vec<ColId> = cols.clone();
                    for &k in keys {
                        if !kept.contains(&k) {
                            kept.push(k);
                        }
                    }
                    let below = self.sub(
                        memo,
                        LogicalOp::Project {
                            cols: kept,
                            computed: *computed,
                        },
                        vec![child.children[0]],
                    );
                    self.alt(memo, child.op.clone(), vec![below])
                }
                LogicalOp::Filter { predicate } => {
                    let covered = predicate.atoms.iter().all(|a| cols.contains(&a.col));
                    if !covered {
                        return 0;
                    }
                    let below = self.sub(
                        memo,
                        LogicalOp::Project {
                            cols: cols.clone(),
                            computed: *computed,
                        },
                        vec![child.children[0]],
                    );
                    self.alt(
                        memo,
                        LogicalOp::Filter {
                            predicate: predicate.clone(),
                        },
                        vec![below],
                    )
                }
                LogicalOp::Top { k } => {
                    let below = self.sub(
                        memo,
                        LogicalOp::Project {
                            cols: cols.clone(),
                            computed: *computed,
                        },
                        vec![child.children[0]],
                    );
                    self.alt(memo, LogicalOp::Top { k: *k }, vec![below])
                }
                _ => 0,
            }
        }

        fn prune_below(
            &self,
            memo: &mut Memo,
            expr: &ExprView,
            kind: OpKind,
            eager: bool,
        ) -> usize {
            if expr.op.kind() != kind {
                return 0;
            }
            let min_drop = if eager { 1 } else { 4 };
            let mut changed = false;
            let mut new_children = expr.children.clone();
            for slot in &mut new_children {
                let g = *slot;
                let canon_kind = memo.canonical(g).op.kind();
                if canon_kind == OpKind::Project {
                    continue;
                }
                let avail: Vec<ColId> = memo.group(g).est.cols.clone();
                let kept: Vec<ColId> = avail
                    .iter()
                    .copied()
                    .filter(|c| self.ctx.referenced.contains(c))
                    .collect();
                if kept.is_empty() || avail.len() - kept.len() < min_drop {
                    continue;
                }
                *slot = self.sub(
                    memo,
                    LogicalOp::Project {
                        cols: kept,
                        computed: 0,
                    },
                    vec![g],
                );
                changed = true;
            }
            if !changed {
                return 0;
            }
            self.alt(memo, expr.op.clone(), new_children)
        }

        fn join_commute(&self, memo: &mut Memo, expr: &ExprView, guarded: bool) -> usize {
            let LogicalOp::Join { kind, keys } = &expr.op else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            if guarded {
                let l = memo.group(expr.children[0]).est.rows;
                let r = memo.group(expr.children[1]).est.rows;
                if r <= l {
                    return 0;
                }
            }
            let swapped: Vec<(ColId, ColId)> = keys.iter().map(|&(l, r)| (r, l)).collect();
            self.alt(
                memo,
                LogicalOp::Join {
                    kind: *kind,
                    keys: swapped,
                },
                vec![expr.children[1], expr.children[0]],
            )
        }

        fn join_assoc(
            &self,
            memo: &mut Memo,
            expr: &ExprView,
            right: bool,
            guarded: bool,
        ) -> usize {
            let LogicalOp::Join { kind, keys } = &expr.op else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            let (outer_idx, inner_idx) = if right { (1, 0) } else { (0, 1) };
            let nested = memo.canonical(expr.children[outer_idx]).clone();
            let LogicalOp::Join {
                kind: k2,
                keys: keys2,
            } = &nested.op
            else {
                return 0;
            };
            if *k2 != JoinKind::Inner {
                return 0;
            }
            let a = nested.children[0];
            let b = nested.children[1];
            let c = expr.children[inner_idx];
            let b_cols: BTreeSet<ColId> = memo.group(b).est.cols.iter().copied().collect();
            let outer_key_ok = keys.iter().all(|&(l, r)| {
                let outer_col = if right { r } else { l };
                b_cols.contains(&outer_col)
            });
            if !outer_key_ok {
                return 0;
            }
            let inner_keys: Vec<(ColId, ColId)> = if right {
                keys.iter().map(|&(l, r)| (r, l)).collect()
            } else {
                keys.clone()
            };
            let new_inner = self.sub(
                memo,
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    keys: inner_keys,
                },
                vec![b, c],
            );
            if guarded {
                let before = memo.group(expr.children[outer_idx]).est.rows;
                let after = memo.group(new_inner).est.rows;
                if after >= before {
                    return 0;
                }
            }
            self.alt(
                memo,
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    keys: keys2.clone(),
                },
                vec![a, new_inner],
            )
        }

        fn join_on_union(
            &self,
            memo: &mut Memo,
            expr: &ExprView,
            max_arity: usize,
            left: bool,
        ) -> usize {
            let LogicalOp::Join { kind, keys } = &expr.op else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            let (union_side, other_side) = if left {
                (expr.children[0], expr.children[1])
            } else {
                (expr.children[1], expr.children[0])
            };
            let union = memo.canonical(union_side).clone();
            if union.op.kind() != OpKind::UnionAll || union.children.len() > max_arity {
                return 0;
            }
            let mut joined = Vec::with_capacity(union.children.len());
            for &branch in &union.children {
                let (lg, rg) = if left {
                    (branch, other_side)
                } else {
                    (other_side, branch)
                };
                joined.push(self.sub(
                    memo,
                    LogicalOp::Join {
                        kind: JoinKind::Inner,
                        keys: keys.clone(),
                    },
                    vec![lg, rg],
                ));
            }
            self.alt(memo, LogicalOp::UnionAll, joined)
        }

        fn groupby_on_join(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = &expr.op
            else {
                return 0;
            };
            if *partial {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            let LogicalOp::Join {
                kind: jk,
                keys: jkeys,
            } = &child.op
            else {
                return 0;
            };
            let side = (variant % 2) as usize;
            let side_group = child.children[side];
            let side_cols: BTreeSet<ColId> =
                memo.group(side_group).est.cols.iter().copied().collect();
            if !keys.iter().all(|k| side_cols.contains(k)) {
                return 0;
            }
            let mut pkeys = keys.clone();
            for &(l, r) in jkeys {
                let jc = if side == 0 { l } else { r };
                if side_cols.contains(&jc) && !pkeys.contains(&jc) {
                    pkeys.push(jc);
                }
            }
            if variant < 2 {
                let rows = memo.group(side_group).est.rows;
                if rows < 10_000.0 {
                    return 0;
                }
            }
            let partial_agg = self.sub(
                memo,
                LogicalOp::GroupBy {
                    keys: pkeys,
                    aggs: aggs.clone(),
                    partial: true,
                },
                vec![side_group],
            );
            let mut join_children = child.children.clone();
            join_children[side] = partial_agg;
            let new_join = self.sub(
                memo,
                LogicalOp::Join {
                    kind: *jk,
                    keys: jkeys.clone(),
                },
                vec![join_children[0], join_children[1]],
            );
            self.alt(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: false,
                },
                vec![new_join],
            )
        }

        fn groupby_below_union(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = &expr.op
            else {
                return 0;
            };
            if *partial {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != OpKind::UnionAll {
                return 0;
            }
            if variant == 0 && memo.group(expr.children[0]).est.rows < 10_000.0 {
                return 0;
            }
            let mut partials = Vec::with_capacity(child.children.len());
            for &branch in &child.children {
                partials.push(self.sub(
                    memo,
                    LogicalOp::GroupBy {
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                        partial: true,
                    },
                    vec![branch],
                ));
            }
            let new_union = self.sub(memo, LogicalOp::UnionAll, partials);
            self.alt(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: false,
                },
                vec![new_union],
            )
        }

        fn split_groupby(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = &expr.op
            else {
                return 0;
            };
            if *partial || keys.is_empty() {
                return 0;
            }
            let child_rows = memo.group(expr.children[0]).est.rows;
            let threshold = match variant {
                0 => 100_000.0,
                1 => 10_000.0,
                _ => 0.0,
            };
            if child_rows < threshold {
                return 0;
            }
            if memo.canonical(expr.children[0]).op.kind() == OpKind::GroupBy {
                return 0;
            }
            let partial_agg = self.sub(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: true,
                },
                vec![expr.children[0]],
            );
            self.alt(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: false,
                },
                vec![partial_agg],
            )
        }

        fn normalize_reduce(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = &expr.op
            else {
                return 0;
            };
            if keys.len() < 2 {
                return 0;
            }
            let mut sorted = keys.clone();
            match variant {
                0 => sorted.sort_unstable(),
                1 => sorted.sort_unstable_by(|a, b| b.cmp(a)),
                _ => sorted.sort_by_key(|c| self.ctx.est.observed().col_ndv(*c)),
            }
            if sorted == *keys {
                return 0;
            }
            self.alt(
                memo,
                LogicalOp::GroupBy {
                    keys: sorted,
                    aggs: aggs.clone(),
                    partial: *partial,
                },
                expr.children.clone(),
            )
        }

        fn union_flatten(&self, memo: &mut Memo, expr: &ExprView, deep: bool) -> usize {
            if expr.op.kind() != OpKind::UnionAll {
                return 0;
            }
            let mut flat: Vec<GroupId> = Vec::new();
            let mut changed = false;
            let mut stack: Vec<(GroupId, usize)> = expr.children.iter().map(|&g| (g, 0)).collect();
            stack.reverse();
            while let Some((g, depth)) = stack.pop() {
                let canon = memo.canonical(g);
                let is_union = canon.op.kind() == OpKind::UnionAll;
                let may_recurse = depth == 0 || deep;
                if is_union && may_recurse {
                    changed = true;
                    let children = canon.children.clone();
                    for &c in children.iter().rev() {
                        stack.push((c, depth + 1));
                    }
                } else {
                    flat.push(g);
                }
            }
            if !changed || flat.len() < 2 {
                return 0;
            }
            self.alt(memo, LogicalOp::UnionAll, flat)
        }

        fn process_below_union(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Process { udo } = &expr.op else {
                return 0;
            };
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != OpKind::UnionAll {
                return 0;
            }
            let mut pushed = Vec::with_capacity(child.children.len());
            for &branch in &child.children {
                pushed.push(self.sub(memo, LogicalOp::Process { udo: *udo }, vec![branch]));
            }
            self.alt(memo, LogicalOp::UnionAll, pushed)
        }

        fn top_below_union(&self, memo: &mut Memo, expr: &ExprView) -> usize {
            let LogicalOp::Top { k } = &expr.op else {
                return 0;
            };
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != OpKind::UnionAll {
                return 0;
            }
            let mut pushed = Vec::with_capacity(child.children.len());
            for &branch in &child.children {
                pushed.push(self.sub(memo, LogicalOp::Top { k: *k }, vec![branch]));
            }
            let new_union = self.sub(memo, LogicalOp::UnionAll, pushed);
            self.alt(memo, LogicalOp::Top { k: *k }, vec![new_union])
        }

        fn swap_unary(
            &self,
            memo: &mut Memo,
            expr: &ExprView,
            parent: OpKind,
            child_kind: OpKind,
        ) -> usize {
            if expr.op.kind() != parent || expr.children.len() != 1 {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != child_kind || child.children.len() != 1 {
                return 0;
            }
            let below = self.sub(memo, expr.op.clone(), vec![child.children[0]]);
            self.alt(memo, child.op.clone(), vec![below])
        }

        fn eliminate_identity(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
            if expr.op.kind() != kind {
                return 0;
            }
            let replace_with_child = match (&expr.op, kind) {
                (LogicalOp::Project { cols, computed }, OpKind::Project) => {
                    *computed == 0 && {
                        let avail = &memo.group(expr.children[0]).est.cols;
                        cols.len() == avail.len() && cols.iter().all(|c| avail.contains(c))
                    }
                }
                (LogicalOp::Top { k }, OpKind::Top) => {
                    (*k as f64) >= memo.group(expr.children[0]).est.rows
                }
                (LogicalOp::Sort { keys }, OpKind::Sort) => {
                    match &memo.canonical(expr.children[0]).op {
                        LogicalOp::Sort { keys: inner } => inner.starts_with(keys),
                        _ => false,
                    }
                }
                (LogicalOp::UnionAll, OpKind::UnionAll) => expr.children.len() == 1,
                _ => false,
            };
            if !replace_with_child {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            self.alt(memo, child.op, child.children)
        }

        fn collapse_same(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
            if expr.op.kind() != kind || expr.children.len() != 1 {
                return 0;
            }
            let child = memo.canonical(expr.children[0]).clone();
            if child.op.kind() != kind {
                return 0;
            }
            let merged = match (&expr.op, &child.op) {
                (LogicalOp::Sort { keys }, LogicalOp::Sort { .. }) => {
                    LogicalOp::Sort { keys: keys.clone() }
                }
                (LogicalOp::Top { k: k1 }, LogicalOp::Top { k: k2 }) => {
                    LogicalOp::Top { k: (*k1).min(*k2) }
                }
                (LogicalOp::Window { keys }, LogicalOp::Window { .. }) => {
                    LogicalOp::Window { keys: keys.clone() }
                }
                _ => return 0,
            };
            self.alt(memo, merged, child.children)
        }
    }
}

/// The pre-rework search: `Vec<RuleId>` collection per expression during
/// exploration, `HashMap`-keyed winners, linear catalog scans for exchange
/// rules.
mod csearch {
    use std::collections::HashMap;

    use scope_ir::ids::NodeId;
    use scope_ir::OpKind;

    use super::cmemo::Memo;
    use crate::config::RuleConfig;
    use crate::cost::{
        exchange_cost, exchange_impl_for, impl_cost, output_part, required_child_parts,
        CostEstimate, CostWeights,
    };
    use crate::estimate::LogicalEst;
    use crate::memo::{GroupId, MExprId};
    use crate::physical::{Partitioning, PhysNode, PhysOp, PhysPlan};
    use crate::rules::{PhysImpl, RuleAction, RuleCatalog};
    use crate::ruleset::{RuleId, RuleSet};
    use crate::search::{BudgetTracker, CompileError, CompilePhase, SearchOutcome};
    use crate::transform::TransformCtx;

    pub fn explore(
        memo: &mut Memo,
        config: &RuleConfig,
        ctx: &TransformCtx<'_>,
        tracker: &mut BudgetTracker,
    ) -> Result<usize, CompileError> {
        let cat = RuleCatalog::global();
        let before = memo.num_exprs();
        let mut idx = 0usize;
        while idx < memo.num_exprs() {
            let expr_id = MExprId(idx as u32);
            let kind = memo.expr(expr_id).op.kind();
            let rule_ids: Vec<RuleId> = cat
                .transforms_for(kind)
                .iter()
                .copied()
                .filter(|id| config.is_enabled(*id))
                .collect();
            for rid in rule_ids {
                tracker.charge(CompilePhase::Explore)?;
                let rule = cat.rule(rid);
                super::ctransform::apply_rule(rule, expr_id, memo, ctx);
            }
            idx += 1;
        }
        Ok(memo.num_exprs() - before)
    }

    #[derive(Clone, Debug)]
    struct Winner {
        cost: f64,
        cost_vec: CostEstimate,
        expr: MExprId,
        phys: PhysImpl,
        impl_rule: RuleId,
        out_part: Partitioning,
        dop: u32,
        exchanges: Vec<Option<(PhysImpl, RuleId, Partitioning, u32)>>,
        est: LogicalEst,
    }

    pub fn implement(
        memo: &Memo,
        root: GroupId,
        config: &RuleConfig,
        obs: &scope_ir::ObservableCatalog,
        tracker: &mut BudgetTracker,
    ) -> Result<SearchOutcome, CompileError> {
        let mut winners: HashMap<GroupId, Winner> = HashMap::new();
        let mut failures: HashMap<GroupId, CompileError> = HashMap::new();
        let mut visiting: Vec<bool> = vec![false; memo.num_groups()];
        best(
            memo,
            root,
            config,
            obs,
            &mut winners,
            &mut failures,
            &mut visiting,
            tracker,
        )?;

        let mut plan = PhysPlan::new();
        let mut built: HashMap<GroupId, NodeId> = HashMap::new();
        let mut used = RuleSet::EMPTY;
        let cat = RuleCatalog::global();
        let enforce = cat.find("EnforceExchange").expect("catalog rule");
        let root_node = extract(
            memo, root, &winners, &mut plan, &mut built, &mut used, enforce,
        );
        plan.set_root(root_node);
        let est_cost = plan.total_est_cost();
        let est_cost_vec = plan.total_est_cost_vec();
        Ok(SearchOutcome {
            plan,
            est_cost,
            est_cost_vec,
            used_rules: used,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn best(
        memo: &Memo,
        group: GroupId,
        config: &RuleConfig,
        obs: &scope_ir::ObservableCatalog,
        winners: &mut HashMap<GroupId, Winner>,
        failures: &mut HashMap<GroupId, CompileError>,
        visiting: &mut Vec<bool>,
        tracker: &mut BudgetTracker,
    ) -> Result<f64, CompileError> {
        if let Some(w) = winners.get(&group) {
            return Ok(w.cost);
        }
        if let Some(e) = failures.get(&group) {
            return Err(e.clone());
        }
        if visiting[group.index()] {
            return Err(CompileError::CyclicMemo);
        }
        visiting[group.index()] = true;

        let cat = RuleCatalog::global();
        let mut best_winner: Option<Winner> = None;
        let mut kind_without_impl: Option<OpKind> = None;
        let mut exchange_blocked = false;
        let mut child_failure: Option<CompileError> = None;

        let expr_ids = memo.group(group).exprs.clone();
        for expr_id in expr_ids {
            let expr = memo.expr(expr_id);
            let kind = expr.op.kind();
            let children = expr.children.clone();
            let mut ok = true;
            for &c in &children {
                match best(memo, c, config, obs, winners, failures, visiting, tracker) {
                    Ok(_) => {}
                    Err(e) if e.is_fatal() => return Err(e),
                    Err(CompileError::NoExchangeImplementation) => {
                        exchange_blocked = true;
                        ok = false;
                        break;
                    }
                    Err(e) => {
                        if !matches!(e, CompileError::CyclicMemo) {
                            child_failure.get_or_insert(e);
                        }
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }

            let enabled_impls: Vec<RuleId> = cat
                .impls_for(kind)
                .iter()
                .copied()
                .filter(|id| config.is_enabled(*id))
                .collect();
            if enabled_impls.is_empty() {
                kind_without_impl = Some(kind);
                continue;
            }

            let expr = memo.expr(expr_id);
            let child_ests: Vec<&LogicalEst> =
                children.iter().map(|g| &memo.group(*g).est).collect();

            for impl_rule in enabled_impls {
                tracker.charge(CompilePhase::Implement)?;
                let RuleAction::Impl(phys) = &cat.rule(impl_rule).action else {
                    continue;
                };
                let phys = *phys;
                let oc = impl_cost(phys, &expr.op, &expr.est, &child_ests, obs);
                let reqs = required_child_parts(phys, &expr.op, children.len());
                let mut exchanges = Vec::with_capacity(children.len());
                let mut candidate_cost = CostWeights::DEFAULT.scalarize(&oc.cost);
                let mut candidate_vec = oc.cost;
                let mut child_parts = Vec::with_capacity(children.len());
                let mut feasible = true;
                for (i, &c) in children.iter().enumerate() {
                    let req = reqs.get(i).cloned().unwrap_or(Partitioning::Any);
                    let child_w = &winners[&c];
                    candidate_cost += child_w.cost;
                    candidate_vec = candidate_vec.add(&child_w.cost_vec);
                    if child_w.out_part.satisfies(&req) {
                        exchanges.push(None);
                        child_parts.push(child_w.out_part.clone());
                    } else {
                        let Some(ex_impl) = exchange_impl_for(&req) else {
                            exchanges.push(None);
                            child_parts.push(child_w.out_part.clone());
                            continue;
                        };
                        let ex_rule = cat
                            .rules()
                            .iter()
                            .find(|r| r.action == RuleAction::Impl(ex_impl))
                            .map(|r| r.id)
                            .expect("exchange impl rule exists");
                        if !config.is_enabled(ex_rule) {
                            exchange_blocked = true;
                            feasible = false;
                            break;
                        }
                        let ex_dop = match req {
                            Partitioning::Singleton => 1,
                            _ => oc.dop,
                        };
                        let ex_cost = exchange_cost(ex_impl, child_w.est.bytes(), oc.dop.max(1));
                        candidate_cost += CostWeights::DEFAULT.scalarize(&ex_cost.cost);
                        candidate_vec = candidate_vec.add(&ex_cost.cost);
                        exchanges.push(Some((ex_impl, ex_rule, req.clone(), ex_dop)));
                        child_parts.push(req);
                    }
                }
                if !feasible {
                    continue;
                }
                let out_part = output_part(phys, &expr.op, &child_parts);
                let better = match &best_winner {
                    None => true,
                    Some(w) => candidate_cost < w.cost,
                };
                if better {
                    best_winner = Some(Winner {
                        cost: candidate_cost,
                        cost_vec: candidate_vec,
                        expr: expr_id,
                        phys,
                        impl_rule,
                        out_part,
                        dop: oc.dop,
                        exchanges,
                        est: expr.est.clone(),
                    });
                }
            }
        }

        visiting[group.index()] = false;
        match best_winner {
            Some(w) => {
                let cost = w.cost;
                winners.insert(group, w);
                Ok(cost)
            }
            None => {
                let err = if let Some(kind) = kind_without_impl {
                    CompileError::NoImplementation { kind }
                } else if let Some(e) = child_failure {
                    e
                } else if exchange_blocked {
                    CompileError::NoExchangeImplementation
                } else {
                    CompileError::NoImplementation {
                        kind: memo.canonical(group).op.kind(),
                    }
                };
                failures.insert(group, err.clone());
                Err(err)
            }
        }
    }

    fn extract(
        memo: &Memo,
        group: GroupId,
        winners: &HashMap<GroupId, Winner>,
        plan: &mut PhysPlan,
        built: &mut HashMap<GroupId, NodeId>,
        used: &mut RuleSet,
        enforce_rule: RuleId,
    ) -> NodeId {
        if let Some(&node) = built.get(&group) {
            return node;
        }
        let w = winners.get(&group).expect("winner for reachable group");
        let expr = memo.expr(w.expr);
        let mut child_nodes = Vec::with_capacity(expr.children.len());
        for (i, &c) in expr.children.iter().enumerate() {
            let mut node = extract(memo, c, winners, plan, built, used, enforce_rule);
            if let Some((ex_impl, ex_rule, scheme, ex_dop)) = &w.exchanges[i] {
                let child_w = &winners[&c];
                let ex_cost = exchange_cost(*ex_impl, child_w.est.bytes(), w.dop.max(1));
                node = plan.add(PhysNode {
                    op: PhysOp::Exchange {
                        scheme: scheme.clone(),
                        dop: *ex_dop,
                    },
                    children: vec![node],
                    est_rows: child_w.est.rows,
                    est_bytes: child_w.est.bytes(),
                    est_cost: CostWeights::DEFAULT.scalarize(&ex_cost.cost),
                    est_cost_vec: ex_cost.cost,
                    partitioning: scheme.clone(),
                    dop: *ex_dop,
                    created_by: Some(*ex_rule),
                    logical_rule: None,
                });
                used.insert(*ex_rule);
                used.insert(enforce_rule);
            }
            child_nodes.push(node);
        }
        let own_cost = w.cost
            - expr.children.iter().map(|c| winners[c].cost).sum::<f64>()
            - w.exchanges
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.as_ref().map(|(ex_impl, _, _, _)| {
                        CostWeights::DEFAULT.scalarize(
                            &exchange_cost(
                                *ex_impl,
                                winners[&expr.children[i]].est.bytes(),
                                w.dop.max(1),
                            )
                            .cost,
                        )
                    })
                })
                .sum::<f64>();
        let mut own_vec = w.cost_vec;
        for c in &expr.children {
            own_vec = own_vec.saturating_sub(&winners[c].cost_vec);
        }
        for (i, e) in w.exchanges.iter().enumerate() {
            if let Some((ex_impl, _, _, _)) = e {
                let ex = exchange_cost(
                    *ex_impl,
                    winners[&expr.children[i]].est.bytes(),
                    w.dop.max(1),
                );
                own_vec = own_vec.saturating_sub(&ex.cost);
            }
        }
        let node = plan.add(PhysNode {
            op: crate::search::phys_op_for(w.phys, &expr.op),
            children: child_nodes,
            est_rows: w.est.rows,
            est_bytes: w.est.bytes(),
            est_cost: own_cost.max(0.0),
            est_cost_vec: own_vec,
            partitioning: w.out_part.clone(),
            dop: w.dop,
            created_by: Some(w.impl_rule),
            logical_rule: expr.created_by,
        });
        used.insert(w.impl_rule);
        if let Some(t) = expr.created_by {
            used.insert(t);
        }
        built.insert(group, node);
        node
    }
}
