//! Physical plans produced by the optimizer.
//!
//! A [`PhysPlan`] is an arena DAG like [`scope_ir::PlanGraph`], but over
//! physical operators, annotated with the optimizer's *estimates* (rows,
//! bytes, cost) and with the rule that created each node — the raw material
//! for rule signatures and for the execution simulator.

use scope_ir::ids::{ColId, NodeId, TableId, UdoId};
use scope_ir::{AggFunc, JoinKind, Predicate};

use crate::cost::CostEstimate;
use crate::ruleset::RuleId;

/// Data partitioning of an operator's output across vertices.
#[derive(Clone, Debug, PartialEq)]
pub enum Partitioning {
    /// No particular guarantee (round-robin / arbitrary).
    Any,
    /// Hash-partitioned on the given key columns.
    Hash(Vec<ColId>),
    /// Range-partitioned on the given key columns (balanced by the range
    /// partitioner; resistant to single-value skew).
    Range(Vec<ColId>),
    /// Every vertex holds a full copy.
    Broadcast,
    /// All data on a single vertex.
    Singleton,
}

impl Partitioning {
    /// Whether data with this partitioning satisfies `required` without an
    /// exchange.
    pub fn satisfies(&self, required: &Partitioning) -> bool {
        match (self, required) {
            (_, Partitioning::Any) => true,
            (Partitioning::Singleton, Partitioning::Singleton) => true,
            // A full copy everywhere or all data in one place trivially
            // satisfies any co-location requirement.
            (Partitioning::Singleton | Partitioning::Broadcast, Partitioning::Hash(_)) => true,
            (Partitioning::Singleton | Partitioning::Broadcast, Partitioning::Range(_)) => true,
            (Partitioning::Broadcast, Partitioning::Broadcast) => true,
            (Partitioning::Hash(a), Partitioning::Hash(b)) => a == b,
            (Partitioning::Range(a), Partitioning::Range(b)) => a == b,
            _ => false,
        }
    }
}

/// Physical operators. Variants carry the implementation-specific knobs the
/// cost model and the execution simulator need.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysOp {
    /// Leaf scan. `parallel` scans split the input across `dop` vertices;
    /// serial scans read on one vertex. `indexed` scans pay less IO when a
    /// pushed predicate is present.
    Scan {
        table: TableId,
        pushed: Predicate,
        parallel: bool,
        indexed: bool,
    },
    Filter {
        predicate: Predicate,
    },
    Project {
        cols: Vec<ColId>,
        computed: u8,
    },
    /// Partitioned hash join. `variant` distinguishes `HashJoinImpl1/2/3`,
    /// which differ in their degree-of-parallelism policy.
    HashJoin {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
        variant: u8,
    },
    /// Sort-merge join on range-partitioned inputs (the paper's
    /// `JoinImpl2`); slower per row but resistant to key skew.
    MergeJoin {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
    },
    /// Broadcast the (estimated-)smaller right side to every vertex.
    BroadcastJoin {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
    },
    /// Nested-loop join on a single vertex; only sensible for tiny inputs.
    LoopJoin {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
    },
    /// Index-lookup style join (`JoinToApplyIndex1`): cheap when the probe
    /// side is small.
    IndexJoin {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
    },
    HashAgg {
        keys: Vec<ColId>,
        aggs: Vec<AggFunc>,
        partial: bool,
    },
    SortAgg {
        keys: Vec<ColId>,
        aggs: Vec<AggFunc>,
        partial: bool,
    },
    StreamAgg {
        keys: Vec<ColId>,
        aggs: Vec<AggFunc>,
        partial: bool,
    },
    /// Streaming n-ary concatenation (`UnionAllToUnionAll`). `serial`
    /// gathers everything onto one vertex first.
    UnionAll {
        serial: bool,
    },
    /// Materialize the union inputs as a virtual dataset
    /// (`UnionAllToVirtualDataset`): pays a write+read, but downstream
    /// consumers read one well-partitioned dataset.
    VirtualDataset,
    /// Top-k: per-partition heaps then a final merge (`heap = true`) or a
    /// full global sort followed by a limit.
    Top {
        k: u64,
        heap: bool,
    },
    Sort {
        keys: Vec<ColId>,
        parallel: bool,
    },
    Window {
        keys: Vec<ColId>,
        hash_based: bool,
    },
    Process {
        udo: UdoId,
        parallel: bool,
    },
    Output {
        stream: u64,
    },
    /// Data movement inserted by the `EnforceExchange` enforcer. The
    /// `scheme` is this exchange's *output* partitioning.
    Exchange {
        scheme: Partitioning,
        dop: u32,
    },
}

impl PhysOp {
    /// Short stable name for display and logging.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::Scan { .. } => "Scan",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::MergeJoin { .. } => "MergeJoin",
            PhysOp::BroadcastJoin { .. } => "BroadcastJoin",
            PhysOp::LoopJoin { .. } => "LoopJoin",
            PhysOp::IndexJoin { .. } => "IndexJoin",
            PhysOp::HashAgg { .. } => "HashAgg",
            PhysOp::SortAgg { .. } => "SortAgg",
            PhysOp::StreamAgg { .. } => "StreamAgg",
            PhysOp::UnionAll { .. } => "UnionAll",
            PhysOp::VirtualDataset => "VirtualDataset",
            PhysOp::Top { .. } => "Top",
            PhysOp::Sort { .. } => "Sort",
            PhysOp::Window { .. } => "Window",
            PhysOp::Process { .. } => "Process",
            PhysOp::Output { .. } => "Output",
            PhysOp::Exchange { .. } => "Exchange",
        }
    }

    /// Whether this node starts a new execution stage below it (data is
    /// repartitioned or materialized).
    pub fn is_stage_boundary(&self) -> bool {
        matches!(self, PhysOp::Exchange { .. } | PhysOp::VirtualDataset)
    }
}

/// One physical node with the optimizer's annotations.
#[derive(Clone, Debug)]
pub struct PhysNode {
    pub op: PhysOp,
    pub children: Vec<NodeId>,
    /// Estimated output rows (the optimizer's belief, not the truth).
    pub est_rows: f64,
    /// Estimated output bytes.
    pub est_bytes: f64,
    /// Estimated cost of *this operator alone* (children excluded).
    pub est_cost: f64,
    /// Component-wise estimated cost of this operator alone (same scope as
    /// `est_cost`; `est_cost` is its scalarization under the compile's
    /// cost weights).
    pub est_cost_vec: CostEstimate,
    /// Output partitioning.
    pub partitioning: Partitioning,
    /// Degree of parallelism the optimizer planned for this operator.
    pub dop: u32,
    /// The rule that put this operator into the plan (implementation rule,
    /// enforcer, or normalization rule), if attributable.
    pub created_by: Option<RuleId>,
    /// The transformation rule that created the logical expression this
    /// operator implements, if it was not part of the original query.
    pub logical_rule: Option<RuleId>,
}

/// An arena DAG of physical nodes; same id invariant as `PlanGraph`
/// (children precede parents).
#[derive(Clone, Debug, Default)]
pub struct PhysPlan {
    nodes: Vec<PhysNode>,
    root: Option<NodeId>,
}

impl PhysPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node; children must already exist.
    pub fn add(&mut self, node: PhysNode) -> NodeId {
        for &c in &node.children {
            assert!(c.index() < self.nodes.len(), "forward edge in PhysPlan");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    pub fn node(&self, id: NodeId) -> &PhysNode {
        &self.nodes[id.index()]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate `(id, node)` in arena (= topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &PhysNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Nodes reachable from the root, ascending order.
    pub fn reachable(&self) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut mark = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut mark[id.index()], true) {
                continue;
            }
            stack.extend(self.node(id).children.iter().copied());
        }
        mark.iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Total estimated cost (sum of reachable per-operator costs).
    pub fn total_est_cost(&self) -> f64 {
        self.reachable()
            .iter()
            .map(|&id| self.node(id).est_cost)
            .sum()
    }

    /// Total component-wise estimated cost (sum of reachable per-operator
    /// cost vectors).
    pub fn total_est_cost_vec(&self) -> CostEstimate {
        self.reachable()
            .iter()
            .fold(CostEstimate::ZERO, |acc, &id| {
                acc.add(&self.node(id).est_cost_vec)
            })
    }

    /// Number of exchanges (stage boundaries) in the plan.
    pub fn num_exchanges(&self) -> usize {
        self.reachable()
            .iter()
            .filter(|&&id| self.node(id).op.is_stage_boundary())
            .count()
    }

    /// Render as an indented tree (shared nodes shown once).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let Some(root) = self.root else {
            return "<empty physical plan>".into();
        };
        let mut out = String::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            for _ in 0..depth {
                out.push_str("  ");
            }
            if !seen.insert(id) {
                let _ = writeln!(out, "^{id}");
                continue;
            }
            let n = self.node(id);
            let _ = writeln!(
                out,
                "[{id}] {} (rows={:.0}, cost={:.1}, dop={}, {:?})",
                n.op.name(),
                n.est_rows,
                n.est_cost,
                n.dop,
                n.partitioning
            );
            for &c in n.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(op: PhysOp, children: Vec<NodeId>, cost: f64) -> PhysNode {
        PhysNode {
            op,
            children,
            est_rows: 10.0,
            est_bytes: 100.0,
            est_cost: cost,
            est_cost_vec: CostEstimate {
                cpu: cost,
                ..CostEstimate::ZERO
            },
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        }
    }

    #[test]
    fn partitioning_satisfaction() {
        let h1 = Partitioning::Hash(vec![ColId(1)]);
        let h2 = Partitioning::Hash(vec![ColId(2)]);
        assert!(h1.satisfies(&Partitioning::Any));
        assert!(h1.satisfies(&h1.clone()));
        assert!(!h1.satisfies(&h2));
        assert!(Partitioning::Singleton.satisfies(&h1));
        assert!(Partitioning::Broadcast.satisfies(&h1));
        assert!(!Partitioning::Any.satisfies(&Partitioning::Singleton));
        assert!(!h1.satisfies(&Partitioning::Broadcast));
    }

    #[test]
    fn plan_cost_sums_reachable_only() {
        let mut p = PhysPlan::new();
        let s = p.add(node(
            PhysOp::Scan {
                table: TableId(0),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            vec![],
            5.0,
        ));
        // Unreachable garbage node.
        p.add(node(
            PhysOp::Scan {
                table: TableId(1),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            vec![],
            100.0,
        ));
        let o = p.add(node(PhysOp::Output { stream: 0 }, vec![s], 2.0));
        p.set_root(o);
        assert!((p.total_est_cost() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exchange_counts_as_stage_boundary() {
        let mut p = PhysPlan::new();
        let s = p.add(node(
            PhysOp::Scan {
                table: TableId(0),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            vec![],
            1.0,
        ));
        let e = p.add(node(
            PhysOp::Exchange {
                scheme: Partitioning::Hash(vec![ColId(0)]),
                dop: 50,
            },
            vec![s],
            1.0,
        ));
        let o = p.add(node(PhysOp::Output { stream: 0 }, vec![e], 1.0));
        p.set_root(o);
        assert_eq!(p.num_exchanges(), 1);
        assert!(p.render().contains("Exchange"));
    }

    #[test]
    #[should_panic(expected = "forward edge")]
    fn forward_edges_panic() {
        let mut p = PhysPlan::new();
        p.add(node(PhysOp::Output { stream: 0 }, vec![NodeId(4)], 1.0));
    }
}
