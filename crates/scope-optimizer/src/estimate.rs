//! The optimizer's *estimated* logical properties: cardinality, width, and
//! available columns.
//!
//! Estimates are deliberately heuristic — independence with exponential
//! backoff for conjunctions, uniformity for join keys, a global constant for
//! user-defined operators — because the gap between these heuristics and the
//! ground truth in [`scope_ir::TrueCatalog`] is what rule steering exploits.
//!
//! Crucially, conjunct selectivity is **order-sensitive** (atoms are damped
//! in the order they appear, like SQL Server's exponential backoff), so
//! rewrite rules that reorder or relocate predicates change *estimated*
//! cardinalities without changing the truth. This is the mechanism behind
//! the paper's §5.3 observation that recompiled plans can have estimated
//! costs below the default plan's.

use std::cell::RefCell;

use scope_ir::catalog::shape_selectivity;
use scope_ir::ids::ColId;
use scope_ir::{AtomInterner, JoinKind, LogicalOp, ObservableCatalog, PredAtom};

/// Estimated logical properties of one expression's output.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalEst {
    /// Estimated row count (≥ 0, not necessarily integral).
    pub rows: f64,
    /// Estimated bytes per row.
    pub row_bytes: f64,
    /// Columns available to parents (computed/aggregate outputs are
    /// anonymous and not listed).
    pub cols: Vec<ColId>,
}

impl LogicalEst {
    /// Estimated total bytes.
    ///
    /// Mirrors the simulator's finite-runtime contract: a NaN or negative
    /// width here would silently poison every downstream cost, so the debug
    /// build refuses it at the source instead.
    pub fn bytes(&self) -> f64 {
        debug_assert!(
            self.rows.is_finite() && self.rows >= 0.0,
            "LogicalEst::bytes: rows must be finite and non-negative, got {}",
            self.rows
        );
        debug_assert!(
            self.row_bytes.is_finite() && self.row_bytes >= 0.0,
            "LogicalEst::bytes: row_bytes must be finite and non-negative, got {}",
            self.row_bytes
        );
        self.rows * self.row_bytes
    }

    /// Debug-check the estimator's output contract (finite, non-negative,
    /// rows floored at the estimator's 1-row minimum for row-producing ops).
    /// Release builds compile this to nothing.
    #[inline]
    fn debug_check_derived(&self) {
        debug_assert!(
            self.rows.is_finite() && self.rows >= 0.0,
            "Estimator::derive produced invalid rows: {}",
            self.rows
        );
        debug_assert!(
            self.row_bytes.is_finite() && self.row_bytes >= 0.0,
            "Estimator::derive produced invalid row_bytes: {}",
            self.row_bytes
        );
    }
}

/// Read-only access to a derivation's child estimates. Abstracts over the
/// legacy `&[&LogicalEst]` shape and the memo's slab-backed children so
/// [`Estimator::derive`] never forces callers to materialize a `Vec` of
/// references per insertion.
pub trait ChildEsts {
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> &LogicalEst;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ChildEsts for [&LogicalEst] {
    fn len(&self) -> usize {
        <[&LogicalEst]>::len(self)
    }
    fn get(&self, i: usize) -> &LogicalEst {
        self[i]
    }
}

impl<const N: usize> ChildEsts for [&LogicalEst; N] {
    fn len(&self) -> usize {
        N
    }
    fn get(&self, i: usize) -> &LogicalEst {
        self[i]
    }
}

impl ChildEsts for Vec<&LogicalEst> {
    fn len(&self) -> usize {
        <[&LogicalEst]>::len(self)
    }
    fn get(&self, i: usize) -> &LogicalEst {
        self[i]
    }
}

/// Number of leading conjuncts that contribute to a backoff estimate.
const BACKOFF_ATOMS: usize = 4;

/// Memoized per-atom selectivities, keyed by interned `(column, operator)`
/// shape — the full input domain of [`shape_selectivity`], so the cached
/// value is exactly what recomputation would return.
#[derive(Default)]
struct SelCache {
    atoms: AtomInterner,
    sel: Vec<f64>,
}

/// Derives estimates for operators given their children's estimates.
pub struct Estimator<'a> {
    obs: &'a ObservableCatalog,
    cache: RefCell<SelCache>,
    /// Multiplicative feedback correction applied to scan (leaf)
    /// cardinalities — the runtime-feedback loop's handle on systematic
    /// row misestimates. 1.0 (the default) is a bit-exact no-op.
    rows_correction: f64,
}

impl<'a> Estimator<'a> {
    pub fn new(obs: &'a ObservableCatalog) -> Self {
        Estimator {
            obs,
            cache: RefCell::new(SelCache::default()),
            rows_correction: 1.0,
        }
    }

    /// [`Estimator::new`] with a scan-cardinality correction factor. A
    /// non-finite or non-positive factor is a feedback-path bug upstream:
    /// debug builds refuse it, release builds fall back to the identity so
    /// a poisoned factor can never produce NaN cardinalities.
    pub fn with_rows_correction(obs: &'a ObservableCatalog, factor: f64) -> Self {
        debug_assert!(
            factor.is_finite() && factor > 0.0,
            "rows correction must be finite and positive, got {factor}"
        );
        let factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
        Estimator {
            obs,
            cache: RefCell::new(SelCache::default()),
            rows_correction: factor,
        }
    }

    /// The observable catalog backing this estimator.
    pub fn observed(&self) -> &ObservableCatalog {
        self.obs
    }

    /// Estimated selectivity of one atom, from its shape only. Memoized
    /// per `(column, operator)` — the function's entire input domain — so
    /// the hot reorder/backoff loops stop recomputing `shape_selectivity`.
    pub fn atom_selectivity(&self, atom: &PredAtom) -> f64 {
        let mut cache = self.cache.borrow_mut();
        let (id, new) = cache.atoms.intern(atom.col, atom.op);
        if new {
            // Clamp into (0, 1] at the producer: every consumer (backoff
            // products, the bounds analysis) assumes a selectivity is a
            // probability, and a single out-of-range value would make the
            // abstract intervals unsound. `shape_selectivity` already lands
            // in [1e-6, 1], so the clamp is the identity for healthy values.
            let s = shape_selectivity(atom.op, self.obs.col_ndv(atom.col));
            debug_assert!(
                s.is_finite() && s > 0.0 && s <= 1.0,
                "shape_selectivity escaped (0, 1]: {s} for {:?}",
                atom.op
            );
            cache.sel.push(s.clamp(1e-9, 1.0));
        }
        cache.sel[id.index()]
    }

    /// Order-sensitive conjunction selectivity with exponential backoff:
    /// the i-th atom (0-based, first four only) contributes
    /// `sel_i ^ (1/2^i)`.
    pub fn conj_selectivity(&self, atoms: &[PredAtom]) -> f64 {
        let mut sel = 1.0_f64;
        for (i, atom) in atoms.iter().take(BACKOFF_ATOMS).enumerate() {
            let s = self.atom_selectivity(atom);
            // IEEE 754 guarantees powf(s, 1.0) == s; skip the libm call for
            // the (dominant) single-atom case without changing any bit.
            sel *= if i == 0 {
                s
            } else {
                s.powf(1.0 / (1u32 << i) as f64)
            };
        }
        sel.clamp(1e-9, 1.0)
    }

    /// Derive the estimate for `op` from its children's estimates
    /// (children given in operator child order).
    pub fn derive<C: ChildEsts + ?Sized>(&self, op: &LogicalOp, children: &C) -> LogicalEst {
        let est = match op {
            LogicalOp::Get { table } | LogicalOp::RangeGet { table, .. } => {
                let rows = self.obs.table_rows(*table) as f64;
                let sel = match op {
                    LogicalOp::RangeGet { pushed, .. } if !pushed.is_true() => {
                        self.conj_selectivity(&pushed.atoms)
                    }
                    _ => 1.0,
                };
                let cols = self
                    .obs
                    .tables
                    .get(table.index())
                    .map(|t| t.cols.clone())
                    .unwrap_or_default();
                LogicalEst {
                    // The feedback correction multiplies *after* the
                    // selectivity product: at the identity factor the
                    // `* 1.0` leaves every bit unchanged.
                    rows: (rows * sel * self.rows_correction).max(1.0),
                    row_bytes: self.obs.table_row_bytes(*table) as f64,
                    cols,
                }
            }
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                let c = children.get(0);
                LogicalEst {
                    rows: (c.rows * self.conj_selectivity(&predicate.atoms)).max(1.0),
                    row_bytes: c.row_bytes,
                    cols: c.cols.clone(),
                }
            }
            LogicalOp::Project { cols, computed } => {
                let c = children.get(0);
                LogicalEst {
                    rows: c.rows,
                    row_bytes: 12.0 + 8.0 * (cols.len() + *computed as usize) as f64,
                    cols: cols.clone(),
                }
            }
            LogicalOp::Join { kind, keys } => {
                let l = children.get(0);
                let r = children.get(1);
                let mut rows = match keys.first() {
                    Some(&(lk, rk)) => {
                        let ndv = self.obs.col_ndv(lk).max(self.obs.col_ndv(rk)).max(1);
                        l.rows * r.rows / ndv as f64
                    }
                    None => l.rows * r.rows, // cross join
                };
                // Additional keys are assumed 30%-selective each.
                for _ in keys.iter().skip(1) {
                    rows *= 0.3;
                }
                rows = match kind {
                    JoinKind::Inner => rows,
                    JoinKind::LeftOuter => rows.max(l.rows),
                    JoinKind::Semi => (l.rows * 0.7).min(rows).max(1.0),
                };
                let mut cols = l.cols.clone();
                cols.extend_from_slice(&r.cols);
                LogicalEst {
                    rows: rows.max(1.0),
                    row_bytes: match kind {
                        JoinKind::Semi => l.row_bytes,
                        _ => l.row_bytes + r.row_bytes,
                    },
                    cols: match kind {
                        JoinKind::Semi => l.cols.clone(),
                        _ => cols,
                    },
                }
            }
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } => {
                let c = children.get(0);
                let mut groups = 1.0_f64;
                for &k in keys {
                    groups *= self.obs.col_ndv(k) as f64;
                }
                // Distinct combinations can't exceed input rows; partial
                // aggregation produces up to `groups` per partition (we
                // assume the planned default parallelism of 50).
                let rows = if *partial {
                    (groups * 50.0).min(c.rows)
                } else {
                    groups.min(c.rows * 0.9)
                };
                LogicalEst {
                    rows: rows.max(1.0),
                    row_bytes: 16.0 + 8.0 * (keys.len() + aggs.len()) as f64,
                    cols: keys.clone(),
                }
            }
            LogicalOp::UnionAll | LogicalOp::VirtualDataset => {
                let mut rows = 0.0_f64;
                let mut row_bytes = 0.0_f64;
                for i in 0..children.len() {
                    let c = children.get(i);
                    rows += c.rows;
                    row_bytes = row_bytes.max(c.row_bytes);
                }
                // Columns safe to reference above a union: those available
                // in every branch.
                let mut cols = if children.is_empty() {
                    Vec::new()
                } else {
                    children.get(0).cols.clone()
                };
                for i in 1..children.len() {
                    let c = children.get(i);
                    cols.retain(|col| c.cols.contains(col));
                }
                LogicalEst {
                    rows: rows.max(1.0),
                    row_bytes,
                    cols,
                }
            }
            LogicalOp::Top { k } => {
                let c = children.get(0);
                LogicalEst {
                    rows: (*k as f64).min(c.rows).max(1.0),
                    row_bytes: c.row_bytes,
                    cols: c.cols.clone(),
                }
            }
            LogicalOp::Sort { .. } | LogicalOp::Window { .. } | LogicalOp::Output { .. } => {
                let c = children.get(0);
                LogicalEst {
                    rows: c.rows,
                    row_bytes: c.row_bytes,
                    cols: c.cols.clone(),
                }
            }
            LogicalOp::Process { .. } => {
                let c = children.get(0);
                // One global assumption for all UDOs: pass-through
                // cardinality, slightly wider rows.
                LogicalEst {
                    rows: (c.rows * scope_ir::catalog::DEFAULT_UDO_SELECTIVITY).max(1.0),
                    row_bytes: c.row_bytes * 1.2,
                    cols: c.cols.clone(),
                }
            }
        };
        est.debug_check_derived();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, Predicate};
    use scope_ir::ids::{DomainId, TableId};
    use scope_ir::AggFunc;
    use scope_ir::TrueCatalog;

    fn setup() -> (TrueCatalog, Vec<ColId>) {
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(1000, 0.0, DomainId(0));
        let c1 = cat.add_column(100, 0.0, DomainId(1));
        let c2 = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(1_000_000, 100, 1, vec![c0, c1]);
        cat.add_table(500_000, 80, 2, vec![c2]);
        (cat, vec![c0, c1, c2])
    }

    fn atom(col: ColId, op: CmpOp) -> PredAtom {
        PredAtom::unknown(col, op, Literal::Int(1))
    }

    #[test]
    fn scan_estimate_uses_table_stats() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let scan = est.derive(
            &LogicalOp::RangeGet {
                table: TableId(0),
                pushed: Predicate::true_pred(),
            },
            &[],
        );
        assert_eq!(est.observed().table_rows(TableId(0)), 1_000_000);
        assert_eq!(scan.rows, 1_000_000.0);
        assert_eq!(scan.row_bytes, 100.0);
        assert_eq!(scan.cols, vec![cols[0], cols[1]]);
    }

    #[test]
    fn backoff_is_order_sensitive() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        // Eq on ndv=1024 (rounded) → sel ~1/1024; Range → 1/3.
        let a = atom(cols[0], CmpOp::Eq);
        let b = atom(cols[1], CmpOp::Range);
        let sel_ab = est.conj_selectivity(&[a.clone(), b.clone()]);
        let sel_ba = est.conj_selectivity(&[b, a]);
        assert!(
            (sel_ab - sel_ba).abs() > 1e-6,
            "reordering must change the estimate: {sel_ab} vs {sel_ba}"
        );
        // Most-selective-first yields the smaller combined estimate.
        assert!(sel_ab < sel_ba);
    }

    #[test]
    fn backoff_ignores_atoms_beyond_fourth() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let four: Vec<PredAtom> = (0..4).map(|_| atom(cols[1], CmpOp::Range)).collect();
        let five: Vec<PredAtom> = (0..5).map(|_| atom(cols[1], CmpOp::Range)).collect();
        assert_eq!(est.conj_selectivity(&four), est.conj_selectivity(&five));
    }

    #[test]
    fn join_estimate_divides_by_max_ndv() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let l = LogicalEst {
            rows: 1000.0,
            row_bytes: 50.0,
            cols: vec![cols[0]],
        };
        let r = LogicalEst {
            rows: 2000.0,
            row_bytes: 30.0,
            cols: vec![cols[2]],
        };
        let join = est.derive(
            &LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(cols[0], cols[2])],
            },
            &[&l, &r],
        );
        // ndv both 1024 after rounding.
        assert!((join.rows - 1000.0 * 2000.0 / 1024.0).abs() < 1e-6);
        assert_eq!(join.row_bytes, 80.0);
        assert_eq!(join.cols.len(), 2);
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let l = LogicalEst {
            rows: 1000.0,
            row_bytes: 50.0,
            cols: vec![cols[0]],
        };
        let r = LogicalEst {
            rows: 2000.0,
            row_bytes: 30.0,
            cols: vec![cols[2]],
        };
        let join = est.derive(
            &LogicalOp::Join {
                kind: JoinKind::Semi,
                keys: vec![(cols[0], cols[2])],
            },
            &[&l, &r],
        );
        assert_eq!(join.cols, vec![cols[0]]);
        assert!(join.rows <= 1000.0);
    }

    #[test]
    fn groupby_caps_at_input_rows() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let c = LogicalEst {
            rows: 50.0,
            row_bytes: 100.0,
            cols: vec![cols[0]],
        };
        let g = est.derive(
            &LogicalOp::GroupBy {
                keys: vec![cols[0]],
                aggs: vec![AggFunc::Count],
                partial: false,
            },
            &[&c],
        );
        assert!(g.rows <= 50.0);
        assert_eq!(g.cols, vec![cols[0]]);
    }

    #[test]
    fn union_intersects_columns_and_sums_rows() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let a = LogicalEst {
            rows: 10.0,
            row_bytes: 40.0,
            cols: vec![cols[0], cols[1]],
        };
        let b = LogicalEst {
            rows: 20.0,
            row_bytes: 60.0,
            cols: vec![cols[1], cols[2]],
        };
        let u = est.derive(&LogicalOp::UnionAll, &[&a, &b]);
        assert_eq!(u.rows, 30.0);
        assert_eq!(u.row_bytes, 60.0);
        assert_eq!(u.cols, vec![cols[1]]);
    }

    #[test]
    fn rows_correction_scales_scan_estimates() {
        let (cat, _cols) = setup();
        let obs = cat.observe();
        let op = LogicalOp::Get { table: TableId(0) };
        let base = Estimator::new(&obs).derive(&op, &[]);
        // The identity factor is bit-exact, not merely close.
        let ident = Estimator::with_rows_correction(&obs, 1.0).derive(&op, &[]);
        assert_eq!(base.rows.to_bits(), ident.rows.to_bits());
        let doubled = Estimator::with_rows_correction(&obs, 2.0).derive(&op, &[]);
        assert_eq!(doubled.rows, 2.0 * base.rows);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "rows correction must be finite and positive")]
    fn degenerate_rows_correction_refused_in_debug() {
        let (cat, _cols) = setup();
        let obs = cat.observe();
        let _ = Estimator::with_rows_correction(&obs, f64::NAN);
    }

    #[test]
    fn top_caps_rows() {
        let (cat, cols) = setup();
        let obs = cat.observe();
        let est = Estimator::new(&obs);
        let c = LogicalEst {
            rows: 1e6,
            row_bytes: 10.0,
            cols: vec![cols[0]],
        };
        let t = est.derive(&LogicalOp::Top { k: 100 }, &[&c]);
        assert_eq!(t.rows, 100.0);
    }
}
