//! # scope-optimizer
//!
//! A Cascades-style, rule-driven query optimizer with **256 steerable
//! rules** in the four categories of the paper's Table 2 (37 required, 46
//! off-by-default, 141 on-by-default, 32 implementation).
//!
//! Compilation pipeline ([`optimizer::compile`]):
//!
//! 1. **Normalize** ([`normalize`]) — required rules rewrite `Get`/`Select`
//!    into `RangeGet`/`Filter`.
//! 2. **Ingest** ([`memo`]) — the normalized DAG becomes hash-consed memo
//!    groups.
//! 3. **Explore** ([`search::explore`]) — enabled transformation rules
//!    ([`transform`]) add alternative expressions.
//! 4. **Implement** ([`search::implement`]) — enabled implementation rules
//!    produce physical candidates; the `EnforceExchange` enforcer inserts
//!    exchanges for unmet partitioning requirements; the cheapest candidate
//!    per group wins under the estimated cost model ([`cost`]).
//! 5. **Extract** — the winning [`physical::PhysPlan`] plus the job's
//!    [`config::RuleSignature`].
//!
//! Disabling rules steers this whole process, and disabling all
//! implementations of a needed operator produces a [`search::CompileError`]
//! — the paper's "not all configurations compile".

pub mod cache;
#[doc(hidden)]
pub mod classic;
pub mod config;
pub mod cost;
pub mod estimate;
pub mod memo;
pub mod normalize;
pub mod optimizer;
pub mod physical;
pub mod rules;
pub mod ruleset;
pub mod search;
pub mod transform;
pub mod validate;

pub use cache::{plan_catalog_fingerprint, CacheStats, CompileCache};
pub use config::{RuleConfig, RuleDiff, RuleSignature};
pub use cost::{clamp_volume, CostCorrections, CostEstimate, CostModel, CostWeights};
pub use optimizer::normalized_kind_counts;
pub use optimizer::{
    catch_compile_panics, compile, compile_job, compile_job_guarded, compile_job_with_budget,
    compile_job_with_model, compile_with_budget, compile_with_model, effective_config,
    CompileStats, CompiledPlan,
};
pub use physical::{Partitioning, PhysNode, PhysOp, PhysPlan};
pub use rules::{AnchorRewrite, PhysImpl, Rule, RuleAction, RuleCatalog, RuleCategory};
pub use ruleset::{RuleId, RuleSet, NUM_RULES};
pub use search::{CompileBudget, CompileError, CompilePhase};
pub use validate::{required_parts_phys, validate_physical};
