//! The rule catalog: 256 rules in the paper's four informal categories
//! (Table 2): 37 required, 46 off-by-default, 141 on-by-default, and 32
//! implementation rules.
//!
//! Rules are instantiated from a declarative builder in [`catalog`]; each
//! rule's behaviour is one of the parameterized [`RuleAction`] families,
//! interpreted by the normalization pass ([`crate::normalize`]), the memo
//! exploration engine ([`crate::search`]), or the implementation/costing
//! phase. Rule ids are assigned in category blocks:
//!
//! | ids        | category        |
//! |------------|-----------------|
//! | 0..=36     | Required        |
//! | 37..=82    | Off-by-default  |
//! | 83..=223   | On-by-default   |
//! | 224..=255  | Implementation  |

pub mod catalog;

use scope_ir::OpKind;

use crate::ruleset::{RuleId, RuleSet, NUM_RULES};

/// The paper's four informal rule categories (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleCategory {
    /// Necessary for correctness; never part of learnable configurations.
    Required,
    /// Experimental or unsafe rules, disabled in the default configuration.
    OffByDefault,
    /// The bulk of optimization rules, enabled by default.
    OnByDefault,
    /// Physical implementation choices; at least one per operator type must
    /// remain enabled or compilation fails.
    Implementation,
}

impl RuleCategory {
    pub const ALL: [RuleCategory; 4] = [
        RuleCategory::Required,
        RuleCategory::OffByDefault,
        RuleCategory::OnByDefault,
        RuleCategory::Implementation,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleCategory::Required => "Required",
            RuleCategory::OffByDefault => "Off-by-default",
            RuleCategory::OnByDefault => "On-by-default",
            RuleCategory::Implementation => "Implementation",
        }
    }
}

/// Orderings a predicate-reordering rule can impose on conjunct atoms.
/// Atom order is estimate-relevant (exponential backoff), so these rules
/// change estimated — not true — selectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomOrder {
    /// Most selective (smallest estimated selectivity) first.
    SelAsc,
    /// Least selective first (experimental).
    SelDesc,
    /// Equality atoms first, then ranges, then the rest.
    EqFirst,
    /// Stable order by column id.
    ByCol,
}

/// Physical implementation alternatives (the 32 implementation rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhysImpl {
    // Scans (implement RangeGet)
    ScanSerial,
    ScanParallel,
    ScanIndexed,
    // Simple unaries
    FilterImpl,
    ProjectImpl,
    // Joins
    HashJoin1,
    HashJoin2,
    HashJoin3,
    MergeJoin,
    BroadcastJoin,
    LoopJoin,
    IndexJoin,
    // Aggregation
    HashAgg,
    SortAgg,
    StreamAgg,
    // Union-all
    UnionConcat,
    UnionVirtual,
    UnionSerial,
    // Virtual dataset written directly by a script
    VirtualDatasetImpl,
    // Top-k
    TopN,
    TopSort,
    // Sort
    SortParallel,
    SortSerial,
    // Window
    WindowHash,
    WindowSort,
    // User-defined operators
    ProcessParallel,
    ProcessSerial,
    // Output
    OutputImpl,
    // Exchange implementations used by the EnforceExchange enforcer
    ExchangeHash,
    ExchangeRange,
    ExchangeBroadcast,
    ExchangeGather,
}

impl PhysImpl {
    /// Number of implementation alternatives (must equal the paper's 32).
    pub const COUNT: usize = 32;

    /// The logical operator kind this implementation rule implements;
    /// `None` for exchange implementations (driven by the enforcer, not by
    /// a logical operator).
    pub fn implements(self) -> Option<OpKind> {
        use PhysImpl::*;
        Some(match self {
            ScanSerial | ScanParallel | ScanIndexed => OpKind::RangeGet,
            FilterImpl => OpKind::Filter,
            ProjectImpl => OpKind::Project,
            HashJoin1 | HashJoin2 | HashJoin3 | MergeJoin | BroadcastJoin | LoopJoin
            | IndexJoin => OpKind::Join,
            HashAgg | SortAgg | StreamAgg => OpKind::GroupBy,
            UnionConcat | UnionVirtual | UnionSerial => OpKind::UnionAll,
            VirtualDatasetImpl => OpKind::VirtualDataset,
            TopN | TopSort => OpKind::Top,
            SortParallel | SortSerial => OpKind::Sort,
            WindowHash | WindowSort => OpKind::Window,
            ProcessParallel | ProcessSerial => OpKind::Process,
            OutputImpl => OpKind::Output,
            ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => return None,
        })
    }
}

/// How applying a transformation rule can change the operator *kind* of the
/// alternatives it inserts into the matched group. This is rule metadata for
/// static analysis (`scope-lint`): it lets an analyzer reason about which
/// kinds a memo group can reach without running exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnchorRewrite {
    /// Every alternative the rule inserts into the matched group has the
    /// anchor's own kind (reorderings, collapses, pruners, join rotations).
    Keeps,
    /// The rule can insert an alternative of this other kind into the
    /// matched group. A `Becomes(k)` rewrite only fires on plans that
    /// already contain a `k` node below the match (it hoists an existing
    /// operator), with one exception: `FilterIntoScan` rewrites the scan
    /// itself, and `RangeGet` is present in any plan with a scan.
    Becomes(OpKind),
    /// The rule replaces the match with its input, whatever kind that is
    /// (identity elimination). Analyzers must treat this as an escape to an
    /// unknown — hence always implementable — kind.
    Child,
}

/// What a rule *does*. Families are parameterized; the interpreting engines
/// live in `normalize`, `search`, and `cost`.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleAction {
    // ---- Required normalization & enforcement ----
    /// `Get` → `RangeGet` (required normalizer).
    GetToRange,
    /// `Select` → `Filter` (required normalizer).
    SelectToFilter,
    /// Marks the job output; fires for every compiled job.
    BuildOutput,
    /// The partitioning enforcer; fires whenever an exchange is inserted.
    EnforceExchange,
    /// Required canonicalization marker: fires when the normalized plan
    /// contains `kind`. No structural change.
    Canonicalize(OpKind),
    /// Required guard marker: fires when the normalized plan contains at
    /// least `min_count` nodes of `kind`. Most guards never fire — the
    /// "unused required rules" of Table 2.
    Guard {
        kind: OpKind,
        min_count: u8,
    },

    // ---- Transformation rules ----
    /// `Filter(Filter(x))` → single `Filter` (paper: `CollapseSelects`).
    CollapseFilters,
    /// Remove a trivially-true filter (paper: `SelectOnTrue`).
    DropTrueFilter,
    /// Push a filter into the scan below it (paper: `SelectPartitions`).
    FilterIntoScan,
    /// Push a filter below `kind` (paper: `SelectOnProject`, `SelectOn...`).
    /// `eq_only` variants push only equality atoms.
    FilterBelow {
        kind: OpKind,
        eq_only: bool,
    },
    /// Reorder conjunct atoms (paper: `SelectPredNormalized` et al.).
    ReorderAtoms(AtomOrder),
    /// `Project(Project(x))` → single `Project`.
    MergeProjects,
    /// Push a projection below `kind` (paper: `SequenceProjectOnUnion`).
    ProjectBelow(OpKind),
    /// Insert a narrowing projection below `kind` (column pruning).
    /// `eager` variants prune below smaller thresholds.
    PruneBelow {
        kind: OpKind,
        eager: bool,
    },
    /// Swap a join's inputs.
    JoinCommute {
        guarded: bool,
    },
    /// Rotate a join tree; `right` selects rotation direction. Guarded
    /// variants only fire when the intermediate estimate shrinks.
    JoinAssoc {
        right: bool,
        guarded: bool,
    },
    /// Push a join below a union-all: `Join(Union(..), c)` →
    /// `Union(Join(..))` (paper: `CorrelatedJoinOnUnionAll*`). Fires only
    /// when the union is on the given side and has arity ≤ `max_arity`.
    JoinOnUnion {
        max_arity: u8,
        left: bool,
    },
    /// Push a (partial) group-by below a join (paper: `GroupbyOnJoin`).
    GroupByOnJoin {
        variant: u8,
    },
    /// Push partial aggregation below a union
    /// (paper: `GroupbyBelowUnionAll`).
    GroupByBelowUnion {
        variant: u8,
    },
    /// Split an aggregation into partial + final.
    SplitGroupBy {
        variant: u8,
    },
    /// Flatten nested unions (paper-adjacent: `UnionAllOnUnionAll`).
    UnionFlatten {
        deep: bool,
    },
    /// Push a `Process` below a union (paper: `ProcessOnUnionAll`).
    ProcessBelowUnion {
        variant: u8,
    },
    /// Push a `Top` below a union, keeping the outer Top
    /// (paper: `TopOnRestrRemap`).
    TopBelowUnion {
        variant: u8,
    },
    /// Commute two adjacent unary operators (`child` directly below
    /// `parent` becomes `parent` below `child`).
    SwapUnary {
        parent: OpKind,
        child: OpKind,
        variant: u8,
    },
    /// Canonicalize group-by key order (paper: `NormalizeReduce`).
    NormalizeReduce {
        variant: u8,
    },
    /// Remove identity operators of `kind` (all-column projections,
    /// single-input unions, `Top` larger than its input estimate, ...).
    EliminateIdentity(OpKind),
    /// Merge two adjacent same-kind operators (`Sort(Sort)`, `Top(Top)`).
    CollapseSame(OpKind),
    /// Signature-only marker: fires when the plan contains at least
    /// `min_count` nodes of `kind`. Models SCOPE's many property-derivation
    /// and task rules that appear in optimizer traces without transforming
    /// the plan.
    Marker {
        kind: OpKind,
        min_count: u8,
    },

    // ---- Implementation rules ----
    Impl(PhysImpl),
}

impl RuleAction {
    /// The logical operator kind this rule's *match* is anchored on, if
    /// any (used for fast dispatch during exploration).
    pub fn anchor(&self) -> Option<OpKind> {
        use RuleAction::*;
        Some(match self {
            GetToRange => OpKind::Get,
            SelectToFilter => OpKind::Select,
            BuildOutput => OpKind::Output,
            EnforceExchange => return None,
            Canonicalize(k) => *k,
            Guard { kind, .. } => *kind,
            CollapseFilters
            | DropTrueFilter
            | FilterIntoScan
            | FilterBelow { .. }
            | ReorderAtoms(_) => OpKind::Filter,
            MergeProjects | ProjectBelow(_) => OpKind::Project,
            PruneBelow { kind, .. } => *kind,
            JoinCommute { .. } | JoinAssoc { .. } | JoinOnUnion { .. } => OpKind::Join,
            GroupByOnJoin { .. }
            | GroupByBelowUnion { .. }
            | SplitGroupBy { .. }
            | NormalizeReduce { .. } => OpKind::GroupBy,
            UnionFlatten { .. } => OpKind::UnionAll,
            ProcessBelowUnion { .. } => OpKind::Process,
            TopBelowUnion { .. } => OpKind::Top,
            SwapUnary { parent, .. } => *parent,
            EliminateIdentity(k) | CollapseSame(k) => *k,
            Marker { kind, .. } => *kind,
            Impl(p) => return p.implements(),
        })
    }

    /// How the alternatives a transformation inserts into the *matched*
    /// group relate to the anchor kind (see [`AnchorRewrite`]). Mirrors the
    /// rewrite shapes in `transform.rs` and must be kept in sync with them;
    /// the static analyzer's soundness rests on this mapping never claiming
    /// `Keeps` for a rule that can change the matched group's kind.
    pub fn anchor_rewrite(&self) -> AnchorRewrite {
        use RuleAction::*;
        match self {
            // Filter pushed into the scan below it: alt is a RangeGet.
            FilterIntoScan => AnchorRewrite::Becomes(OpKind::RangeGet),
            // Filter pushed below `kind`: when the residual predicate is
            // empty, `wrap_residual` inserts the bare hoisted `kind` node as
            // the alternative.
            FilterBelow { kind, .. } => AnchorRewrite::Becomes(*kind),
            // ProjectBelow(Join) keeps the projection on top of the join;
            // every other target hoists the child kind into the match.
            ProjectBelow(kind) if *kind != OpKind::Join => AnchorRewrite::Becomes(*kind),
            // Join/Process pushed below a union: the union is hoisted.
            JoinOnUnion { .. } | ProcessBelowUnion { .. } => {
                AnchorRewrite::Becomes(OpKind::UnionAll)
            }
            // Adjacent-unary commute: the child kind is hoisted on top.
            SwapUnary { child, .. } => AnchorRewrite::Becomes(*child),
            // Identity elimination replaces the match with its input, which
            // can be any kind.
            DropTrueFilter | EliminateIdentity(_) => AnchorRewrite::Child,
            // Everything else (collapse/reorder/merge/prune/commute/assoc/
            // split/flatten, markers, normalizers, impls) only inserts
            // alternatives whose root has the anchor's own kind.
            _ => AnchorRewrite::Keeps,
        }
    }

    /// Whether this is a structural transformation explored in the memo
    /// (as opposed to a normalizer, marker, or implementation).
    pub fn is_transformation(&self) -> bool {
        use RuleAction::*;
        !matches!(
            self,
            GetToRange
                | SelectToFilter
                | BuildOutput
                | EnforceExchange
                | Canonicalize(_)
                | Guard { .. }
                | Marker { .. }
                | Impl(_)
        )
    }
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct Rule {
    pub id: RuleId,
    pub name: String,
    pub category: RuleCategory,
    pub action: RuleAction,
}

/// The full, immutable rule catalog.
#[derive(Debug)]
pub struct RuleCatalog {
    rules: Vec<Rule>,
    required: RuleSet,
    off_by_default: RuleSet,
    /// Transformation rules, indexed by anchor kind for fast dispatch.
    transforms_by_kind: Vec<Vec<RuleId>>,
    /// Implementation rules per logical kind.
    impls_by_kind: Vec<Vec<RuleId>>,
    /// Exchange implementation rules.
    exchange_impls: Vec<RuleId>,
    /// Marker-style rules (Canonicalize / Guard / Marker), all categories.
    markers: Vec<RuleId>,
    /// `transforms_by_kind` as bitset masks: intersecting with a config's
    /// enabled set selects the applicable rules without materializing a
    /// `Vec<RuleId>` per expression in the explore loop.
    transform_mask: [RuleSet; OpKind::COUNT],
    /// `impls_by_kind` as bitset masks, for the implement loop.
    impl_mask: [RuleSet; OpKind::COUNT],
    /// Implementation rule per `PhysImpl` discriminant (`None` for the
    /// non-exchange variants only if the catalog were ever incomplete);
    /// replaces the O(|rules|) scan the enforcer used to do per exchange.
    rule_by_impl: [Option<RuleId>; PhysImpl::COUNT],
}

impl RuleCatalog {
    /// The process-wide catalog (construction is deterministic).
    pub fn global() -> &'static RuleCatalog {
        static CATALOG: std::sync::OnceLock<RuleCatalog> = std::sync::OnceLock::new();
        CATALOG.get_or_init(catalog::build)
    }

    pub(crate) fn from_rules(rules: Vec<Rule>) -> Self {
        assert_eq!(
            rules.len(),
            NUM_RULES,
            "catalog must have {NUM_RULES} rules"
        );
        let mut required = RuleSet::EMPTY;
        let mut off_by_default = RuleSet::EMPTY;
        let mut transforms_by_kind = vec![Vec::new(); OpKind::COUNT];
        let mut impls_by_kind = vec![Vec::new(); OpKind::COUNT];
        let mut exchange_impls = Vec::new();
        let mut markers = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            assert_eq!(rule.id.index(), i, "rule ids must be dense");
            match rule.category {
                RuleCategory::Required => required.insert(rule.id),
                RuleCategory::OffByDefault => off_by_default.insert(rule.id),
                _ => {}
            }
            match &rule.action {
                RuleAction::Impl(p) => match p.implements() {
                    Some(kind) => impls_by_kind[kind as usize].push(rule.id),
                    None => exchange_impls.push(rule.id),
                },
                RuleAction::Canonicalize(k) => {
                    markers.push(rule.id);
                    let _ = k;
                }
                RuleAction::Guard { .. } | RuleAction::Marker { .. } => markers.push(rule.id),
                action if action.is_transformation() => {
                    if let Some(kind) = action.anchor() {
                        transforms_by_kind[kind as usize].push(rule.id);
                    }
                }
                _ => {}
            }
        }
        let mut transform_mask = [RuleSet::EMPTY; OpKind::COUNT];
        let mut impl_mask = [RuleSet::EMPTY; OpKind::COUNT];
        for kind in 0..OpKind::COUNT {
            for &id in &transforms_by_kind[kind] {
                transform_mask[kind].insert(id);
            }
            for &id in &impls_by_kind[kind] {
                impl_mask[kind].insert(id);
            }
        }
        let mut rule_by_impl = [None; PhysImpl::COUNT];
        for rule in &rules {
            if let RuleAction::Impl(p) = &rule.action {
                rule_by_impl[*p as usize] = Some(rule.id);
            }
        }
        RuleCatalog {
            rules,
            required,
            off_by_default,
            transforms_by_kind,
            impls_by_kind,
            exchange_impls,
            markers,
            transform_mask,
            impl_mask,
            rule_by_impl,
        }
    }

    /// All rules in id order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Look up a rule.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Find a rule id by exact name (test/diagnostic helper; O(n)).
    pub fn find(&self, name: &str) -> Option<RuleId> {
        self.rules.iter().find(|r| r.name == name).map(|r| r.id)
    }

    /// The set of required rules (never disabled).
    pub fn required(&self) -> &RuleSet {
        &self.required
    }

    /// The set of rules disabled in the default configuration.
    pub fn off_by_default(&self) -> &RuleSet {
        &self.off_by_default
    }

    /// Non-required rules: the learnable configuration space (219 in the
    /// paper; 219 here as well).
    pub fn non_required(&self) -> RuleSet {
        RuleSet::FULL.difference(&self.required)
    }

    /// Transformation rules anchored on `kind`.
    pub fn transforms_for(&self, kind: OpKind) -> &[RuleId] {
        &self.transforms_by_kind[kind as usize]
    }

    /// Implementation rules for logical `kind`.
    pub fn impls_for(&self, kind: OpKind) -> &[RuleId] {
        &self.impls_by_kind[kind as usize]
    }

    /// Exchange implementation rules.
    pub fn exchange_impls(&self) -> &[RuleId] {
        &self.exchange_impls
    }

    /// Transformation rules anchored on `kind`, as a bitset mask. Same
    /// membership (and, via [`RuleSet::iter`], the same ascending-id order)
    /// as [`Self::transforms_for`].
    #[inline]
    pub fn transform_mask(&self, kind: OpKind) -> RuleSet {
        self.transform_mask[kind as usize]
    }

    /// Implementation rules for `kind`, as a bitset mask. Same membership
    /// and iteration order as [`Self::impls_for`].
    #[inline]
    pub fn impl_mask(&self, kind: OpKind) -> RuleSet {
        self.impl_mask[kind as usize]
    }

    /// The implementation rule carrying `impl_` (O(1) array lookup).
    #[inline]
    pub fn rule_for_impl(&self, impl_: PhysImpl) -> Option<RuleId> {
        self.rule_by_impl[impl_ as usize]
    }

    /// All marker-style rules.
    pub fn markers(&self) -> &[RuleId] {
        &self.markers
    }

    /// Count rules per category.
    pub fn category_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for r in &self.rules {
            let idx = RuleCategory::ALL
                .iter()
                .position(|c| *c == r.category)
                .expect("category in ALL");
            counts[idx] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_mirror_per_kind_rule_lists() {
        let cat = RuleCatalog::global();
        for kind in OpKind::ALL {
            let from_mask: Vec<RuleId> = cat.transform_mask(kind).iter().collect();
            assert_eq!(from_mask, cat.transforms_for(kind), "{kind:?} transforms");
            let from_mask: Vec<RuleId> = cat.impl_mask(kind).iter().collect();
            assert_eq!(from_mask, cat.impls_for(kind), "{kind:?} impls");
        }
    }

    #[test]
    fn rule_for_impl_matches_linear_scan() {
        let cat = RuleCatalog::global();
        let all_impls = [
            PhysImpl::ScanSerial,
            PhysImpl::ExchangeHash,
            PhysImpl::ExchangeRange,
            PhysImpl::ExchangeBroadcast,
            PhysImpl::ExchangeGather,
            PhysImpl::OutputImpl,
            PhysImpl::HashJoin2,
        ];
        for p in all_impls {
            let scanned = cat
                .rules()
                .iter()
                .find(|r| r.action == RuleAction::Impl(p))
                .map(|r| r.id);
            assert_eq!(cat.rule_for_impl(p), scanned, "{p:?}");
            assert!(scanned.is_some(), "{p:?} must have a carrying rule");
        }
    }

    #[test]
    fn catalog_has_paper_category_counts() {
        let cat = RuleCatalog::global();
        let counts = cat.category_counts();
        assert_eq!(counts, [37, 46, 141, 32], "Required/Off/On/Impl");
        assert_eq!(cat.rules().len(), NUM_RULES);
        assert_eq!(cat.non_required().len(), 219);
    }

    #[test]
    fn rule_ids_are_category_blocks() {
        let cat = RuleCatalog::global();
        for r in cat.rules() {
            let expected = match r.id.0 {
                0..=36 => RuleCategory::Required,
                37..=82 => RuleCategory::OffByDefault,
                83..=223 => RuleCategory::OnByDefault,
                _ => RuleCategory::Implementation,
            };
            assert_eq!(r.category, expected, "rule {} ({})", r.id, r.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let cat = RuleCatalog::global();
        let mut names: Vec<&str> = cat.rules().iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate rule names");
    }

    #[test]
    fn paper_named_rules_exist_in_right_categories() {
        let cat = RuleCatalog::global();
        let expect = [
            ("GetToRange", RuleCategory::Required),
            ("SelectToFilter", RuleCategory::Required),
            ("EnforceExchange", RuleCategory::Required),
            ("BuildOutput", RuleCategory::Required),
            ("CorrelatedJoinOnUnionAll1", RuleCategory::OffByDefault),
            ("CorrelatedJoinOnUnionAll2", RuleCategory::OffByDefault),
            ("GroupbyOnJoin", RuleCategory::OffByDefault),
            ("CollapseSelects", RuleCategory::OnByDefault),
            ("SelectPartitions", RuleCategory::OnByDefault),
            ("NormalizeReduce", RuleCategory::OnByDefault),
            ("SequenceProjectOnUnion", RuleCategory::OnByDefault),
            ("SelectOnProject", RuleCategory::OnByDefault),
            ("SelectOnTrue", RuleCategory::OnByDefault),
            ("TopOnRestrRemap", RuleCategory::OnByDefault),
            ("ProcessOnUnionAll", RuleCategory::OnByDefault),
            ("GroupbyBelowUnionAll", RuleCategory::OnByDefault),
            ("SelectPredNormalized", RuleCategory::OnByDefault),
            ("HashJoinImpl1", RuleCategory::Implementation),
            ("JoinImpl2", RuleCategory::Implementation),
            ("JoinToApplyIndex1", RuleCategory::Implementation),
            ("UnionAllToUnionAll", RuleCategory::Implementation),
            ("UnionAllToVirtualDataset", RuleCategory::Implementation),
        ];
        for (name, category) in expect {
            let id = cat
                .find(name)
                .unwrap_or_else(|| panic!("missing rule {name}"));
            assert_eq!(cat.rule(id).category, category, "{name}");
        }
    }

    #[test]
    fn every_implementable_kind_has_an_impl() {
        let cat = RuleCatalog::global();
        for kind in [
            OpKind::RangeGet,
            OpKind::Filter,
            OpKind::Project,
            OpKind::Join,
            OpKind::GroupBy,
            OpKind::UnionAll,
            OpKind::VirtualDataset,
            OpKind::Top,
            OpKind::Sort,
            OpKind::Window,
            OpKind::Process,
            OpKind::Output,
        ] {
            assert!(
                !cat.impls_for(kind).is_empty(),
                "no implementation for {kind:?}"
            );
        }
        assert!(!cat.exchange_impls().is_empty());
    }

    #[test]
    fn join_has_many_alternative_impls() {
        let cat = RuleCatalog::global();
        assert!(cat.impls_for(OpKind::Join).len() >= 5);
    }

    #[test]
    fn phys_impl_count_matches_category() {
        let cat = RuleCatalog::global();
        let impl_rules = cat
            .rules()
            .iter()
            .filter(|r| matches!(r.action, RuleAction::Impl(_)))
            .count();
        assert_eq!(impl_rules, PhysImpl::COUNT);
    }

    #[test]
    fn transform_dispatch_is_populated() {
        let cat = RuleCatalog::global();
        assert!(!cat.transforms_for(OpKind::Filter).is_empty());
        assert!(!cat.transforms_for(OpKind::Join).is_empty());
        assert!(!cat.transforms_for(OpKind::GroupBy).is_empty());
    }
}
