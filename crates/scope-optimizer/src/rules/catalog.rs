//! Deterministic construction of the 256-rule catalog.
//!
//! Category blocks: Required `0..=36`, Off-by-default `37..=82`,
//! On-by-default `83..=223`, Implementation `224..=255`. Names follow the
//! paper's naming style where the paper names a rule (`GetToRange`,
//! `CorrelatedJoinOnUnionAll1`, `SelectPartitions`, `HashJoinImpl1`, ...);
//! the remaining rules are generated family variants — exactly the flavour
//! of near-duplicate rules the paper describes ("a collection of slightly
//! different CorrelatedJoinOnUnion rules").

use scope_ir::OpKind;

use super::{AtomOrder, PhysImpl, Rule, RuleAction, RuleCatalog, RuleCategory};
use crate::ruleset::{RuleId, NUM_RULES};

/// Operator kinds that receive a firing `Canonicalize` marker. Plans never
/// contain `Get`/`Select` after normalization and simple unaries need no
/// canonicalization, so their markers exist but never fire — producing the
/// paper's "unused required rules".
pub const COMPLEX_KINDS: [OpKind; 8] = [
    OpKind::Join,
    OpKind::GroupBy,
    OpKind::UnionAll,
    OpKind::VirtualDataset,
    OpKind::Top,
    OpKind::Sort,
    OpKind::Window,
    OpKind::Process,
];

struct Builder {
    rules: Vec<Rule>,
}

impl Builder {
    fn push(&mut self, category: RuleCategory, name: impl Into<String>, action: RuleAction) {
        let id = RuleId(self.rules.len() as u16);
        self.rules.push(Rule {
            id,
            name: name.into(),
            category,
            action,
        });
    }

    fn count_in(&self, category: RuleCategory) -> usize {
        self.rules.iter().filter(|r| r.category == category).count()
    }
}

/// Build the full catalog. Panics if the construction does not produce the
/// paper's exact category counts — this is checked at startup by every user
/// of [`RuleCatalog::global`].
pub fn build() -> RuleCatalog {
    let mut b = Builder {
        rules: Vec::with_capacity(NUM_RULES),
    };

    build_required(&mut b);
    assert_eq!(b.rules.len(), 37, "required block");
    build_off_by_default(&mut b);
    assert_eq!(b.rules.len(), 37 + 46, "off-by-default block");
    build_on_by_default(&mut b);
    assert_eq!(b.rules.len(), 37 + 46 + 141, "on-by-default block");
    build_implementation(&mut b);
    assert_eq!(b.rules.len(), NUM_RULES, "implementation block");

    RuleCatalog::from_rules(b.rules)
}

fn build_required(b: &mut Builder) {
    use RuleAction::*;
    let c = RuleCategory::Required;
    b.push(c, "GetToRange", GetToRange);
    b.push(c, "SelectToFilter", SelectToFilter);
    b.push(c, "BuildOutput", BuildOutput);
    b.push(c, "EnforceExchange", EnforceExchange);
    for kind in OpKind::ALL {
        b.push(c, format!("Normalize{}", kind.name()), Canonicalize(kind));
    }
    // 19 guard rules. Guards over `Get`/`Select` can never fire on a
    // normalized plan; together with the non-complex Canonicalize markers
    // they form the "unused required rules" of Table 2.
    for i in 0..19u8 {
        let kind = OpKind::ALL[(i as usize) % OpKind::COUNT];
        let min_count = 2 + 2 * (i / 14);
        b.push(
            c,
            format!("{}Guard{}", kind.name(), min_count),
            Guard { kind, min_count },
        );
    }
    assert_eq!(b.count_in(c), 37);
}

fn build_off_by_default(b: &mut Builder) {
    use RuleAction::*;
    let c = RuleCategory::OffByDefault;

    // The paper's flagship off-by-default family: push a join below a
    // union-all. Variants differ in which side may hold the union and the
    // maximum union arity they fire on.
    let join_on_union: [(u8, bool); 8] = [
        (2, true),
        (2, false),
        (3, true),
        (4, true),
        (4, false),
        (6, true),
        (8, true),
        (16, true),
    ];
    for (i, (max_arity, left)) in join_on_union.into_iter().enumerate() {
        b.push(
            c,
            format!("CorrelatedJoinOnUnionAll{}", i + 1),
            JoinOnUnion { max_arity, left },
        );
    }

    for variant in 0..4u8 {
        let name = if variant == 0 {
            "GroupbyOnJoin".to_string()
        } else {
            format!("GroupbyOnJoin{}", variant + 1)
        };
        b.push(c, name, GroupByOnJoin { variant });
    }

    // Pushing filters through user-defined operators is unsafe in general
    // (the UDO may rewrite the filtered column) — experimental.
    b.push(
        c,
        "SelectOnProcess1",
        FilterBelow {
            kind: OpKind::Process,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnProcess2",
        FilterBelow {
            kind: OpKind::Process,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnTop",
        FilterBelow {
            kind: OpKind::Top,
            eq_only: false,
        },
    );

    // Experimental operator reorderings.
    let risky_swaps: [(OpKind, OpKind); 10] = [
        (OpKind::Top, OpKind::Filter),
        (OpKind::Top, OpKind::Project),
        (OpKind::Window, OpKind::Filter),
        (OpKind::Window, OpKind::Project),
        (OpKind::Process, OpKind::Project),
        (OpKind::Process, OpKind::Sort),
        (OpKind::Sort, OpKind::Process),
        (OpKind::Project, OpKind::Process),
        (OpKind::Filter, OpKind::Window),
        (OpKind::Top, OpKind::Sort),
    ];
    for (i, (parent, child)) in risky_swaps.into_iter().enumerate() {
        b.push(
            c,
            format!("Exp{}Under{}{}", parent.name(), child.name(), i + 1),
            SwapUnary {
                parent,
                child,
                variant: i as u8,
            },
        );
    }

    b.push(c, "SelectPredReversed", ReorderAtoms(AtomOrder::SelDesc));
    b.push(c, "ProcessOnUnionAll2", ProcessBelowUnion { variant: 1 });
    b.push(c, "TopOnUnionAllAggressive", TopBelowUnion { variant: 1 });
    b.push(c, "SplitGroupByAggressive1", SplitGroupBy { variant: 2 });
    b.push(c, "SplitGroupByAggressive2", SplitGroupBy { variant: 3 });
    b.push(
        c,
        "JoinAssocDeepLeft",
        JoinAssoc {
            right: false,
            guarded: false,
        },
    );
    b.push(
        c,
        "JoinAssocDeepRight",
        JoinAssoc {
            right: true,
            guarded: false,
        },
    );

    for kind in [
        OpKind::Join,
        OpKind::GroupBy,
        OpKind::UnionAll,
        OpKind::Sort,
        OpKind::Window,
        OpKind::Process,
        OpKind::Top,
        OpKind::Output,
    ] {
        b.push(
            c,
            format!("EagerPrune{}", kind.name()),
            PruneBelow { kind, eager: true },
        );
    }

    b.push(c, "UnionFlattenDeep", UnionFlatten { deep: true });
    b.push(c, "TopElimination", EliminateIdentity(OpKind::Top));
    b.push(c, "SortElimination", EliminateIdentity(OpKind::Sort));
    b.push(
        c,
        "ExpProcessFusion",
        Marker {
            kind: OpKind::Process,
            min_count: 2,
        },
    );
    b.push(
        c,
        "ExpJoinGraphAnalysis",
        Marker {
            kind: OpKind::Join,
            min_count: 4,
        },
    );
    b.push(
        c,
        "ExpUnionTopology",
        Marker {
            kind: OpKind::UnionAll,
            min_count: 3,
        },
    );

    assert_eq!(b.count_in(c), 46);
}

fn build_on_by_default(b: &mut Builder) {
    use RuleAction::*;
    let c = RuleCategory::OnByDefault;

    // Filter rewrites.
    b.push(c, "CollapseSelects", CollapseFilters);
    b.push(c, "SelectOnTrue", DropTrueFilter);
    b.push(c, "SelectPartitions", FilterIntoScan);
    b.push(c, "SelectPredNormalized", ReorderAtoms(AtomOrder::SelAsc));
    b.push(c, "SelectPredEqFirst", ReorderAtoms(AtomOrder::EqFirst));
    b.push(c, "SelectPredByColumn", ReorderAtoms(AtomOrder::ByCol));
    // Filter pushdown family.
    b.push(
        c,
        "SelectOnProject",
        FilterBelow {
            kind: OpKind::Project,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnJoin",
        FilterBelow {
            kind: OpKind::Join,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnJoinEq",
        FilterBelow {
            kind: OpKind::Join,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnUnionAll",
        FilterBelow {
            kind: OpKind::UnionAll,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnUnionAllEq",
        FilterBelow {
            kind: OpKind::UnionAll,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnGroupBy",
        FilterBelow {
            kind: OpKind::GroupBy,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnGroupByEq",
        FilterBelow {
            kind: OpKind::GroupBy,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnSort",
        FilterBelow {
            kind: OpKind::Sort,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnSortEq",
        FilterBelow {
            kind: OpKind::Sort,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnWindow",
        FilterBelow {
            kind: OpKind::Window,
            eq_only: false,
        },
    );
    b.push(
        c,
        "SelectOnWindowEq",
        FilterBelow {
            kind: OpKind::Window,
            eq_only: true,
        },
    );
    b.push(
        c,
        "SelectOnVirtualDataset",
        FilterBelow {
            kind: OpKind::VirtualDataset,
            eq_only: false,
        },
    );

    // Project rewrites.
    b.push(c, "MergeProjects", MergeProjects);
    b.push(c, "SequenceProjectOnUnion", ProjectBelow(OpKind::UnionAll));
    b.push(c, "ProjectOnJoin", ProjectBelow(OpKind::Join));
    b.push(c, "ProjectOnSort", ProjectBelow(OpKind::Sort));
    b.push(c, "ProjectOnWindow", ProjectBelow(OpKind::Window));
    b.push(c, "ProjectOnFilter", ProjectBelow(OpKind::Filter));
    b.push(c, "ProjectOnGroupBy", ProjectBelow(OpKind::GroupBy));
    b.push(c, "ProjectOnTop", ProjectBelow(OpKind::Top));

    // Column-pruning family (lazy thresholds; eager variants are
    // off-by-default).
    for kind in [
        OpKind::Join,
        OpKind::GroupBy,
        OpKind::UnionAll,
        OpKind::Sort,
        OpKind::Window,
        OpKind::Process,
        OpKind::Top,
        OpKind::Output,
    ] {
        b.push(
            c,
            format!("Prune{}", kind.name()),
            PruneBelow { kind, eager: false },
        );
    }

    // Join order rules.
    b.push(c, "JoinCommute", JoinCommute { guarded: false });
    b.push(c, "JoinCommuteGuarded", JoinCommute { guarded: true });
    b.push(
        c,
        "JoinAssocLeft",
        JoinAssoc {
            right: false,
            guarded: true,
        },
    );
    b.push(
        c,
        "JoinAssocRight",
        JoinAssoc {
            right: true,
            guarded: true,
        },
    );

    // Aggregation rules.
    b.push(c, "NormalizeReduce", NormalizeReduce { variant: 0 });
    b.push(c, "NormalizeReduce2", NormalizeReduce { variant: 1 });
    b.push(c, "NormalizeReduce3", NormalizeReduce { variant: 2 });
    b.push(c, "GroupbyBelowUnionAll", GroupByBelowUnion { variant: 0 });
    b.push(c, "GroupbyBelowUnionAll2", GroupByBelowUnion { variant: 1 });
    b.push(c, "GroupbyBelowUnionAll3", GroupByBelowUnion { variant: 2 });
    b.push(c, "SplitGroupBy", SplitGroupBy { variant: 0 });
    b.push(c, "SplitGroupByHashed", SplitGroupBy { variant: 1 });

    // Union / process / top rules.
    b.push(c, "UnionAllOnUnionAll", UnionFlatten { deep: false });
    b.push(c, "ProcessOnUnionAll", ProcessBelowUnion { variant: 0 });
    b.push(c, "ProcessOnUnionAll3", ProcessBelowUnion { variant: 2 });
    b.push(c, "TopOnRestrRemap", TopBelowUnion { variant: 0 });
    b.push(c, "TopOnUnionAll2", TopBelowUnion { variant: 2 });

    // Safe unary reorderings.
    let safe_swaps: [(OpKind, OpKind); 11] = [
        (OpKind::Filter, OpKind::Sort),
        (OpKind::Sort, OpKind::Filter),
        (OpKind::Project, OpKind::Sort),
        (OpKind::Sort, OpKind::Project),
        (OpKind::Filter, OpKind::Project),
        (OpKind::Project, OpKind::Filter),
        (OpKind::Sort, OpKind::Window),
        (OpKind::Window, OpKind::Sort),
        (OpKind::Project, OpKind::Window),
        (OpKind::Window, OpKind::Project),
        (OpKind::Filter, OpKind::Top),
    ];
    for (i, (parent, child)) in safe_swaps.into_iter().enumerate() {
        b.push(
            c,
            format!("Reseq{}On{}", parent.name(), child.name()),
            SwapUnary {
                parent,
                child,
                variant: 16 + i as u8,
            },
        );
    }

    // Identity elimination & same-kind collapsing.
    b.push(c, "ProjectElimination", EliminateIdentity(OpKind::Project));
    b.push(
        c,
        "UnionCollapseSingle",
        EliminateIdentity(OpKind::UnionAll),
    );
    b.push(c, "CollapseSorts", CollapseSame(OpKind::Sort));
    b.push(c, "CollapseTops", CollapseSame(OpKind::Top));
    b.push(c, "CollapseWindows", CollapseSame(OpKind::Window));

    // Pad the block to exactly 141 rules with property-derivation markers:
    // rules that appear in optimizer traces (and hence signatures) without
    // transforming the plan — SCOPE has many of these.
    let mut tier_idx = 0usize;
    let tiers: [u8; 6] = [3, 5, 8, 12, 16, 20];
    while b.count_in(c) < 141 {
        let kind = OpKind::ALL[tier_idx % OpKind::COUNT];
        let min_count = tiers[(tier_idx / OpKind::COUNT) % tiers.len()];
        b.push(
            c,
            format!("Derive{}Stats{}", kind.name(), min_count),
            Marker { kind, min_count },
        );
        tier_idx += 1;
    }
    assert_eq!(b.count_in(c), 141);
}

fn build_implementation(b: &mut Builder) {
    use PhysImpl::*;
    let c = RuleCategory::Implementation;
    let impls: [(PhysImpl, &str); 32] = [
        (ScanSerial, "SerialScanImpl"),
        (ScanParallel, "ParallelScanImpl"),
        (ScanIndexed, "IndexedScanImpl"),
        (FilterImpl, "FilterImpl"),
        (ProjectImpl, "ProjectImpl"),
        (HashJoin1, "HashJoinImpl1"),
        (HashJoin2, "HashJoinImpl2"),
        (HashJoin3, "HashJoinImpl3"),
        (MergeJoin, "JoinImpl2"),
        (BroadcastJoin, "BroadcastJoinImpl"),
        (LoopJoin, "LoopJoinImpl"),
        (IndexJoin, "JoinToApplyIndex1"),
        (HashAgg, "HashAggImpl"),
        (SortAgg, "SortAggImpl"),
        (StreamAgg, "StreamAggImpl"),
        (UnionConcat, "UnionAllToUnionAll"),
        (UnionVirtual, "UnionAllToVirtualDataset"),
        (UnionSerial, "SerialUnionAllImpl"),
        (VirtualDatasetImpl, "VirtualDatasetImpl"),
        (TopN, "TopNHeapImpl"),
        (TopSort, "TopSortImpl"),
        (SortParallel, "ParallelSortImpl"),
        (SortSerial, "SerialSortImpl"),
        (WindowHash, "HashWindowImpl"),
        (WindowSort, "SortWindowImpl"),
        (ProcessParallel, "ParallelProcessImpl"),
        (ProcessSerial, "SerialProcessImpl"),
        (OutputImpl, "OutputImpl"),
        (ExchangeHash, "HashExchangeImpl"),
        (ExchangeRange, "RangeExchangeImpl"),
        (ExchangeBroadcast, "BroadcastExchangeImpl"),
        (ExchangeGather, "GatherExchangeImpl"),
    ];
    for (phys, name) in impls {
        b.push(c, name, RuleAction::Impl(phys));
    }
    assert_eq!(b.count_in(c), 32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = build();
        let b = build();
        for (ra, rb) in a.rules().iter().zip(b.rules().iter()) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.category, rb.category);
            assert_eq!(ra.action, rb.action);
        }
    }

    #[test]
    fn complex_kinds_subset_of_all() {
        for k in COMPLEX_KINDS {
            assert!(OpKind::ALL.contains(&k));
        }
    }

    #[test]
    fn padding_markers_have_unique_names() {
        // Guards against the pad loop cycling into duplicate (kind, tier)
        // combinations.
        let cat = build();
        let mut names: Vec<&str> = cat
            .rules()
            .iter()
            .filter(|r| r.name.starts_with("Derive"))
            .map(|r| r.name.as_str())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
