//! Fixed-width bit sets over the optimizer's 256 rules.
//!
//! Both *rule configurations* (Definition 3.1: which rules are enabled) and
//! *rule signatures* (Definition 3.2: which rules contributed to the final
//! plan) are bit vectors over the same rule-id space; [`RuleSet`] is the
//! shared representation.

use std::fmt;

/// Total number of rules in the catalog (matches the paper's SCOPE count).
pub const NUM_RULES: usize = 256;

const WORDS: usize = NUM_RULES / 64;

/// Identifier of a rule: an index in `0..NUM_RULES`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u16);

impl RuleId {
    /// Index into the catalog arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RuleId({})", self.0)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A set of rule ids as a 256-bit vector.
///
/// ```
/// use scope_optimizer::{RuleId, RuleSet};
///
/// let a: RuleSet = [RuleId(1), RuleId(200)].into_iter().collect();
/// let b: RuleSet = [RuleId(200)].into_iter().collect();
/// assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![RuleId(1)]);
/// assert_eq!(RuleSet::from_bit_string(&a.to_bit_string()), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuleSet {
    bits: [u64; WORDS],
}

impl RuleSet {
    /// The empty set.
    pub const EMPTY: RuleSet = RuleSet { bits: [0; WORDS] };

    /// The full set (all 256 rules).
    pub const FULL: RuleSet = RuleSet {
        bits: [u64::MAX; WORDS],
    };

    /// Insert a rule id. Out-of-range ids panic in debug builds.
    #[inline]
    pub fn insert(&mut self, id: RuleId) {
        debug_assert!(id.index() < NUM_RULES);
        self.bits[id.index() / 64] |= 1u64 << (id.index() % 64);
    }

    /// Remove a rule id.
    #[inline]
    pub fn remove(&mut self, id: RuleId) {
        debug_assert!(id.index() < NUM_RULES);
        self.bits[id.index() / 64] &= !(1u64 << (id.index() % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: RuleId) -> bool {
        debug_assert!(id.index() < NUM_RULES);
        self.bits[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    /// Number of rules in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &RuleSet) -> RuleSet {
        let mut out = *self;
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &RuleSet) -> RuleSet {
        let mut out = *self;
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        out
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &RuleSet) -> RuleSet {
        let mut out = *self;
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= !b;
        }
        out
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = RuleId> + '_ {
        (0..WORDS).flat_map(move |w| {
            let mut word = self.bits[w];
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros();
                word &= word - 1;
                Some(RuleId((w * 64) as u16 + bit as u16))
            })
        })
    }

    /// Render as the paper's bit-vector notation (256 chars, rule 0 first).
    pub fn to_bit_string(&self) -> String {
        (0..NUM_RULES)
            .map(|i| {
                if self.contains(RuleId(i as u16)) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// Parse the bit-vector notation produced by [`Self::to_bit_string`].
    /// Shorter strings are zero-extended; characters other than `'1'` are
    /// treated as `0`.
    pub fn from_bit_string(s: &str) -> Self {
        let mut set = Self::EMPTY;
        for (i, c) in s.chars().take(NUM_RULES).enumerate() {
            if c == '1' {
                set.insert(RuleId(i as u16));
            }
        }
        set
    }
}

impl fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RuleSet{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<RuleId> for RuleSet {
    fn from_iter<T: IntoIterator<Item = RuleId>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for id in iter {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RuleSet::EMPTY;
        assert!(s.is_empty());
        s.insert(RuleId(0));
        s.insert(RuleId(63));
        s.insert(RuleId(64));
        s.insert(RuleId(255));
        assert_eq!(s.len(), 4);
        assert!(s.contains(RuleId(63)));
        assert!(!s.contains(RuleId(62)));
        s.remove(RuleId(63));
        assert!(!s.contains(RuleId(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let ids = [5u16, 200, 64, 0, 127, 128];
        let s: RuleSet = ids.iter().map(|&i| RuleId(i)).collect();
        let got: Vec<u16> = s.iter().map(|r| r.0).collect();
        assert_eq!(got, vec![0, 5, 64, 127, 128, 200]);
    }

    #[test]
    fn set_algebra() {
        let a: RuleSet = [RuleId(1), RuleId(2), RuleId(3)].into_iter().collect();
        let b: RuleSet = [RuleId(2), RuleId(3), RuleId(4)].into_iter().collect();
        assert_eq!(a.union(&b).iter().count(), 4);
        assert_eq!(a.intersection(&b).len(), 2);
        let d = a.difference(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![RuleId(1)]);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(RuleSet::FULL.len(), NUM_RULES);
        assert_eq!(RuleSet::EMPTY.len(), 0);
        assert_eq!(RuleSet::FULL.difference(&RuleSet::FULL), RuleSet::EMPTY);
    }

    #[test]
    fn bit_string_roundtrip() {
        let s: RuleSet = [RuleId(0), RuleId(9), RuleId(255)].into_iter().collect();
        let text = s.to_bit_string();
        assert_eq!(text.len(), NUM_RULES);
        assert!(text.starts_with("1000000001"));
        assert!(text.ends_with('1'));
        assert_eq!(RuleSet::from_bit_string(&text), s);
    }

    #[test]
    fn bit_string_partial_parse() {
        let s = RuleSet::from_bit_string("101");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![RuleId(0), RuleId(2)]);
    }
}
