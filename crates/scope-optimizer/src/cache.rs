//! A sharded, thread-safe compile cache keyed by *(plan fingerprint,
//! effective rule configuration)*.
//!
//! Discovery is compile-bound: span approximation (Algorithm 1) recompiles
//! each job up to `MAX_SPAN_ITERATIONS` times and candidate search
//! recompiles M configurations per selected job — and several of those
//! compiles are provably identical (span recovery re-tests the last
//! successful configuration, the default configuration is compiled by both
//! selection and analysis, experiment sweeps replay the same day). The
//! cache returns a shared [`Arc<CompiledPlan>`] for repeated keys instead
//! of rebuilding the memo from scratch.
//!
//! ## Key soundness
//!
//! A compile is a pure function of `(logical plan, observable catalog,
//! rule configuration)`: the search is deterministic, breaks cost ties by
//! insertion order, and never reads ambient state. The key therefore
//! combines
//!
//! * [`plan_catalog_fingerprint`] — a digest of the plan's full value hash
//!   (literals included) and every observable table/column statistic, and
//! * the configuration's enabled [`RuleSet`] — callers must pass the
//!   **effective** configuration (after [`crate::optimizer::effective_config`]
//!   merges customer hints and after required-rule clamping), since that is
//!   what the search actually consumes.
//!
//! Only successful compiles are cached. A [`CompileError`] is returned to
//! the caller and the key stays absent, so transient failures (e.g. a
//! wall-clock budget that fired under load) are retried on the next
//! lookup rather than being replayed as permanent.
//!
//! The only field of a cached [`CompiledPlan`] that is not bit-identical
//! to a fresh compile is `stats.compile_micros`, which reports the wall
//! clock of the *original* compile — by design, so hit latency is not
//! mistaken for compile latency.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use scope_ir::{ObservableCatalog, PlanGraph};

use crate::config::RuleConfig;
use crate::cost::CostModel;
use crate::optimizer::CompiledPlan;
use crate::ruleset::RuleSet;
use crate::search::CompileError;

/// Digest of everything a compile reads besides the rule configuration:
/// the logical plan (literals included) and the observable catalog. Two
/// jobs with equal fingerprints compile identically under equal configs.
pub fn plan_catalog_fingerprint(plan: &PlanGraph, obs: &ObservableCatalog) -> u64 {
    let mut h = DefaultHasher::new();
    // Arena length distinguishes plans that differ only in unreachable
    // nodes (they still shape memo diagnostics).
    plan.len().hash(&mut h);
    plan.plan_hash().hash(&mut h);
    obs.tables.len().hash(&mut h);
    for t in &obs.tables {
        t.rows.hash(&mut h);
        t.row_bytes.hash(&mut h);
        t.name_hash.hash(&mut h);
        t.cols.hash(&mut h);
    }
    obs.columns.len().hash(&mut h);
    for c in &obs.columns {
        c.ndv.hash(&mut h);
        c.domain.hash(&mut h);
    }
    h.finish()
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    enabled: RuleSet,
    /// Digest of the cost model (weights + corrections) the compile ran
    /// under. Plans compiled under different models are different values —
    /// a correction promotion must never serve yesterday's plan bits.
    model: u64,
}

/// One shard: a hash map plus FIFO insertion order for deterministic
/// eviction (no recency clocks — cache behaviour must not depend on
/// thread scheduling).
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Arc<CompiledPlan>>,
    order: VecDeque<CacheKey>,
}

/// One shard plus its statistics, padded to two cache lines so adjacent
/// shards never share a line — false sharing on the lock word would
/// serialize otherwise-independent shards. The counters are per-shard for
/// the same reason: global `AtomicU64`s would be one contended line that
/// every thread's every lookup bounces.
#[repr(align(128))]
#[derive(Default)]
struct PaddedShard {
    inner: Mutex<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    /// Lock acquisitions that found this shard's lock already held.
    contended: AtomicU64,
}

impl PaddedShard {
    /// Lock the shard, counting contention: a failed `try_lock` bumps
    /// `contended` before falling back to the blocking lock, so shard-lock
    /// fights are diagnosable from [`CacheStats::contended`] instead of
    /// showing up only as mysterious throughput loss.
    fn lock(&self) -> std::sync::MutexGuard<'_, Shard> {
        match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock().expect("cache shard poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache shard poisoned"),
        }
    }
}

/// Point-in-time counters for a [`CompileCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real compile.
    pub misses: u64,
    /// Successful compiles stored.
    pub insertions: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Shard-lock acquisitions that found the lock already held (each is a
    /// failed `try_lock` that fell back to blocking). Sustained growth
    /// under a parallel discovery run means threads are fighting over
    /// shards — the first thing to check when BENCH_discovery throughput
    /// stops scaling.
    pub contended: u64,
    /// Entries resident right now.
    pub entries: usize,
    /// Maximum entries the cache will hold.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas accumulated since an earlier snapshot (`entries` and
    /// `capacity` stay absolute — they are gauges, not counters).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            contended: self.contended - earlier.contended,
            entries: self.entries,
            capacity: self.capacity,
        }
    }
}

/// Maximum shard count; small caches use fewer shards so the capacity
/// bound stays exact.
const MAX_SHARDS: usize = 16;

/// A bounded, sharded, thread-safe map from *(plan fingerprint, effective
/// config)* to [`Arc<CompiledPlan>`]. Capacity `0` disables caching
/// entirely (every lookup is a miss and nothing is stored).
pub struct CompileCache {
    shards: Vec<PaddedShard>,
    /// Per-shard capacities; they sum to the requested total.
    shard_caps: Vec<usize>,
    capacity: usize,
}

impl CompileCache {
    /// A cache holding at most `capacity` compiled plans.
    pub fn new(capacity: usize) -> CompileCache {
        let n_shards = capacity.clamp(1, MAX_SHARDS);
        let base = capacity / n_shards;
        let extra = capacity % n_shards;
        CompileCache {
            shards: (0..n_shards).map(|_| PaddedShard::default()).collect(),
            shard_caps: (0..n_shards)
                .map(|i| base + usize::from(i < extra))
                .collect(),
            capacity,
        }
    }

    /// A cache that never hits (capacity 0) — the serial-baseline control.
    pub fn disabled() -> CompileCache {
        CompileCache::new(0)
    }

    /// Total entries the cache may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look a compiled plan up without compiling. Counts a hit or a miss.
    pub fn lookup(&self, fingerprint: u64, config: &RuleConfig) -> Option<Arc<CompiledPlan>> {
        self.lookup_with_model(fingerprint, config, &CostModel::DEFAULT)
    }

    /// [`CompileCache::lookup`] for a compile parameterized by a non-default
    /// cost model.
    pub fn lookup_with_model(
        &self,
        fingerprint: u64,
        config: &RuleConfig,
        model: &CostModel,
    ) -> Option<Arc<CompiledPlan>> {
        if self.capacity == 0 {
            self.shards[0].misses.fetch_add(1, Ordering::Relaxed);
            scope_trace::count(scope_trace::Counter::CacheMiss, 1);
            return None;
        }
        let key = CacheKey {
            fingerprint,
            enabled: *config.enabled(),
            model: model.fingerprint_bits(),
        };
        let padded = &self.shards[self.shard_of(&key)];
        let shard = padded.lock();
        match shard.map.get(&key) {
            Some(hit) => {
                padded.hits.fetch_add(1, Ordering::Relaxed);
                scope_trace::count(scope_trace::Counter::CacheHit, 1);
                Some(Arc::clone(hit))
            }
            None => {
                padded.misses.fetch_add(1, Ordering::Relaxed);
                scope_trace::count(scope_trace::Counter::CacheMiss, 1);
                None
            }
        }
    }

    /// Store a compiled plan, evicting the oldest entry of the shard when
    /// full. Racing inserts of the same key keep the first-stored value so
    /// every subsequent hit returns one consistent `Arc`.
    pub fn insert(&self, fingerprint: u64, config: &RuleConfig, plan: Arc<CompiledPlan>) {
        self.insert_with_model(fingerprint, config, &CostModel::DEFAULT, plan);
    }

    /// [`CompileCache::insert`] under a non-default cost model.
    pub fn insert_with_model(
        &self,
        fingerprint: u64,
        config: &RuleConfig,
        model: &CostModel,
        plan: Arc<CompiledPlan>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = CacheKey {
            fingerprint,
            enabled: *config.enabled(),
            model: model.fingerprint_bits(),
        };
        let idx = self.shard_of(&key);
        let cap = self.shard_caps[idx];
        if cap == 0 {
            return;
        }
        let padded = &self.shards[idx];
        let mut shard = padded.lock();
        if shard.map.contains_key(&key) {
            return;
        }
        while shard.map.len() >= cap {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            shard.map.remove(&oldest);
            padded.evictions.fetch_add(1, Ordering::Relaxed);
            scope_trace::count(scope_trace::Counter::CacheEviction, 1);
        }
        shard.map.insert(key, plan);
        shard.order.push_back(key);
        padded.insertions.fetch_add(1, Ordering::Relaxed);
        scope_trace::count(scope_trace::Counter::CacheInsert, 1);
    }

    /// The memoizing entry point: return the cached plan for the key or
    /// run `compile`, caching its result on success. Errors are *never*
    /// cached — the next lookup for the key compiles again.
    ///
    /// The compile closure runs outside the shard lock, so concurrent
    /// misses on one key may compile redundantly (both results are
    /// bit-identical; the first insert wins). That is the right trade:
    /// holding a shard lock across a multi-millisecond compile would
    /// serialize exactly the workload this cache exists to parallelize.
    pub fn get_or_compile<F>(
        &self,
        fingerprint: u64,
        config: &RuleConfig,
        compile: F,
    ) -> Result<Arc<CompiledPlan>, CompileError>
    where
        F: FnOnce() -> Result<CompiledPlan, CompileError>,
    {
        self.get_or_compile_with_model(fingerprint, config, &CostModel::DEFAULT, compile)
    }

    /// [`CompileCache::get_or_compile`] keyed additionally by the cost
    /// model, for compiles whose `compile` closure runs under it.
    pub fn get_or_compile_with_model<F>(
        &self,
        fingerprint: u64,
        config: &RuleConfig,
        model: &CostModel,
        compile: F,
    ) -> Result<Arc<CompiledPlan>, CompileError>
    where
        F: FnOnce() -> Result<CompiledPlan, CompileError>,
    {
        // Hit/miss path latencies, recorded only while the tracer runs (the
        // clock read is behind the enabled gate).
        let timed = scope_trace::enabled().then(std::time::Instant::now);
        if let Some(hit) = self.lookup_with_model(fingerprint, config, model) {
            if let Some(t) = timed {
                scope_trace::record(
                    scope_trace::Histogram::CacheHitMicros,
                    t.elapsed().as_micros() as u64,
                );
            }
            return Ok(hit);
        }
        let compiled = Arc::new(compile()?);
        self.insert_with_model(fingerprint, config, model, Arc::clone(&compiled));
        if let Some(t) = timed {
            scope_trace::record(
                scope_trace::Histogram::CacheMissMicros,
                t.elapsed().as_micros() as u64,
            );
        }
        Ok(compiled)
    }

    /// Snapshot the counters (summed across shards).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            capacity: self.capacity,
            ..CacheStats::default()
        };
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.insertions += shard.insertions.load(Ordering::Relaxed);
            stats.evictions += shard.evictions.load(Ordering::Relaxed);
            stats.contended += shard.contended.load(Ordering::Relaxed);
            stats.entries += shard.lock().map.len();
        }
        stats
    }
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::compile;
    use scope_ir::ids::{DomainId, TableId};
    use scope_ir::{LogicalOp, TrueCatalog};

    fn tiny_job() -> (PlanGraph, ObservableCatalog) {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(100, 0.0, DomainId(0));
        cat.add_table(1_000_000, 100, 7, vec![col]);
        let mut plan = PlanGraph::new();
        let scan = plan.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let out = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![scan]);
        plan.set_root(out);
        (plan, cat.observe())
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::new(8);
        let fp = plan_catalog_fingerprint(&plan, &obs);
        let cfg = RuleConfig::default_config();
        let a = cache
            .get_or_compile(fp, &cfg, || compile(&plan, &obs, &cfg))
            .unwrap();
        let b = cache
            .get_or_compile(fp, &cfg, || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::disabled();
        let fp = plan_catalog_fingerprint(&plan, &obs);
        let cfg = RuleConfig::default_config();
        for _ in 0..3 {
            cache
                .get_or_compile(fp, &cfg, || compile(&plan, &obs, &cfg))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 3);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn capacity_is_a_hard_bound_with_fifo_eviction() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::new(4);
        let cfg = RuleConfig::default_config();
        for fp in 0..32u64 {
            cache
                .get_or_compile(fp, &cfg, || compile(&plan, &obs, &cfg))
                .unwrap();
        }
        let s = cache.stats();
        assert!(s.entries <= 4, "over capacity: {}", s.entries);
        assert_eq!(s.insertions, 32);
        assert_eq!(s.evictions, 32 - s.entries as u64);
    }

    #[test]
    fn fingerprint_separates_literals_and_catalogs() {
        let (plan, obs) = tiny_job();
        let fp = plan_catalog_fingerprint(&plan, &obs);
        // Different catalog stats ⇒ different fingerprint.
        let mut cat2 = TrueCatalog::new();
        let col = cat2.add_column(100, 0.0, DomainId(0));
        cat2.add_table(2_000_000, 100, 7, vec![col]);
        assert_ne!(fp, plan_catalog_fingerprint(&plan, &cat2.observe()));
        // Same inputs ⇒ same fingerprint.
        assert_eq!(fp, plan_catalog_fingerprint(&plan, &obs));
    }

    #[test]
    fn contention_counter_stays_quiet_single_threaded() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::new(8);
        let cfg = RuleConfig::default_config();
        let fp = plan_catalog_fingerprint(&plan, &obs);
        cache
            .get_or_compile(fp, &cfg, || compile(&plan, &obs, &cfg))
            .unwrap();
        cache
            .get_or_compile(fp, &cfg, || panic!("must hit"))
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.contended, 0, "no lock fight on one thread");
        assert_eq!(s.since(&CacheStats::default()).contended, 0);
    }

    #[test]
    fn distinct_cost_models_do_not_share_entries() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::new(8);
        let cfg = RuleConfig::default_config();
        let fp = plan_catalog_fingerprint(&plan, &obs);
        cache
            .get_or_compile(fp, &cfg, || compile(&plan, &obs, &cfg))
            .unwrap();
        // A non-default model must not be served the default-model plan.
        let skewed = CostModel {
            weights: crate::cost::CostWeights {
                io: 4.0,
                ..crate::cost::CostWeights::DEFAULT
            },
            ..CostModel::DEFAULT
        };
        let mut recompiled = false;
        cache
            .get_or_compile_with_model(fp, &cfg, &skewed, || {
                recompiled = true;
                compile(&plan, &obs, &cfg)
            })
            .unwrap();
        assert!(recompiled, "model digest missing from the cache key");
        // But the same model keyed twice hits.
        cache
            .get_or_compile_with_model(fp, &cfg, &skewed, || panic!("must hit"))
            .unwrap();
    }

    #[test]
    fn errors_are_not_cached() {
        let (plan, obs) = tiny_job();
        let cache = CompileCache::new(8);
        let cfg = RuleConfig::default_config();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.get_or_compile(7, &cfg, || {
                calls += 1;
                Err(CompileError::NoExchangeImplementation)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 2, "a cached error would skip the second compile");
        assert_eq!(cache.stats().entries, 0);
        // The key still caches fine once a compile succeeds.
        cache
            .get_or_compile(7, &cfg, || compile(&plan, &obs, &cfg))
            .unwrap();
        cache
            .get_or_compile(7, &cfg, || panic!("must hit"))
            .unwrap();
    }
}
