//! Interpretation of transformation-rule families on the memo.
//!
//! [`apply_rule`] pattern-matches a rule against one memo expression (using
//! canonical child expressions, as classic Cascades implementations do for
//! cheap binding) and inserts the rewritten alternatives. Sub-expressions
//! created along the way get their own (new or deduplicated) groups; the
//! top-level result is inserted as an alternative of the matched
//! expression's group.

use std::collections::BTreeSet;

use scope_ir::ids::ColId;
use scope_ir::{JoinKind, LogicalOp, OpKind, PredAtom, Predicate};

use crate::estimate::Estimator;
use crate::memo::{GroupId, Inserted, MExprId, Memo};
use crate::rules::{AtomOrder, Rule, RuleAction};
use crate::ruleset::RuleId;

/// Shared context for transformations.
pub struct TransformCtx<'a> {
    pub est: &'a Estimator<'a>,
    /// Every column referenced anywhere in the original query — the safe
    /// retention set for pruning projections.
    pub referenced: &'a BTreeSet<ColId>,
}

/// Columns referenced by an operator (keys, predicate atoms, projections,
/// aggregate arguments).
pub fn referenced_cols(op: &LogicalOp, out: &mut BTreeSet<ColId>) {
    match op {
        LogicalOp::Get { .. }
        | LogicalOp::UnionAll
        | LogicalOp::VirtualDataset
        | LogicalOp::Output { .. }
        | LogicalOp::Process { .. }
        | LogicalOp::Top { .. } => {}
        LogicalOp::RangeGet { pushed, .. } => {
            out.extend(pushed.atoms.iter().map(|a| a.col));
        }
        LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
            out.extend(predicate.atoms.iter().map(|a| a.col));
        }
        LogicalOp::Project { cols, .. } => out.extend(cols.iter().copied()),
        LogicalOp::Join { keys, .. } => {
            for &(l, r) in keys {
                out.insert(l);
                out.insert(r);
            }
        }
        LogicalOp::GroupBy { keys, aggs, .. } => {
            out.extend(keys.iter().copied());
            for agg in aggs {
                match agg {
                    scope_ir::AggFunc::Count => {}
                    scope_ir::AggFunc::Sum(c)
                    | scope_ir::AggFunc::Min(c)
                    | scope_ir::AggFunc::Max(c)
                    | scope_ir::AggFunc::Avg(c) => {
                        out.insert(*c);
                    }
                }
            }
        }
        LogicalOp::Sort { keys } | LogicalOp::Window { keys } => out.extend(keys.iter().copied()),
    }
}

/// Budget headroom a single rewrite may consume (sub-expressions plus the
/// alternative itself; bounded by union arity which the workload caps).
const REWRITE_MARGIN: usize = 64;

/// Apply `rule` to `expr_id`; returns how many new expressions were added.
pub fn apply_rule(rule: &Rule, expr_id: MExprId, memo: &mut Memo, ctx: &TransformCtx<'_>) -> usize {
    if memo.num_exprs() + REWRITE_MARGIN >= crate::memo::MAX_TOTAL_EXPRS {
        return 0;
    }
    let rewriter = Rewriter {
        rule_id: rule.id,
        expr_id,
        ctx,
    };
    rewriter.dispatch(&rule.action, memo)
}

struct Rewriter<'a, 'b> {
    rule_id: RuleId,
    expr_id: MExprId,
    ctx: &'a TransformCtx<'b>,
}

impl Rewriter<'_, '_> {
    /// Insert a sub-expression (own group) created by this rule.
    /// `apply_rule` guarantees a budget margin, so this cannot fail.
    fn sub(&self, memo: &mut Memo, op: LogicalOp, children: Vec<GroupId>) -> GroupId {
        match memo.insert(op, children, None, Some(self.rule_id), self.ctx.est) {
            Inserted::New(e) | Inserted::Duplicate(e) => memo.expr(e).group,
            Inserted::Budget => unreachable!("apply_rule reserves budget margin"),
        }
    }

    /// Insert an alternative into the matched expression's group.
    fn alt(&self, memo: &mut Memo, op: LogicalOp, children: Vec<GroupId>) -> usize {
        let target = memo.expr(self.expr_id).group;
        match memo.insert(op, children, Some(target), Some(self.rule_id), self.ctx.est) {
            Inserted::New(_) => 1,
            _ => 0,
        }
    }

    fn dispatch(&self, action: &RuleAction, memo: &mut Memo) -> usize {
        use RuleAction::*;
        let expr = memo.expr(self.expr_id).clone();
        match action {
            CollapseFilters => self.collapse_filters(memo, &expr),
            DropTrueFilter => self.drop_true_filter(memo, &expr),
            FilterIntoScan => self.filter_into_scan(memo, &expr),
            FilterBelow { kind, eq_only } => self.filter_below(memo, &expr, *kind, *eq_only),
            ReorderAtoms(order) => self.reorder_atoms(memo, &expr, *order),
            MergeProjects => self.merge_projects(memo, &expr),
            ProjectBelow(kind) => self.project_below(memo, &expr, *kind),
            PruneBelow { kind, eager } => self.prune_below(memo, &expr, *kind, *eager),
            JoinCommute { guarded } => self.join_commute(memo, &expr, *guarded),
            JoinAssoc { right, guarded } => self.join_assoc(memo, &expr, *right, *guarded),
            JoinOnUnion { max_arity, left } => {
                self.join_on_union(memo, &expr, *max_arity as usize, *left)
            }
            GroupByOnJoin { variant } => self.groupby_on_join(memo, &expr, *variant),
            GroupByBelowUnion { variant } => self.groupby_below_union(memo, &expr, *variant),
            SplitGroupBy { variant } => self.split_groupby(memo, &expr, *variant),
            UnionFlatten { deep } => self.union_flatten(memo, &expr, *deep),
            ProcessBelowUnion { .. } => self.process_below_union(memo, &expr),
            TopBelowUnion { .. } => self.top_below_union(memo, &expr),
            SwapUnary { parent, child, .. } => self.swap_unary(memo, &expr, *parent, *child),
            NormalizeReduce { variant } => self.normalize_reduce(memo, &expr, *variant),
            EliminateIdentity(kind) => self.eliminate_identity(memo, &expr, *kind),
            CollapseSame(kind) => self.collapse_same(memo, &expr, *kind),
            // Normalizers, markers, and implementation rules are handled
            // elsewhere.
            _ => 0,
        }
    }

    // ---- Filter rewrites -------------------------------------------------

    fn collapse_filters(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Filter { predicate: p_up } = &expr.op else {
            return 0;
        };
        let child = memo.canonical(expr.children[0]).clone();
        let LogicalOp::Filter { predicate: p_down } = &child.op else {
            return 0;
        };
        let merged = p_up.clone().and(p_down.clone());
        self.alt(
            memo,
            LogicalOp::Filter { predicate: merged },
            child.children.clone(),
        )
    }

    fn drop_true_filter(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Filter { predicate } = &expr.op else {
            return 0;
        };
        if !predicate.is_true() {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        self.alt(memo, child.op, child.children)
    }

    fn filter_into_scan(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Filter { predicate } = &expr.op else {
            return 0;
        };
        if predicate.is_true() {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        let LogicalOp::RangeGet { table, pushed } = &child.op else {
            return 0;
        };
        let merged = pushed.clone().and(predicate.clone());
        self.alt(
            memo,
            LogicalOp::RangeGet {
                table: *table,
                pushed: merged,
            },
            vec![],
        )
    }

    fn filter_below(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind, eq_only: bool) -> usize {
        let LogicalOp::Filter { predicate } = &expr.op else {
            return 0;
        };
        if predicate.is_true() {
            return 0;
        }
        let child_group = expr.children[0];
        let child = memo.canonical(child_group).clone();
        if child.op.kind() != kind {
            return 0;
        }
        // Partition atoms into pushable and residual.
        let (pushable, residual): (Vec<PredAtom>, Vec<PredAtom>) = predicate
            .atoms
            .iter()
            .cloned()
            .partition(|a| !eq_only || a.op == scope_ir::CmpOp::Eq);
        if pushable.is_empty() {
            return 0;
        }
        match &child.op {
            LogicalOp::Project { .. }
            | LogicalOp::Sort { .. }
            | LogicalOp::Window { .. }
            | LogicalOp::Top { .. }
            | LogicalOp::Process { .. } => {
                // Single push below a unary operator.
                let below = self.sub(
                    memo,
                    LogicalOp::Filter {
                        predicate: Predicate { atoms: pushable },
                    },
                    vec![child.children[0]],
                );
                let inner = self.sub(memo, child.op.clone(), vec![below]);
                self.wrap_residual(memo, inner, residual)
            }
            LogicalOp::UnionAll | LogicalOp::VirtualDataset => {
                let pred = Predicate { atoms: pushable };
                let mut pushed_children = Vec::with_capacity(child.children.len());
                for &g in &child.children {
                    pushed_children.push(self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: pred.clone(),
                        },
                        vec![g],
                    ));
                }
                let inner = self.sub(memo, child.op.clone(), pushed_children);
                self.wrap_residual(memo, inner, residual)
            }
            LogicalOp::Join { kind: jk, keys } => {
                let l_cols: BTreeSet<ColId> = memo
                    .group(child.children[0])
                    .est
                    .cols
                    .iter()
                    .copied()
                    .collect();
                let r_cols: BTreeSet<ColId> = memo
                    .group(child.children[1])
                    .est
                    .cols
                    .iter()
                    .copied()
                    .collect();
                let mut l_atoms = Vec::new();
                let mut r_atoms = Vec::new();
                let mut rest = residual;
                for atom in pushable {
                    if l_cols.contains(&atom.col) {
                        l_atoms.push(atom);
                    } else if r_cols.contains(&atom.col) {
                        r_atoms.push(atom);
                    } else {
                        rest.push(atom);
                    }
                }
                if l_atoms.is_empty() && r_atoms.is_empty() {
                    return 0;
                }
                let mut lg = child.children[0];
                let mut rg = child.children[1];
                if !l_atoms.is_empty() {
                    lg = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: l_atoms },
                        },
                        vec![lg],
                    );
                }
                if !r_atoms.is_empty() {
                    rg = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: r_atoms },
                        },
                        vec![rg],
                    );
                }
                let inner = self.sub(
                    memo,
                    LogicalOp::Join {
                        kind: *jk,
                        keys: keys.clone(),
                    },
                    vec![lg, rg],
                );
                self.wrap_residual(memo, inner, rest)
            }
            LogicalOp::GroupBy { keys, .. } => {
                let key_set: BTreeSet<ColId> = keys.iter().copied().collect();
                let (on_keys, rest): (Vec<PredAtom>, Vec<PredAtom>) =
                    pushable.into_iter().partition(|a| key_set.contains(&a.col));
                if on_keys.is_empty() {
                    return 0;
                }
                let below = self.sub(
                    memo,
                    LogicalOp::Filter {
                        predicate: Predicate { atoms: on_keys },
                    },
                    vec![child.children[0]],
                );
                let inner = self.sub(memo, child.op.clone(), vec![below]);
                let mut all_rest = residual;
                all_rest.extend(rest);
                self.wrap_residual(memo, inner, all_rest)
            }
            _ => 0,
        }
    }

    /// Wrap residual atoms (if any) above `inner` and insert as an
    /// alternative of the matched group.
    fn wrap_residual(&self, memo: &mut Memo, inner: GroupId, residual: Vec<PredAtom>) -> usize {
        if residual.is_empty() {
            let canon = memo.canonical(inner).clone();
            self.alt(memo, canon.op, canon.children)
        } else {
            self.alt(
                memo,
                LogicalOp::Filter {
                    predicate: Predicate { atoms: residual },
                },
                vec![inner],
            )
        }
    }

    fn reorder_atoms(&self, memo: &mut Memo, expr: &ExprView, order: AtomOrder) -> usize {
        let LogicalOp::Filter { predicate } = &expr.op else {
            return 0;
        };
        if predicate.len() < 2 {
            return 0;
        }
        let mut atoms = predicate.atoms.clone();
        // total_cmp: selectivities are estimator outputs in [0, 1], but a
        // NaN estimate must reorder deterministically, never panic a rule.
        match order {
            AtomOrder::SelAsc => atoms.sort_by(|a, b| {
                self.ctx
                    .est
                    .atom_selectivity(a)
                    .total_cmp(&self.ctx.est.atom_selectivity(b))
            }),
            AtomOrder::SelDesc => atoms.sort_by(|a, b| {
                self.ctx
                    .est
                    .atom_selectivity(b)
                    .total_cmp(&self.ctx.est.atom_selectivity(a))
            }),
            AtomOrder::EqFirst => atoms.sort_by_key(|a| match a.op {
                scope_ir::CmpOp::Eq => 0u8,
                scope_ir::CmpOp::Between | scope_ir::CmpOp::Range => 1,
                _ => 2,
            }),
            AtomOrder::ByCol => atoms.sort_by_key(|a| a.col),
        }
        if atoms == predicate.atoms {
            return 0;
        }
        self.alt(
            memo,
            LogicalOp::Filter {
                predicate: Predicate { atoms },
            },
            expr.children.clone(),
        )
    }

    // ---- Project rewrites ------------------------------------------------

    fn merge_projects(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Project { cols, computed } = &expr.op else {
            return 0;
        };
        let child = memo.canonical(expr.children[0]).clone();
        let LogicalOp::Project { computed: c2, .. } = &child.op else {
            return 0;
        };
        self.alt(
            memo,
            LogicalOp::Project {
                cols: cols.clone(),
                computed: computed.saturating_add(*c2),
            },
            child.children.clone(),
        )
    }

    fn project_below(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
        let LogicalOp::Project { cols, computed } = &expr.op else {
            return 0;
        };
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != kind {
            return 0;
        }
        match &child.op {
            LogicalOp::UnionAll => {
                let mut pushed = Vec::with_capacity(child.children.len());
                for &g in &child.children {
                    pushed.push(self.sub(
                        memo,
                        LogicalOp::Project {
                            cols: cols.clone(),
                            computed: *computed,
                        },
                        vec![g],
                    ));
                }
                self.alt(memo, LogicalOp::UnionAll, pushed)
            }
            LogicalOp::Join { kind: jk, keys } => {
                if *computed > 0 {
                    return 0;
                }
                let mut need: BTreeSet<ColId> = cols.iter().copied().collect();
                for &(l, r) in keys {
                    need.insert(l);
                    need.insert(r);
                }
                let narrow = |memo: &mut Memo, g: GroupId, this: &Self| -> GroupId {
                    let avail: Vec<ColId> = memo.group(g).est.cols.clone();
                    let kept: Vec<ColId> =
                        avail.iter().copied().filter(|c| need.contains(c)).collect();
                    if kept.len() == avail.len() || kept.is_empty() {
                        g
                    } else {
                        this.sub(
                            memo,
                            LogicalOp::Project {
                                cols: kept,
                                computed: 0,
                            },
                            vec![g],
                        )
                    }
                };
                let lg = narrow(memo, child.children[0], self);
                let rg = narrow(memo, child.children[1], self);
                if lg == child.children[0] && rg == child.children[1] {
                    return 0;
                }
                let inner = self.sub(
                    memo,
                    LogicalOp::Join {
                        kind: *jk,
                        keys: keys.clone(),
                    },
                    vec![lg, rg],
                );
                self.alt(
                    memo,
                    LogicalOp::Project {
                        cols: cols.clone(),
                        computed: 0,
                    },
                    vec![inner],
                )
            }
            LogicalOp::Sort { keys } | LogicalOp::Window { keys } => {
                let mut kept: Vec<ColId> = cols.clone();
                for &k in keys {
                    if !kept.contains(&k) {
                        kept.push(k);
                    }
                }
                let below = self.sub(
                    memo,
                    LogicalOp::Project {
                        cols: kept,
                        computed: *computed,
                    },
                    vec![child.children[0]],
                );
                self.alt(memo, child.op.clone(), vec![below])
            }
            LogicalOp::Filter { predicate } => {
                let covered = predicate.atoms.iter().all(|a| cols.contains(&a.col));
                if !covered {
                    return 0;
                }
                let below = self.sub(
                    memo,
                    LogicalOp::Project {
                        cols: cols.clone(),
                        computed: *computed,
                    },
                    vec![child.children[0]],
                );
                self.alt(
                    memo,
                    LogicalOp::Filter {
                        predicate: predicate.clone(),
                    },
                    vec![below],
                )
            }
            LogicalOp::Top { k } => {
                let below = self.sub(
                    memo,
                    LogicalOp::Project {
                        cols: cols.clone(),
                        computed: *computed,
                    },
                    vec![child.children[0]],
                );
                self.alt(memo, LogicalOp::Top { k: *k }, vec![below])
            }
            _ => 0,
        }
    }

    fn prune_below(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind, eager: bool) -> usize {
        if expr.op.kind() != kind {
            return 0;
        }
        let min_drop = if eager { 1 } else { 4 };
        let mut changed = false;
        let mut new_children = expr.children.clone();
        for slot in &mut new_children {
            let g = *slot;
            let canon_kind = memo.canonical(g).op.kind();
            if canon_kind == OpKind::Project {
                continue; // already narrowed
            }
            let avail: Vec<ColId> = memo.group(g).est.cols.clone();
            let kept: Vec<ColId> = avail
                .iter()
                .copied()
                .filter(|c| self.ctx.referenced.contains(c))
                .collect();
            if kept.is_empty() || avail.len() - kept.len() < min_drop {
                continue;
            }
            *slot = self.sub(
                memo,
                LogicalOp::Project {
                    cols: kept,
                    computed: 0,
                },
                vec![g],
            );
            changed = true;
        }
        if !changed {
            return 0;
        }
        self.alt(memo, expr.op.clone(), new_children)
    }

    // ---- Join rewrites ---------------------------------------------------

    fn join_commute(&self, memo: &mut Memo, expr: &ExprView, guarded: bool) -> usize {
        let LogicalOp::Join { kind, keys } = &expr.op else {
            return 0;
        };
        if *kind != JoinKind::Inner {
            return 0;
        }
        if guarded {
            let l = memo.group(expr.children[0]).est.rows;
            let r = memo.group(expr.children[1]).est.rows;
            // Guarded commute only fires to move the smaller input right.
            if r <= l {
                return 0;
            }
        }
        let swapped: Vec<(ColId, ColId)> = keys.iter().map(|&(l, r)| (r, l)).collect();
        self.alt(
            memo,
            LogicalOp::Join {
                kind: *kind,
                keys: swapped,
            },
            vec![expr.children[1], expr.children[0]],
        )
    }

    fn join_assoc(&self, memo: &mut Memo, expr: &ExprView, right: bool, guarded: bool) -> usize {
        let LogicalOp::Join { kind, keys } = &expr.op else {
            return 0;
        };
        if *kind != JoinKind::Inner {
            return 0;
        }
        let (outer_idx, inner_idx) = if right { (1, 0) } else { (0, 1) };
        let nested = memo.canonical(expr.children[outer_idx]).clone();
        let LogicalOp::Join {
            kind: k2,
            keys: keys2,
        } = &nested.op
        else {
            return 0;
        };
        if *k2 != JoinKind::Inner {
            return 0;
        }
        // (A ⋈k2 B) ⋈k1 C  →  A ⋈k2' (B ⋈k1 C)  when k1's outer-side
        // columns all come from B.
        let a = nested.children[0];
        let b = nested.children[1];
        let c = expr.children[inner_idx];
        let b_cols: BTreeSet<ColId> = memo.group(b).est.cols.iter().copied().collect();
        let outer_key_ok = keys.iter().all(|&(l, r)| {
            let outer_col = if right { r } else { l };
            b_cols.contains(&outer_col)
        });
        if !outer_key_ok {
            return 0;
        }
        let inner_keys: Vec<(ColId, ColId)> = if right {
            keys.iter().map(|&(l, r)| (r, l)).collect()
        } else {
            keys.clone()
        };
        let new_inner = self.sub(
            memo,
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: inner_keys,
            },
            vec![b, c],
        );
        if guarded {
            let before = memo.group(expr.children[outer_idx]).est.rows;
            let after = memo.group(new_inner).est.rows;
            if after >= before {
                return 0;
            }
        }
        self.alt(
            memo,
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: keys2.clone(),
            },
            vec![a, new_inner],
        )
    }

    fn join_on_union(
        &self,
        memo: &mut Memo,
        expr: &ExprView,
        max_arity: usize,
        left: bool,
    ) -> usize {
        let LogicalOp::Join { kind, keys } = &expr.op else {
            return 0;
        };
        if *kind != JoinKind::Inner {
            return 0;
        }
        let (union_side, other_side) = if left {
            (expr.children[0], expr.children[1])
        } else {
            (expr.children[1], expr.children[0])
        };
        let union = memo.canonical(union_side).clone();
        if union.op.kind() != OpKind::UnionAll || union.children.len() > max_arity {
            return 0;
        }
        let mut joined = Vec::with_capacity(union.children.len());
        for &branch in &union.children {
            let (lg, rg) = if left {
                (branch, other_side)
            } else {
                (other_side, branch)
            };
            joined.push(self.sub(
                memo,
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    keys: keys.clone(),
                },
                vec![lg, rg],
            ));
        }
        self.alt(memo, LogicalOp::UnionAll, joined)
    }

    // ---- Aggregation rewrites ---------------------------------------------

    fn groupby_on_join(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
        let LogicalOp::GroupBy {
            keys,
            aggs,
            partial,
        } = &expr.op
        else {
            return 0;
        };
        if *partial {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        let LogicalOp::Join {
            kind: jk,
            keys: jkeys,
        } = &child.op
        else {
            return 0;
        };
        let side = (variant % 2) as usize; // variants alternate push side
        let side_group = child.children[side];
        let side_cols: BTreeSet<ColId> = memo.group(side_group).est.cols.iter().copied().collect();
        if !keys.iter().all(|k| side_cols.contains(k)) {
            return 0;
        }
        // Partial-aggregate the chosen side on (group keys ∪ join keys).
        let mut pkeys = keys.clone();
        for &(l, r) in jkeys {
            let jc = if side == 0 { l } else { r };
            if side_cols.contains(&jc) && !pkeys.contains(&jc) {
                pkeys.push(jc);
            }
        }
        // Higher variants fire unconditionally; low variants require a
        // plausibly-reducing aggregation.
        if variant < 2 {
            let rows = memo.group(side_group).est.rows;
            if rows < 10_000.0 {
                return 0;
            }
        }
        let partial_agg = self.sub(
            memo,
            LogicalOp::GroupBy {
                keys: pkeys,
                aggs: aggs.clone(),
                partial: true,
            },
            vec![side_group],
        );
        let mut join_children = child.children.clone();
        join_children[side] = partial_agg;
        let new_join = self.sub(
            memo,
            LogicalOp::Join {
                kind: *jk,
                keys: jkeys.clone(),
            },
            vec![join_children[0], join_children[1]],
        );
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys: keys.clone(),
                aggs: aggs.clone(),
                partial: false,
            },
            vec![new_join],
        )
    }

    fn groupby_below_union(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
        let LogicalOp::GroupBy {
            keys,
            aggs,
            partial,
        } = &expr.op
        else {
            return 0;
        };
        if *partial {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != OpKind::UnionAll {
            return 0;
        }
        // Variant 0 requires a reducing aggregation estimate; higher
        // variants fire more eagerly.
        if variant == 0 && memo.group(expr.children[0]).est.rows < 10_000.0 {
            return 0;
        }
        let mut partials = Vec::with_capacity(child.children.len());
        for &branch in &child.children {
            partials.push(self.sub(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: true,
                },
                vec![branch],
            ));
        }
        let new_union = self.sub(memo, LogicalOp::UnionAll, partials);
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys: keys.clone(),
                aggs: aggs.clone(),
                partial: false,
            },
            vec![new_union],
        )
    }

    fn split_groupby(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
        let LogicalOp::GroupBy {
            keys,
            aggs,
            partial,
        } = &expr.op
        else {
            return 0;
        };
        if *partial || keys.is_empty() {
            return 0;
        }
        let child_rows = memo.group(expr.children[0]).est.rows;
        let threshold = match variant {
            0 => 100_000.0,
            1 => 10_000.0,
            _ => 0.0, // aggressive variants always fire
        };
        if child_rows < threshold {
            return 0;
        }
        // Avoid re-splitting an already-split aggregation.
        if memo.canonical(expr.children[0]).op.kind() == OpKind::GroupBy {
            return 0;
        }
        let partial_agg = self.sub(
            memo,
            LogicalOp::GroupBy {
                keys: keys.clone(),
                aggs: aggs.clone(),
                partial: true,
            },
            vec![expr.children[0]],
        );
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys: keys.clone(),
                aggs: aggs.clone(),
                partial: false,
            },
            vec![partial_agg],
        )
    }

    fn normalize_reduce(&self, memo: &mut Memo, expr: &ExprView, variant: u8) -> usize {
        let LogicalOp::GroupBy {
            keys,
            aggs,
            partial,
        } = &expr.op
        else {
            return 0;
        };
        if keys.len() < 2 {
            return 0;
        }
        let mut sorted = keys.clone();
        match variant {
            0 => sorted.sort_unstable(),
            1 => sorted.sort_unstable_by(|a, b| b.cmp(a)),
            _ => sorted.sort_by_key(|c| self.ctx.est.observed().col_ndv(*c)),
        }
        if sorted == *keys {
            return 0;
        }
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys: sorted,
                aggs: aggs.clone(),
                partial: *partial,
            },
            expr.children.clone(),
        )
    }

    // ---- Union / process / top rewrites -----------------------------------

    fn union_flatten(&self, memo: &mut Memo, expr: &ExprView, deep: bool) -> usize {
        if expr.op.kind() != OpKind::UnionAll {
            return 0;
        }
        let mut flat: Vec<GroupId> = Vec::new();
        let mut changed = false;
        let mut stack: Vec<(GroupId, usize)> = expr.children.iter().map(|&g| (g, 0)).collect();
        stack.reverse();
        while let Some((g, depth)) = stack.pop() {
            let canon = memo.canonical(g);
            let is_union = canon.op.kind() == OpKind::UnionAll;
            let may_recurse = depth == 0 || deep;
            if is_union && may_recurse {
                changed = true;
                let children = canon.children.clone();
                for &c in children.iter().rev() {
                    stack.push((c, depth + 1));
                }
            } else {
                flat.push(g);
            }
        }
        if !changed || flat.len() < 2 {
            return 0;
        }
        self.alt(memo, LogicalOp::UnionAll, flat)
    }

    fn process_below_union(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Process { udo } = &expr.op else {
            return 0;
        };
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != OpKind::UnionAll {
            return 0;
        }
        let mut pushed = Vec::with_capacity(child.children.len());
        for &branch in &child.children {
            pushed.push(self.sub(memo, LogicalOp::Process { udo: *udo }, vec![branch]));
        }
        self.alt(memo, LogicalOp::UnionAll, pushed)
    }

    fn top_below_union(&self, memo: &mut Memo, expr: &ExprView) -> usize {
        let LogicalOp::Top { k } = &expr.op else {
            return 0;
        };
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != OpKind::UnionAll {
            return 0;
        }
        let mut pushed = Vec::with_capacity(child.children.len());
        for &branch in &child.children {
            pushed.push(self.sub(memo, LogicalOp::Top { k: *k }, vec![branch]));
        }
        let new_union = self.sub(memo, LogicalOp::UnionAll, pushed);
        self.alt(memo, LogicalOp::Top { k: *k }, vec![new_union])
    }

    // ---- Generic unary rewrites --------------------------------------------

    fn swap_unary(
        &self,
        memo: &mut Memo,
        expr: &ExprView,
        parent: OpKind,
        child_kind: OpKind,
    ) -> usize {
        if expr.op.kind() != parent || expr.children.len() != 1 {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != child_kind || child.children.len() != 1 {
            return 0;
        }
        let below = self.sub(memo, expr.op.clone(), vec![child.children[0]]);
        self.alt(memo, child.op.clone(), vec![below])
    }

    fn eliminate_identity(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
        if expr.op.kind() != kind {
            return 0;
        }
        let replace_with_child = match (&expr.op, kind) {
            (LogicalOp::Project { cols, computed }, OpKind::Project) => {
                *computed == 0 && {
                    let avail = &memo.group(expr.children[0]).est.cols;
                    cols.len() == avail.len() && cols.iter().all(|c| avail.contains(c))
                }
            }
            (LogicalOp::Top { k }, OpKind::Top) => {
                // Risky: trusts the estimate.
                (*k as f64) >= memo.group(expr.children[0]).est.rows
            }
            (LogicalOp::Sort { keys }, OpKind::Sort) => {
                // Sort whose keys prefix an identical child sort.
                match &memo.canonical(expr.children[0]).op {
                    LogicalOp::Sort { keys: inner } => inner.starts_with(keys),
                    _ => false,
                }
            }
            (LogicalOp::UnionAll, OpKind::UnionAll) => expr.children.len() == 1,
            _ => false,
        };
        if !replace_with_child {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        self.alt(memo, child.op, child.children)
    }

    fn collapse_same(&self, memo: &mut Memo, expr: &ExprView, kind: OpKind) -> usize {
        if expr.op.kind() != kind || expr.children.len() != 1 {
            return 0;
        }
        let child = memo.canonical(expr.children[0]).clone();
        if child.op.kind() != kind {
            return 0;
        }
        let merged = match (&expr.op, &child.op) {
            (LogicalOp::Sort { keys }, LogicalOp::Sort { .. }) => {
                LogicalOp::Sort { keys: keys.clone() }
            }
            (LogicalOp::Top { k: k1 }, LogicalOp::Top { k: k2 }) => {
                LogicalOp::Top { k: (*k1).min(*k2) }
            }
            (LogicalOp::Window { keys }, LogicalOp::Window { .. }) => {
                LogicalOp::Window { keys: keys.clone() }
            }
            _ => return 0,
        };
        self.alt(memo, merged, child.children)
    }
}

/// A cloned view of a memo expression (avoids holding borrows during
/// rewrites).
type ExprView = crate::memo::MExpr;
