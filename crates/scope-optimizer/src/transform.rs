//! Interpretation of transformation-rule families on the memo.
//!
//! [`apply_rule`] pattern-matches a rule against one memo expression (using
//! canonical child expressions, as classic Cascades implementations do for
//! cheap binding) and inserts the rewritten alternatives. Sub-expressions
//! created along the way get their own (new or deduplicated) groups; the
//! top-level result is inserted as an alternative of the matched
//! expression's group.
//!
//! ## Two-phase rewrites
//!
//! Every rewrite arm runs in two phases against the arena memo: a *read*
//! phase that pattern-matches borrowed operators and copies out the
//! (`Copy`) group ids and whatever owned fragments the rewrite will need,
//! followed by an *insert* phase once no memo borrows remain. The old
//! implementation instead cloned the full matched expression (operator,
//! predicate atoms, child vector) up front for **every** `(rule, expr)`
//! pair — including the overwhelmingly common case where the rule does not
//! match and the arm returns `0` after one kind check. Arms that re-insert
//! an existing operator now pass its interned handle
//! ([`Memo::insert_interned_children_of`] and friends) instead of cloning
//! it.

use std::collections::BTreeSet;

use scope_ir::ids::ColId;
use scope_ir::{JoinKind, LogicalOp, OpKind, PredAtom, Predicate};

use crate::estimate::Estimator;
use crate::memo::{GroupId, Inserted, MExprId, Memo};
use crate::rules::{AtomOrder, Rule, RuleAction};
use crate::ruleset::RuleId;

/// Shared context for transformations.
pub struct TransformCtx<'a> {
    pub est: &'a Estimator<'a>,
    /// Every column referenced anywhere in the original query — the safe
    /// retention set for pruning projections.
    pub referenced: &'a BTreeSet<ColId>,
}

/// Columns referenced by an operator (keys, predicate atoms, projections,
/// aggregate arguments).
pub fn referenced_cols(op: &LogicalOp, out: &mut BTreeSet<ColId>) {
    match op {
        LogicalOp::Get { .. }
        | LogicalOp::UnionAll
        | LogicalOp::VirtualDataset
        | LogicalOp::Output { .. }
        | LogicalOp::Process { .. }
        | LogicalOp::Top { .. } => {}
        LogicalOp::RangeGet { pushed, .. } => {
            out.extend(pushed.atoms.iter().map(|a| a.col));
        }
        LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
            out.extend(predicate.atoms.iter().map(|a| a.col));
        }
        LogicalOp::Project { cols, .. } => out.extend(cols.iter().copied()),
        LogicalOp::Join { keys, .. } => {
            for &(l, r) in keys {
                out.insert(l);
                out.insert(r);
            }
        }
        LogicalOp::GroupBy { keys, aggs, .. } => {
            out.extend(keys.iter().copied());
            for agg in aggs {
                match agg {
                    scope_ir::AggFunc::Count => {}
                    scope_ir::AggFunc::Sum(c)
                    | scope_ir::AggFunc::Min(c)
                    | scope_ir::AggFunc::Max(c)
                    | scope_ir::AggFunc::Avg(c) => {
                        out.insert(*c);
                    }
                }
            }
        }
        LogicalOp::Sort { keys } | LogicalOp::Window { keys } => out.extend(keys.iter().copied()),
    }
}

/// Budget headroom a single rewrite may consume (sub-expressions plus the
/// alternative itself; bounded by union arity which the workload caps).
const REWRITE_MARGIN: usize = 64;

/// Apply `rule` to `expr_id`; returns how many new expressions were added.
pub fn apply_rule(rule: &Rule, expr_id: MExprId, memo: &mut Memo, ctx: &TransformCtx<'_>) -> usize {
    if memo.num_exprs() + REWRITE_MARGIN >= crate::memo::MAX_TOTAL_EXPRS {
        return 0;
    }
    let rewriter = Rewriter {
        rule_id: rule.id,
        expr_id,
        ctx,
    };
    rewriter.dispatch(&rule.action, memo)
}

struct Rewriter<'a, 'b> {
    rule_id: RuleId,
    expr_id: MExprId,
    ctx: &'a TransformCtx<'b>,
}

impl Rewriter<'_, '_> {
    /// Insert a sub-expression (own group) created by this rule.
    /// `apply_rule` guarantees a budget margin, so this cannot fail.
    fn sub(&self, memo: &mut Memo, op: LogicalOp, children: &[GroupId]) -> GroupId {
        match memo.insert_owned(op, children, None, Some(self.rule_id), self.ctx.est) {
            Inserted::New(e) | Inserted::Duplicate(e) => memo.expr(e).group,
            Inserted::Budget => unreachable!("apply_rule reserves budget margin"),
        }
    }

    /// Like [`Rewriter::sub`] for an operator already interned in the memo.
    fn sub_interned(&self, memo: &mut Memo, op: scope_ir::ExprId, children: &[GroupId]) -> GroupId {
        match memo.insert_interned(op, children, None, Some(self.rule_id), self.ctx.est) {
            Inserted::New(e) | Inserted::Duplicate(e) => memo.expr(e).group,
            Inserted::Budget => unreachable!("apply_rule reserves budget margin"),
        }
    }

    /// Insert an alternative into the matched expression's group.
    fn alt(&self, memo: &mut Memo, op: LogicalOp, children: &[GroupId]) -> usize {
        let target = memo.expr(self.expr_id).group;
        let inserted =
            memo.insert_owned(op, children, Some(target), Some(self.rule_id), self.ctx.est);
        usize::from(matches!(inserted, Inserted::New(_)))
    }

    /// Insert an alternative whose children are an existing expression's.
    fn alt_children_of(&self, memo: &mut Memo, op: LogicalOp, src: MExprId) -> usize {
        let target = memo.expr(self.expr_id).group;
        let inserted =
            memo.insert_owned_children_of(op, src, Some(target), Some(self.rule_id), self.ctx.est);
        usize::from(matches!(inserted, Inserted::New(_)))
    }

    /// Insert an alternative reusing an interned operator over an existing
    /// expression's children (no clones at all).
    fn alt_interned_children_of(
        &self,
        memo: &mut Memo,
        op: scope_ir::ExprId,
        src: MExprId,
    ) -> usize {
        let target = memo.expr(self.expr_id).group;
        let inserted = memo.insert_interned_children_of(
            op,
            src,
            Some(target),
            Some(self.rule_id),
            self.ctx.est,
        );
        usize::from(matches!(inserted, Inserted::New(_)))
    }

    /// Re-insert an existing expression as an alternative of the matched
    /// group (identity eliminations; no clones at all).
    fn alt_existing(&self, memo: &mut Memo, src: MExprId) -> usize {
        let target = memo.expr(self.expr_id).group;
        let inserted = memo.insert_existing(src, Some(target), Some(self.rule_id), self.ctx.est);
        usize::from(matches!(inserted, Inserted::New(_)))
    }

    /// The matched expression's single-child group.
    #[inline]
    fn child0(&self, memo: &Memo) -> GroupId {
        memo.children(self.expr_id)[0]
    }

    fn dispatch(&self, action: &RuleAction, memo: &mut Memo) -> usize {
        use RuleAction::*;
        match action {
            CollapseFilters => self.collapse_filters(memo),
            DropTrueFilter => self.drop_true_filter(memo),
            FilterIntoScan => self.filter_into_scan(memo),
            FilterBelow { kind, eq_only } => self.filter_below(memo, *kind, *eq_only),
            ReorderAtoms(order) => self.reorder_atoms(memo, *order),
            MergeProjects => self.merge_projects(memo),
            ProjectBelow(kind) => self.project_below(memo, *kind),
            PruneBelow { kind, eager } => self.prune_below(memo, *kind, *eager),
            JoinCommute { guarded } => self.join_commute(memo, *guarded),
            JoinAssoc { right, guarded } => self.join_assoc(memo, *right, *guarded),
            JoinOnUnion { max_arity, left } => self.join_on_union(memo, *max_arity as usize, *left),
            GroupByOnJoin { variant } => self.groupby_on_join(memo, *variant),
            GroupByBelowUnion { variant } => self.groupby_below_union(memo, *variant),
            SplitGroupBy { variant } => self.split_groupby(memo, *variant),
            UnionFlatten { deep } => self.union_flatten(memo, *deep),
            ProcessBelowUnion { .. } => self.process_below_union(memo),
            TopBelowUnion { .. } => self.top_below_union(memo),
            SwapUnary { parent, child, .. } => self.swap_unary(memo, *parent, *child),
            NormalizeReduce { variant } => self.normalize_reduce(memo, *variant),
            EliminateIdentity(kind) => self.eliminate_identity(memo, *kind),
            CollapseSame(kind) => self.collapse_same(memo, *kind),
            // Normalizers, markers, and implementation rules are handled
            // elsewhere.
            _ => 0,
        }
    }

    // ---- Filter rewrites -------------------------------------------------

    fn collapse_filters(&self, memo: &mut Memo) -> usize {
        let (merged, child_e) = {
            let LogicalOp::Filter { predicate: p_up } = memo.op(self.expr_id) else {
                return 0;
            };
            let child_e = memo.canonical(self.child0(memo));
            let LogicalOp::Filter { predicate: p_down } = memo.op(child_e) else {
                return 0;
            };
            (p_up.clone().and(p_down.clone()), child_e)
        };
        self.alt_children_of(memo, LogicalOp::Filter { predicate: merged }, child_e)
    }

    fn drop_true_filter(&self, memo: &mut Memo) -> usize {
        let LogicalOp::Filter { predicate } = memo.op(self.expr_id) else {
            return 0;
        };
        if !predicate.is_true() {
            return 0;
        }
        let child_e = memo.canonical(self.child0(memo));
        self.alt_existing(memo, child_e)
    }

    fn filter_into_scan(&self, memo: &mut Memo) -> usize {
        let (table, merged) = {
            let LogicalOp::Filter { predicate } = memo.op(self.expr_id) else {
                return 0;
            };
            if predicate.is_true() {
                return 0;
            }
            let child_e = memo.canonical(self.child0(memo));
            let LogicalOp::RangeGet { table, pushed } = memo.op(child_e) else {
                return 0;
            };
            (*table, pushed.clone().and(predicate.clone()))
        };
        self.alt(
            memo,
            LogicalOp::RangeGet {
                table,
                pushed: merged,
            },
            &[],
        )
    }

    fn filter_below(&self, memo: &mut Memo, kind: OpKind, eq_only: bool) -> usize {
        let LogicalOp::Filter { predicate } = memo.op(self.expr_id) else {
            return 0;
        };
        if predicate.is_true() {
            return 0;
        }
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != kind {
            return 0;
        }
        // Partition atoms into pushable and residual.
        let (pushable, residual): (Vec<PredAtom>, Vec<PredAtom>) = predicate
            .atoms
            .iter()
            .cloned()
            .partition(|a| !eq_only || a.op == scope_ir::CmpOp::Eq);
        if pushable.is_empty() {
            return 0;
        }
        let child_op = memo.expr(child_e).op;
        match memo.kind_of(child_e) {
            OpKind::Project | OpKind::Sort | OpKind::Window | OpKind::Top | OpKind::Process => {
                // Single push below a unary operator.
                let below_of = memo.children(child_e)[0];
                let below = self.sub(
                    memo,
                    LogicalOp::Filter {
                        predicate: Predicate { atoms: pushable },
                    },
                    &[below_of],
                );
                let inner = self.sub_interned(memo, child_op, &[below]);
                self.wrap_residual(memo, inner, residual)
            }
            OpKind::UnionAll | OpKind::VirtualDataset => {
                let pred = Predicate { atoms: pushable };
                let n = memo.children(child_e).len();
                let mut pushed_children = Vec::with_capacity(n);
                for i in 0..n {
                    let g = memo.children(child_e)[i];
                    pushed_children.push(self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: pred.clone(),
                        },
                        &[g],
                    ));
                }
                let inner = self.sub_interned(memo, child_op, &pushed_children);
                self.wrap_residual(memo, inner, residual)
            }
            OpKind::Join => {
                let (lg0, rg0) = {
                    let ch = memo.children(child_e);
                    (ch[0], ch[1])
                };
                let l_cols: BTreeSet<ColId> = memo.group_est(lg0).cols.iter().copied().collect();
                let r_cols: BTreeSet<ColId> = memo.group_est(rg0).cols.iter().copied().collect();
                let mut l_atoms = Vec::new();
                let mut r_atoms = Vec::new();
                let mut rest = residual;
                for atom in pushable {
                    if l_cols.contains(&atom.col) {
                        l_atoms.push(atom);
                    } else if r_cols.contains(&atom.col) {
                        r_atoms.push(atom);
                    } else {
                        rest.push(atom);
                    }
                }
                if l_atoms.is_empty() && r_atoms.is_empty() {
                    return 0;
                }
                let mut lg = lg0;
                let mut rg = rg0;
                if !l_atoms.is_empty() {
                    lg = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: l_atoms },
                        },
                        &[lg],
                    );
                }
                if !r_atoms.is_empty() {
                    rg = self.sub(
                        memo,
                        LogicalOp::Filter {
                            predicate: Predicate { atoms: r_atoms },
                        },
                        &[rg],
                    );
                }
                let inner = self.sub_interned(memo, child_op, &[lg, rg]);
                self.wrap_residual(memo, inner, rest)
            }
            OpKind::GroupBy => {
                let LogicalOp::GroupBy { keys, .. } = memo.op(child_e) else {
                    return 0;
                };
                let key_set: BTreeSet<ColId> = keys.iter().copied().collect();
                let (on_keys, rest): (Vec<PredAtom>, Vec<PredAtom>) =
                    pushable.into_iter().partition(|a| key_set.contains(&a.col));
                if on_keys.is_empty() {
                    return 0;
                }
                let below_of = memo.children(child_e)[0];
                let below = self.sub(
                    memo,
                    LogicalOp::Filter {
                        predicate: Predicate { atoms: on_keys },
                    },
                    &[below_of],
                );
                let inner = self.sub_interned(memo, child_op, &[below]);
                let mut all_rest = residual;
                all_rest.extend(rest);
                self.wrap_residual(memo, inner, all_rest)
            }
            _ => 0,
        }
    }

    /// Wrap residual atoms (if any) above `inner` and insert as an
    /// alternative of the matched group.
    fn wrap_residual(&self, memo: &mut Memo, inner: GroupId, residual: Vec<PredAtom>) -> usize {
        if residual.is_empty() {
            let canon = memo.canonical(inner);
            self.alt_existing(memo, canon)
        } else {
            self.alt(
                memo,
                LogicalOp::Filter {
                    predicate: Predicate { atoms: residual },
                },
                &[inner],
            )
        }
    }

    fn reorder_atoms(&self, memo: &mut Memo, order: AtomOrder) -> usize {
        let atoms = {
            let LogicalOp::Filter { predicate } = memo.op(self.expr_id) else {
                return 0;
            };
            if predicate.len() < 2 {
                return 0;
            }
            let mut atoms = predicate.atoms.clone();
            // total_cmp: selectivities are estimator outputs in [0, 1], but a
            // NaN estimate must reorder deterministically, never panic a rule.
            match order {
                AtomOrder::SelAsc => atoms.sort_by(|a, b| {
                    self.ctx
                        .est
                        .atom_selectivity(a)
                        .total_cmp(&self.ctx.est.atom_selectivity(b))
                }),
                AtomOrder::SelDesc => atoms.sort_by(|a, b| {
                    self.ctx
                        .est
                        .atom_selectivity(b)
                        .total_cmp(&self.ctx.est.atom_selectivity(a))
                }),
                AtomOrder::EqFirst => atoms.sort_by_key(|a| match a.op {
                    scope_ir::CmpOp::Eq => 0u8,
                    scope_ir::CmpOp::Between | scope_ir::CmpOp::Range => 1,
                    _ => 2,
                }),
                AtomOrder::ByCol => atoms.sort_by_key(|a| a.col),
            }
            if atoms == predicate.atoms {
                return 0;
            }
            atoms
        };
        self.alt_children_of(
            memo,
            LogicalOp::Filter {
                predicate: Predicate { atoms },
            },
            self.expr_id,
        )
    }

    // ---- Project rewrites ------------------------------------------------

    fn merge_projects(&self, memo: &mut Memo) -> usize {
        let (merged, child_e) = {
            let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                return 0;
            };
            let child_e = memo.canonical(self.child0(memo));
            let LogicalOp::Project { computed: c2, .. } = memo.op(child_e) else {
                return 0;
            };
            (
                LogicalOp::Project {
                    cols: cols.clone(),
                    computed: computed.saturating_add(*c2),
                },
                child_e,
            )
        };
        self.alt_children_of(memo, merged, child_e)
    }

    /// Narrow `g` to the columns in `need` via an inserted projection;
    /// returns `g` unchanged when nothing would be dropped (or everything
    /// would).
    fn narrow_to(&self, memo: &mut Memo, g: GroupId, need: &BTreeSet<ColId>) -> GroupId {
        let kept = {
            let avail = &memo.group_est(g).cols;
            let kept: Vec<ColId> = avail.iter().copied().filter(|c| need.contains(c)).collect();
            if kept.len() == avail.len() || kept.is_empty() {
                return g;
            }
            kept
        };
        self.sub(
            memo,
            LogicalOp::Project {
                cols: kept,
                computed: 0,
            },
            &[g],
        )
    }

    fn project_below(&self, memo: &mut Memo, kind: OpKind) -> usize {
        let LogicalOp::Project { .. } = memo.op(self.expr_id) else {
            return 0;
        };
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != kind {
            return 0;
        }
        let child_op = memo.expr(child_e).op;
        match memo.kind_of(child_e) {
            OpKind::UnionAll => {
                let (cols, computed) = {
                    let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                        return 0;
                    };
                    (cols.clone(), *computed)
                };
                let n = memo.children(child_e).len();
                let mut pushed = Vec::with_capacity(n);
                for i in 0..n {
                    let g = memo.children(child_e)[i];
                    pushed.push(self.sub(
                        memo,
                        LogicalOp::Project {
                            cols: cols.clone(),
                            computed,
                        },
                        &[g],
                    ));
                }
                self.alt(memo, LogicalOp::UnionAll, &pushed)
            }
            OpKind::Join => {
                let (cols, need, jk, jkeys, lg0, rg0) = {
                    let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                        return 0;
                    };
                    if *computed > 0 {
                        return 0;
                    }
                    let LogicalOp::Join { kind: jk, keys } = memo.op(child_e) else {
                        return 0;
                    };
                    let mut need: BTreeSet<ColId> = cols.iter().copied().collect();
                    for &(l, r) in keys {
                        need.insert(l);
                        need.insert(r);
                    }
                    let ch = memo.children(child_e);
                    (cols.clone(), need, *jk, keys.clone(), ch[0], ch[1])
                };
                let lg = self.narrow_to(memo, lg0, &need);
                let rg = self.narrow_to(memo, rg0, &need);
                if lg == lg0 && rg == rg0 {
                    return 0;
                }
                let inner = self.sub(
                    memo,
                    LogicalOp::Join {
                        kind: jk,
                        keys: jkeys,
                    },
                    &[lg, rg],
                );
                self.alt(memo, LogicalOp::Project { cols, computed: 0 }, &[inner])
            }
            OpKind::Sort | OpKind::Window => {
                let (kept, computed, below_of) = {
                    let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                        return 0;
                    };
                    let (LogicalOp::Sort { keys } | LogicalOp::Window { keys }) = memo.op(child_e)
                    else {
                        return 0;
                    };
                    let mut kept: Vec<ColId> = cols.clone();
                    for &k in keys {
                        if !kept.contains(&k) {
                            kept.push(k);
                        }
                    }
                    (kept, *computed, memo.children(child_e)[0])
                };
                let below = self.sub(
                    memo,
                    LogicalOp::Project {
                        cols: kept,
                        computed,
                    },
                    &[below_of],
                );
                self.alt_interned(memo, child_op, &[below])
            }
            OpKind::Filter => {
                let (cols, computed, pred, below_of) = {
                    let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                        return 0;
                    };
                    let LogicalOp::Filter { predicate } = memo.op(child_e) else {
                        return 0;
                    };
                    let covered = predicate.atoms.iter().all(|a| cols.contains(&a.col));
                    if !covered {
                        return 0;
                    }
                    (
                        cols.clone(),
                        *computed,
                        predicate.clone(),
                        memo.children(child_e)[0],
                    )
                };
                let below = self.sub(memo, LogicalOp::Project { cols, computed }, &[below_of]);
                self.alt(memo, LogicalOp::Filter { predicate: pred }, &[below])
            }
            OpKind::Top => {
                let (cols, computed, k, below_of) = {
                    let LogicalOp::Project { cols, computed } = memo.op(self.expr_id) else {
                        return 0;
                    };
                    let LogicalOp::Top { k } = memo.op(child_e) else {
                        return 0;
                    };
                    (cols.clone(), *computed, *k, memo.children(child_e)[0])
                };
                let below = self.sub(memo, LogicalOp::Project { cols, computed }, &[below_of]);
                self.alt(memo, LogicalOp::Top { k }, &[below])
            }
            _ => 0,
        }
    }

    fn prune_below(&self, memo: &mut Memo, kind: OpKind, eager: bool) -> usize {
        if memo.kind_of(self.expr_id) != kind {
            return 0;
        }
        let min_drop = if eager { 1 } else { 4 };
        let own_op = memo.expr(self.expr_id).op;
        let mut new_children: Vec<GroupId> = memo.children(self.expr_id).to_vec();
        let mut changed = false;
        for slot in &mut new_children {
            let g = *slot;
            if memo.canonical_kind(g) == OpKind::Project {
                continue; // already narrowed
            }
            let kept = {
                let avail = &memo.group_est(g).cols;
                let kept: Vec<ColId> = avail
                    .iter()
                    .copied()
                    .filter(|c| self.ctx.referenced.contains(c))
                    .collect();
                if kept.is_empty() || avail.len() - kept.len() < min_drop {
                    continue;
                }
                kept
            };
            *slot = self.sub(
                memo,
                LogicalOp::Project {
                    cols: kept,
                    computed: 0,
                },
                &[g],
            );
            changed = true;
        }
        if !changed {
            return 0;
        }
        self.alt_interned(memo, own_op, &new_children)
    }

    /// Insert an alternative reusing an interned operator over an explicit
    /// child list.
    fn alt_interned(&self, memo: &mut Memo, op: scope_ir::ExprId, children: &[GroupId]) -> usize {
        let target = memo.expr(self.expr_id).group;
        let inserted =
            memo.insert_interned(op, children, Some(target), Some(self.rule_id), self.ctx.est);
        usize::from(matches!(inserted, Inserted::New(_)))
    }

    // ---- Join rewrites ---------------------------------------------------

    fn join_commute(&self, memo: &mut Memo, guarded: bool) -> usize {
        let (kind, swapped, c0, c1) = {
            let LogicalOp::Join { kind, keys } = memo.op(self.expr_id) else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            let ch = memo.children(self.expr_id);
            let (c0, c1) = (ch[0], ch[1]);
            if guarded {
                let l = memo.group_est(c0).rows;
                let r = memo.group_est(c1).rows;
                // Guarded commute only fires to move the smaller input right.
                if r <= l {
                    return 0;
                }
            }
            let swapped: Vec<(ColId, ColId)> = keys.iter().map(|&(l, r)| (r, l)).collect();
            (*kind, swapped, c0, c1)
        };
        self.alt(
            memo,
            LogicalOp::Join {
                kind,
                keys: swapped,
            },
            &[c1, c0],
        )
    }

    fn join_assoc(&self, memo: &mut Memo, right: bool, guarded: bool) -> usize {
        let (keys, outer_g, c) = {
            let LogicalOp::Join { kind, keys } = memo.op(self.expr_id) else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            let ch = memo.children(self.expr_id);
            let (outer_idx, inner_idx) = if right { (1, 0) } else { (0, 1) };
            (keys.clone(), ch[outer_idx], ch[inner_idx])
        };
        let nested_e = memo.canonical(outer_g);
        let (keys2, a, b) = {
            let LogicalOp::Join {
                kind: k2,
                keys: keys2,
            } = memo.op(nested_e)
            else {
                return 0;
            };
            if *k2 != JoinKind::Inner {
                return 0;
            }
            let nch = memo.children(nested_e);
            (keys2.clone(), nch[0], nch[1])
        };
        // (A ⋈k2 B) ⋈k1 C  →  A ⋈k2' (B ⋈k1 C)  when k1's outer-side
        // columns all come from B.
        let b_cols: BTreeSet<ColId> = memo.group_est(b).cols.iter().copied().collect();
        let outer_key_ok = keys.iter().all(|&(l, r)| {
            let outer_col = if right { r } else { l };
            b_cols.contains(&outer_col)
        });
        if !outer_key_ok {
            return 0;
        }
        let inner_keys: Vec<(ColId, ColId)> = if right {
            keys.iter().map(|&(l, r)| (r, l)).collect()
        } else {
            keys
        };
        let new_inner = self.sub(
            memo,
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: inner_keys,
            },
            &[b, c],
        );
        if guarded {
            let before = memo.group_est(outer_g).rows;
            let after = memo.group_est(new_inner).rows;
            if after >= before {
                return 0;
            }
        }
        self.alt(
            memo,
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: keys2,
            },
            &[a, new_inner],
        )
    }

    fn join_on_union(&self, memo: &mut Memo, max_arity: usize, left: bool) -> usize {
        let (keys, union_side, other_side) = {
            let LogicalOp::Join { kind, keys } = memo.op(self.expr_id) else {
                return 0;
            };
            if *kind != JoinKind::Inner {
                return 0;
            }
            let ch = memo.children(self.expr_id);
            let (u, o) = if left { (ch[0], ch[1]) } else { (ch[1], ch[0]) };
            (keys.clone(), u, o)
        };
        let union_e = memo.canonical(union_side);
        if memo.kind_of(union_e) != OpKind::UnionAll {
            return 0;
        }
        let n = memo.children(union_e).len();
        if n > max_arity {
            return 0;
        }
        let mut joined = Vec::with_capacity(n);
        for i in 0..n {
            let branch = memo.children(union_e)[i];
            let (lg, rg) = if left {
                (branch, other_side)
            } else {
                (other_side, branch)
            };
            joined.push(self.sub(
                memo,
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    keys: keys.clone(),
                },
                &[lg, rg],
            ));
        }
        self.alt(memo, LogicalOp::UnionAll, &joined)
    }

    // ---- Aggregation rewrites ---------------------------------------------

    fn groupby_on_join(&self, memo: &mut Memo, variant: u8) -> usize {
        let (keys, aggs) = {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = memo.op(self.expr_id)
            else {
                return 0;
            };
            if *partial {
                return 0;
            }
            (keys.clone(), aggs.clone())
        };
        let child_e = memo.canonical(self.child0(memo));
        let (jk, jkeys, jc0, jc1) = {
            let LogicalOp::Join {
                kind: jk,
                keys: jkeys,
            } = memo.op(child_e)
            else {
                return 0;
            };
            let ch = memo.children(child_e);
            (*jk, jkeys.clone(), ch[0], ch[1])
        };
        let side = (variant % 2) as usize; // variants alternate push side
        let side_group = if side == 0 { jc0 } else { jc1 };
        let side_cols: BTreeSet<ColId> = memo.group_est(side_group).cols.iter().copied().collect();
        if !keys.iter().all(|k| side_cols.contains(k)) {
            return 0;
        }
        // Partial-aggregate the chosen side on (group keys ∪ join keys).
        let mut pkeys = keys.clone();
        for &(l, r) in &jkeys {
            let jc = if side == 0 { l } else { r };
            if side_cols.contains(&jc) && !pkeys.contains(&jc) {
                pkeys.push(jc);
            }
        }
        // Higher variants fire unconditionally; low variants require a
        // plausibly-reducing aggregation.
        if variant < 2 {
            let rows = memo.group_est(side_group).rows;
            if rows < 10_000.0 {
                return 0;
            }
        }
        let partial_agg = self.sub(
            memo,
            LogicalOp::GroupBy {
                keys: pkeys,
                aggs: aggs.clone(),
                partial: true,
            },
            &[side_group],
        );
        let mut join_children = [jc0, jc1];
        join_children[side] = partial_agg;
        let new_join = self.sub(
            memo,
            LogicalOp::Join {
                kind: jk,
                keys: jkeys,
            },
            &join_children,
        );
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial: false,
            },
            &[new_join],
        )
    }

    fn groupby_below_union(&self, memo: &mut Memo, variant: u8) -> usize {
        let (keys, aggs, child_g) = {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = memo.op(self.expr_id)
            else {
                return 0;
            };
            if *partial {
                return 0;
            }
            (keys.clone(), aggs.clone(), self.child0(memo))
        };
        let child_e = memo.canonical(child_g);
        if memo.kind_of(child_e) != OpKind::UnionAll {
            return 0;
        }
        // Variant 0 requires a reducing aggregation estimate; higher
        // variants fire more eagerly.
        if variant == 0 && memo.group_est(child_g).rows < 10_000.0 {
            return 0;
        }
        let n = memo.children(child_e).len();
        let mut partials = Vec::with_capacity(n);
        for i in 0..n {
            let branch = memo.children(child_e)[i];
            partials.push(self.sub(
                memo,
                LogicalOp::GroupBy {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                    partial: true,
                },
                &[branch],
            ));
        }
        let new_union = self.sub(memo, LogicalOp::UnionAll, &partials);
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial: false,
            },
            &[new_union],
        )
    }

    fn split_groupby(&self, memo: &mut Memo, variant: u8) -> usize {
        let (keys, aggs, child_g) = {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = memo.op(self.expr_id)
            else {
                return 0;
            };
            if *partial || keys.is_empty() {
                return 0;
            }
            (keys.clone(), aggs.clone(), self.child0(memo))
        };
        let child_rows = memo.group_est(child_g).rows;
        let threshold = match variant {
            0 => 100_000.0,
            1 => 10_000.0,
            _ => 0.0, // aggressive variants always fire
        };
        if child_rows < threshold {
            return 0;
        }
        // Avoid re-splitting an already-split aggregation.
        if memo.canonical_kind(child_g) == OpKind::GroupBy {
            return 0;
        }
        let partial_agg = self.sub(
            memo,
            LogicalOp::GroupBy {
                keys: keys.clone(),
                aggs: aggs.clone(),
                partial: true,
            },
            &[child_g],
        );
        self.alt(
            memo,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial: false,
            },
            &[partial_agg],
        )
    }

    fn normalize_reduce(&self, memo: &mut Memo, variant: u8) -> usize {
        let (sorted, aggs, partial) = {
            let LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } = memo.op(self.expr_id)
            else {
                return 0;
            };
            if keys.len() < 2 {
                return 0;
            }
            let mut sorted = keys.clone();
            match variant {
                0 => sorted.sort_unstable(),
                1 => sorted.sort_unstable_by(|a, b| b.cmp(a)),
                _ => sorted.sort_by_key(|c| self.ctx.est.observed().col_ndv(*c)),
            }
            if sorted == *keys {
                return 0;
            }
            (sorted, aggs.clone(), *partial)
        };
        self.alt_children_of(
            memo,
            LogicalOp::GroupBy {
                keys: sorted,
                aggs,
                partial,
            },
            self.expr_id,
        )
    }

    // ---- Union / process / top rewrites -----------------------------------

    fn union_flatten(&self, memo: &mut Memo, deep: bool) -> usize {
        if memo.kind_of(self.expr_id) != OpKind::UnionAll {
            return 0;
        }
        let mut flat: Vec<GroupId> = Vec::new();
        let mut changed = false;
        let mut stack: Vec<(GroupId, usize)> = memo
            .children(self.expr_id)
            .iter()
            .map(|&g| (g, 0))
            .collect();
        stack.reverse();
        while let Some((g, depth)) = stack.pop() {
            let canon = memo.canonical(g);
            let is_union = memo.kind_of(canon) == OpKind::UnionAll;
            let may_recurse = depth == 0 || deep;
            if is_union && may_recurse {
                changed = true;
                for &c in memo.children(canon).iter().rev() {
                    stack.push((c, depth + 1));
                }
            } else {
                flat.push(g);
            }
        }
        if !changed || flat.len() < 2 {
            return 0;
        }
        self.alt(memo, LogicalOp::UnionAll, &flat)
    }

    fn process_below_union(&self, memo: &mut Memo) -> usize {
        let LogicalOp::Process { udo } = memo.op(self.expr_id) else {
            return 0;
        };
        let udo = *udo;
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != OpKind::UnionAll {
            return 0;
        }
        let n = memo.children(child_e).len();
        let mut pushed = Vec::with_capacity(n);
        for i in 0..n {
            let branch = memo.children(child_e)[i];
            pushed.push(self.sub(memo, LogicalOp::Process { udo }, &[branch]));
        }
        self.alt(memo, LogicalOp::UnionAll, &pushed)
    }

    fn top_below_union(&self, memo: &mut Memo) -> usize {
        let LogicalOp::Top { k } = memo.op(self.expr_id) else {
            return 0;
        };
        let k = *k;
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != OpKind::UnionAll {
            return 0;
        }
        let n = memo.children(child_e).len();
        let mut pushed = Vec::with_capacity(n);
        for i in 0..n {
            let branch = memo.children(child_e)[i];
            pushed.push(self.sub(memo, LogicalOp::Top { k }, &[branch]));
        }
        let new_union = self.sub(memo, LogicalOp::UnionAll, &pushed);
        self.alt(memo, LogicalOp::Top { k }, &[new_union])
    }

    // ---- Generic unary rewrites --------------------------------------------

    fn swap_unary(&self, memo: &mut Memo, parent: OpKind, child_kind: OpKind) -> usize {
        if memo.kind_of(self.expr_id) != parent || memo.expr(self.expr_id).n_children() != 1 {
            return 0;
        }
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != child_kind || memo.expr(child_e).n_children() != 1 {
            return 0;
        }
        let grandchild = memo.children(child_e)[0];
        let own_op = memo.expr(self.expr_id).op;
        let child_op = memo.expr(child_e).op;
        let below = self.sub_interned(memo, own_op, &[grandchild]);
        self.alt_interned(memo, child_op, &[below])
    }

    fn eliminate_identity(&self, memo: &mut Memo, kind: OpKind) -> usize {
        if memo.kind_of(self.expr_id) != kind {
            return 0;
        }
        let replace_with_child = match (memo.op(self.expr_id), kind) {
            (LogicalOp::Project { cols, computed }, OpKind::Project) => {
                *computed == 0 && {
                    let avail = &memo.group_est(self.child0(memo)).cols;
                    cols.len() == avail.len() && cols.iter().all(|c| avail.contains(c))
                }
            }
            (LogicalOp::Top { k }, OpKind::Top) => {
                // Risky: trusts the estimate.
                (*k as f64) >= memo.group_est(self.child0(memo)).rows
            }
            (LogicalOp::Sort { keys }, OpKind::Sort) => {
                // Sort whose keys prefix an identical child sort.
                match memo.canonical_op(self.child0(memo)) {
                    LogicalOp::Sort { keys: inner } => inner.starts_with(keys),
                    _ => false,
                }
            }
            (LogicalOp::UnionAll, OpKind::UnionAll) => memo.expr(self.expr_id).n_children() == 1,
            _ => false,
        };
        if !replace_with_child {
            return 0;
        }
        let child_e = memo.canonical(self.child0(memo));
        self.alt_existing(memo, child_e)
    }

    fn collapse_same(&self, memo: &mut Memo, kind: OpKind) -> usize {
        if memo.kind_of(self.expr_id) != kind || memo.expr(self.expr_id).n_children() != 1 {
            return 0;
        }
        let child_e = memo.canonical(self.child0(memo));
        if memo.kind_of(child_e) != kind {
            return 0;
        }
        let own_op = memo.expr(self.expr_id).op;
        // Decide first (read borrows end with the match), insert after.
        let merged_top = match (memo.op(self.expr_id), memo.op(child_e)) {
            (LogicalOp::Sort { .. }, LogicalOp::Sort { .. })
            | (LogicalOp::Window { .. }, LogicalOp::Window { .. }) => None,
            (LogicalOp::Top { k: k1 }, LogicalOp::Top { k: k2 }) => Some((*k1).min(*k2)),
            _ => return 0,
        };
        match merged_top {
            // Merged operator == the parent's own (keys are the parent's);
            // reuse the interned handle over the child's children.
            None => self.alt_interned_children_of(memo, own_op, child_e),
            Some(k) => self.alt_children_of(memo, LogicalOp::Top { k }, child_e),
        }
    }
}
