//! The required normalization pass.
//!
//! Before cost-based exploration, the required rules rewrite the raw script
//! plan into normalized form: `Get` → `RangeGet` (`GetToRange`), `Select` →
//! `Filter` (`SelectToFilter`), and the output is marked (`BuildOutput`).
//! These rules cannot be disabled; they always contribute to the rule
//! signature when they fire.

use scope_ir::{LogicalOp, PlanGraph, Predicate};

use crate::rules::RuleCatalog;
use crate::ruleset::RuleSet;

/// Result of normalization: the rewritten plan plus the required rules that
/// fired.
pub struct Normalized {
    pub plan: PlanGraph,
    pub fired: RuleSet,
}

/// Apply the required normalizers. The input plan keeps its node ids
/// (rewrites here are 1:1).
pub fn normalize(plan: &PlanGraph) -> Normalized {
    let cat = RuleCatalog::global();
    let get_to_range = cat.find("GetToRange").expect("catalog rule");
    let select_to_filter = cat.find("SelectToFilter").expect("catalog rule");
    let build_output = cat.find("BuildOutput").expect("catalog rule");

    let mut fired = RuleSet::EMPTY;
    let mut out = PlanGraph::new();
    for (_, node) in plan.iter() {
        let op = match &node.op {
            LogicalOp::Get { table } => {
                fired.insert(get_to_range);
                LogicalOp::RangeGet {
                    table: *table,
                    pushed: Predicate::true_pred(),
                }
            }
            LogicalOp::Select { predicate } => {
                fired.insert(select_to_filter);
                LogicalOp::Filter {
                    predicate: predicate.clone(),
                }
            }
            other => other.clone(),
        };
        out.add_unchecked(op, node.children.clone());
    }
    if let Some(root) = plan.root() {
        out.set_root(root);
        if matches!(out.node(root).op, LogicalOp::Output { .. }) {
            fired.insert(build_output);
        }
    }
    Normalized { plan: out, fired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom};
    use scope_ir::ids::{ColId, TableId};
    use scope_ir::OpKind;

    #[test]
    fn normalizes_get_and_select() {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = g.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate::atom(PredAtom::unknown(ColId(0), CmpOp::Eq, Literal::Int(1))),
            },
            vec![s],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
        g.set_root(o);

        let n = normalize(&g);
        let counts = n.plan.op_counts();
        assert_eq!(counts[OpKind::Get as usize], 0);
        assert_eq!(counts[OpKind::Select as usize], 0);
        assert_eq!(counts[OpKind::RangeGet as usize], 1);
        assert_eq!(counts[OpKind::Filter as usize], 1);

        let cat = RuleCatalog::global();
        assert!(n.fired.contains(cat.find("GetToRange").unwrap()));
        assert!(n.fired.contains(cat.find("SelectToFilter").unwrap()));
        assert!(n.fired.contains(cat.find("BuildOutput").unwrap()));
        // Predicate preserved.
        let f_node = n
            .plan
            .iter()
            .find(|(_, node)| node.op.kind() == OpKind::Filter)
            .unwrap();
        assert_eq!(f_node.1.op.predicate().unwrap().len(), 1);
    }

    #[test]
    fn already_normalized_plan_fires_only_build_output() {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(0),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
        g.set_root(o);
        let n = normalize(&g);
        assert_eq!(n.fired.len(), 1);
        assert_eq!(n.plan.size(), 2);
    }
}
