//! Cost-based search: memo exploration with the enabled transformation
//! rules, implementation with the enabled implementation rules (inserting
//! enforcer exchanges where partitioning requirements are unmet), and
//! extraction of the winning physical plan.
//!
//! ## Hot-path shape
//!
//! Exploration fuses the catalog's per-kind transform masks with the
//! configuration's enabled set **once per compile** into a
//! `[RuleSet; OpKind::COUNT]` table; visiting an expression is then a
//! 4-word bitset walk instead of collecting a `Vec<RuleId>` per
//! expression. Implementation state (winners, failures, visit marks,
//! extraction cache) lives in a reusable [`ImplementScratch`] of flat
//! per-group vectors rather than per-compile `HashMap`s. Both changes
//! preserve rule order exactly: catalog rule lists are ascending by id and
//! [`RuleSet::iter`] yields ascending ids.

use std::time::{Duration, Instant};

use scope_ir::ids::NodeId;
use scope_ir::{LogicalOp, OpKind};

use crate::config::RuleConfig;
use crate::cost::{
    exchange_cost, exchange_impl_for, impl_cost, output_part, required_child_parts, CostEstimate,
    CostModel,
};
use crate::memo::{EstId, GroupId, MExprId, Memo};
use crate::physical::{Partitioning, PhysNode, PhysOp, PhysPlan};
use crate::rules::{PhysImpl, RuleAction, RuleCatalog};
use crate::ruleset::{RuleId, RuleSet};
use crate::transform::{apply_rule, TransformCtx};

/// Compilation failures caused by rule configurations — the paper's
/// "many of these may not compile successfully due to implicit
/// dependencies" — plus the resource-budget and panic-isolation failures
/// introduced by the hardening layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Every implementation rule for this operator kind is disabled.
    NoImplementation { kind: OpKind },
    /// A required exchange's implementation rule is disabled.
    NoExchangeImplementation,
    /// Internal guard: the memo contained a cycle (should never happen).
    CyclicMemo,
    /// The memo's hard expression cap was hit while ingesting the original
    /// plan (the plan alone is bigger than the whole exploration budget).
    MemoExhausted { groups: usize, exprs: usize },
    /// The per-compile task or wall-clock budget was exhausted mid-search.
    BudgetExhausted {
        phase: CompilePhase,
        tasks: u64,
        /// `true` when the wall-clock deadline (not the task count) fired.
        wall_clock: bool,
    },
    /// The compile panicked and was isolated by
    /// [`crate::optimizer::catch_compile_panics`].
    Panicked { message: String },
}

impl CompileError {
    /// Whether this error must abort the whole compile immediately rather
    /// than merely disqualify one memo alternative.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            CompileError::MemoExhausted { .. }
                | CompileError::BudgetExhausted { .. }
                | CompileError::Panicked { .. }
        )
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoImplementation { kind } => {
                write!(f, "no enabled implementation rule for {}", kind.name())
            }
            CompileError::NoExchangeImplementation => {
                write!(
                    f,
                    "no enabled exchange implementation for a required repartitioning"
                )
            }
            CompileError::CyclicMemo => write!(f, "cyclic memo"),
            CompileError::MemoExhausted { groups, exprs } => {
                write!(
                    f,
                    "memo exhausted during ingest ({groups} groups, {exprs} exprs)"
                )
            }
            CompileError::BudgetExhausted {
                phase,
                tasks,
                wall_clock,
            } => {
                let which = if *wall_clock { "wall-clock" } else { "task" };
                write!(
                    f,
                    "compile {which} budget exhausted during {} after {tasks} tasks",
                    phase.name()
                )
            }
            CompileError::Panicked { message } => write!(f, "compile panicked: {message}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Which search phase a budget ran out in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompilePhase {
    /// Transformation-rule exploration of the memo.
    Explore,
    /// Implementation / enforcement / costing.
    Implement,
}

impl CompilePhase {
    pub fn name(self) -> &'static str {
        match self {
            CompilePhase::Explore => "exploration",
            CompilePhase::Implement => "implementation",
        }
    }
}

/// Per-compile resource budget. One *task* is one unit of optimizer work:
/// one transformation-rule application attempt during exploration, or one
/// implementation alternative costed during implementation. The memo's
/// group/expression caps bound *space*; this bounds *time*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompileBudget {
    /// Maximum optimizer tasks per compile.
    pub max_tasks: u64,
    /// Optional wall-clock deadline per compile. `None` keeps compiles
    /// fully deterministic (the default — task counts don't depend on
    /// machine speed).
    pub max_wall: Option<Duration>,
    /// Branch-and-bound implementation pruning: once a group holds an
    /// incumbent winner, skip costing any alternative whose resolved child
    /// winners alone already reach the incumbent's cost. Sound because every
    /// implementation and exchange cost is non-negative and the winner
    /// comparison is strict, so a pruned alternative can never replace the
    /// incumbent — the final plan, cost, and used-rule signature are
    /// bit-identical with the flag on or off; only the task count drops.
    /// Off by default so the differential `classic` fingerprint suite keeps
    /// byte-stable task counts.
    pub branch_and_bound: bool,
}

impl CompileBudget {
    /// Effectively no budget (for tests and calibration runs).
    pub const UNLIMITED: CompileBudget = CompileBudget {
        max_tasks: u64::MAX,
        max_wall: None,
        branch_and_bound: false,
    };

    /// A task-count-only budget.
    pub fn with_max_tasks(max_tasks: u64) -> CompileBudget {
        CompileBudget {
            max_tasks,
            max_wall: None,
            branch_and_bound: false,
        }
    }

    /// The same budget with branch-and-bound pruning switched on.
    pub fn with_branch_and_bound(mut self) -> CompileBudget {
        self.branch_and_bound = true;
        self
    }
}

impl Default for CompileBudget {
    /// Generous enough that every well-behaved compile fits (the largest
    /// generated jobs take a few hundred thousand tasks), small enough that
    /// a pathological rule interaction cannot stall a discovery run.
    fn default() -> CompileBudget {
        CompileBudget {
            max_tasks: 5_000_000,
            max_wall: None,
            branch_and_bound: false,
        }
    }
}

/// Mutable task/deadline accounting for one compile, threaded through
/// exploration and implementation.
#[derive(Debug)]
pub struct BudgetTracker {
    max_tasks: u64,
    deadline: Option<Instant>,
    tasks: u64,
    branch_and_bound: bool,
}

/// How often (in tasks) the wall-clock deadline is polled.
const WALL_CHECK_INTERVAL: u64 = 256;

impl BudgetTracker {
    pub fn new(budget: &CompileBudget) -> BudgetTracker {
        BudgetTracker {
            max_tasks: budget.max_tasks,
            deadline: budget.max_wall.map(|d| Instant::now() + d),
            tasks: 0,
            branch_and_bound: budget.branch_and_bound,
        }
    }

    /// Tasks charged so far.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Whether branch-and-bound implementation pruning is on.
    pub fn branch_and_bound(&self) -> bool {
        self.branch_and_bound
    }

    /// Charge one task; errors once the budget is exhausted.
    pub fn charge(&mut self, phase: CompilePhase) -> Result<(), CompileError> {
        self.tasks += 1;
        if self.tasks > self.max_tasks {
            return Err(CompileError::BudgetExhausted {
                phase,
                tasks: self.tasks,
                wall_clock: false,
            });
        }
        if self.tasks.is_multiple_of(WALL_CHECK_INTERVAL) {
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return Err(CompileError::BudgetExhausted {
                        phase,
                        tasks: self.tasks,
                        wall_clock: true,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Result of a successful search.
pub struct SearchOutcome {
    pub plan: PhysPlan,
    pub est_cost: f64,
    /// Component-wise estimated cost of the whole plan (sum of reachable
    /// per-operator vectors, corrections applied).
    pub est_cost_vec: CostEstimate,
    /// Rules that contributed to the winning plan (transformations,
    /// implementations, enforcer + exchange implementations).
    pub used_rules: RuleSet,
}

/// Explore the memo: run every enabled transformation rule over every
/// expression (including rule outputs) until the list is exhausted or
/// budgets bite. Returns the number of expressions added; errors when the
/// compile budget runs out mid-exploration.
pub fn explore(
    memo: &mut Memo,
    config: &RuleConfig,
    ctx: &TransformCtx<'_>,
    tracker: &mut BudgetTracker,
) -> Result<usize, CompileError> {
    let cat = RuleCatalog::global();
    let before = memo.num_exprs();
    // Fuse "applicable to this kind" with "enabled in this config" once
    // per compile; each expression visit is then a 4-word bitset walk in
    // the exact ascending-id order the old per-expression `Vec<RuleId>`
    // collection produced.
    let mut masks = [RuleSet::EMPTY; OpKind::COUNT];
    for kind in OpKind::ALL {
        masks[kind as usize] = cat.transform_mask(kind).intersection(config.enabled());
    }
    let mut idx = 0usize;
    while idx < memo.num_exprs() {
        let expr_id = MExprId(idx as u32);
        let mask = masks[memo.kind_of(expr_id) as usize];
        for rid in mask.iter() {
            tracker.charge(CompilePhase::Explore)?;
            let rule = cat.rule(rid);
            apply_rule(rule, expr_id, memo, ctx);
        }
        idx += 1;
    }
    Ok(memo.num_exprs() - before)
}

/// Per-group winning implementation.
#[derive(Clone, Debug)]
struct Winner {
    /// Scalarized subtree cost — the *only* value alternatives are ranked
    /// by. Produced by [`CostModel::scalar`] at the costing sites; the f64
    /// accumulation below is textually the same as the pre-vector model's,
    /// so the default model is bit-identical to the classic scalar.
    cost: f64,
    /// Component-wise subtree cost (corrections applied), carried for plan
    /// annotation and feedback; never compared.
    cost_vec: CostEstimate,
    expr: MExprId,
    phys: PhysImpl,
    impl_rule: RuleId,
    out_part: Partitioning,
    dop: u32,
    /// Per child: exchange to insert (impl, rule id, scheme, dop), if any.
    exchanges: Vec<Option<(PhysImpl, RuleId, Partitioning, u32)>>,
    est: EstId,
}

/// Reusable implementation-phase state: flat per-group vectors replacing
/// the per-compile `HashMap`s. [`ImplementScratch::reset`] re-sizes
/// without freeing, so a thread-local compile scratch allocates nothing
/// once warm.
#[derive(Default)]
pub struct ImplementScratch {
    winners: Vec<Option<Winner>>,
    failures: Vec<Option<CompileError>>,
    visiting: Vec<bool>,
    built: Vec<Option<NodeId>>,
}

impl ImplementScratch {
    pub fn new() -> ImplementScratch {
        ImplementScratch::default()
    }

    fn reset(&mut self, n_groups: usize) {
        self.winners.clear();
        self.winners.resize_with(n_groups, || None);
        self.failures.clear();
        self.failures.resize_with(n_groups, || None);
        self.visiting.clear();
        self.visiting.resize(n_groups, false);
        self.built.clear();
        self.built.resize(n_groups, None);
    }
}

/// Compute winners for all groups reachable from `root` and extract the
/// cheapest physical plan.
pub fn implement(
    memo: &Memo,
    root: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    tracker: &mut BudgetTracker,
) -> Result<SearchOutcome, CompileError> {
    let mut scratch = ImplementScratch::new();
    implement_with_scratch(memo, root, config, obs, tracker, &mut scratch)
}

/// [`implement`] against caller-owned scratch (allocation reuse across
/// compiles).
pub fn implement_with_scratch(
    memo: &Memo,
    root: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    tracker: &mut BudgetTracker,
    scratch: &mut ImplementScratch,
) -> Result<SearchOutcome, CompileError> {
    implement_with_model(
        memo,
        root,
        config,
        obs,
        tracker,
        scratch,
        &CostModel::DEFAULT,
    )
}

/// [`implement_with_scratch`] under an explicit cost model (scalarization
/// weights + feedback corrections). `CostModel::DEFAULT` is bit-identical
/// to the classic scalar path.
#[allow(clippy::too_many_arguments)]
pub fn implement_with_model(
    memo: &Memo,
    root: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    tracker: &mut BudgetTracker,
    scratch: &mut ImplementScratch,
    model: &CostModel,
) -> Result<SearchOutcome, CompileError> {
    scratch.reset(memo.num_groups());
    let ImplementScratch {
        winners,
        failures,
        visiting,
        built,
    } = scratch;
    best(
        memo, root, config, obs, winners, failures, visiting, tracker, model,
    )?;

    // Extraction.
    let mut plan = PhysPlan::new();
    let mut used = RuleSet::EMPTY;
    let cat = RuleCatalog::global();
    let enforce = cat.find("EnforceExchange").expect("catalog rule");
    let root_node = extract(
        memo, root, winners, &mut plan, built, &mut used, enforce, model,
    );
    plan.set_root(root_node);
    let est_cost = plan.total_est_cost();
    let est_cost_vec = plan.total_est_cost_vec();
    Ok(SearchOutcome {
        plan,
        est_cost,
        est_cost_vec,
        used_rules: used,
    })
}

#[allow(clippy::too_many_arguments)]
fn best(
    memo: &Memo,
    group: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    winners: &mut [Option<Winner>],
    failures: &mut [Option<CompileError>],
    visiting: &mut [bool],
    tracker: &mut BudgetTracker,
    model: &CostModel,
) -> Result<f64, CompileError> {
    if let Some(w) = &winners[group.index()] {
        return Ok(w.cost);
    }
    if let Some(e) = &failures[group.index()] {
        return Err(e.clone());
    }
    if visiting[group.index()] {
        return Err(CompileError::CyclicMemo);
    }
    visiting[group.index()] = true;

    let cat = RuleCatalog::global();
    let mut best_winner: Option<Winner> = None;
    let mut kind_without_impl: Option<OpKind> = None;
    let mut exchange_blocked = false;
    let mut child_failure: Option<CompileError> = None;

    for expr_id in memo.group_exprs(group) {
        let kind = memo.kind_of(expr_id);
        let children = memo.children(expr_id);
        // Resolve children first. A child group with no feasible
        // implementation only disqualifies *this alternative* — other
        // expressions in the group may avoid that subtree entirely.
        // Compilation as a whole fails only when the root group ends up
        // with no feasible implementation.
        let mut ok = true;
        for &c in children {
            match best(
                memo, c, config, obs, winners, failures, visiting, tracker, model,
            ) {
                Ok(_) => {}
                // Budget exhaustion (and friends) abort the whole compile —
                // unlike per-alternative infeasibility, there is no point
                // trying sibling alternatives with an empty budget.
                Err(e) if e.is_fatal() => return Err(e),
                Err(CompileError::NoExchangeImplementation) => {
                    exchange_blocked = true;
                    ok = false;
                    break;
                }
                Err(e) => {
                    if !matches!(e, CompileError::CyclicMemo) {
                        child_failure.get_or_insert(e);
                    }
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        // Branch-and-bound: every candidate built from this expression
        // costs at least the sum of its resolved child winners (own and
        // exchange costs are non-negative), so when that sum already
        // reaches the incumbent's cost no candidate here can win the
        // strict `<` comparison below — skip the whole implementation
        // loop without charging its tasks.
        if tracker.branch_and_bound() {
            if let Some(w) = &best_winner {
                let child_sum: f64 = children
                    .iter()
                    .map(|&c| winners[c.index()].as_ref().expect("child winner").cost)
                    .sum();
                if child_sum >= w.cost {
                    continue;
                }
            }
        }

        // Applicable implementations ∩ enabled: one 4-word intersection
        // instead of a collected `Vec<RuleId>` per expression.
        let enabled_impls = cat.impl_mask(kind).intersection(config.enabled());
        if enabled_impls.is_empty() {
            kind_without_impl = Some(kind);
            continue;
        }

        let op = memo.op(expr_id);
        let own_est = memo.expr_est(expr_id);
        let child_ests = memo.group_ests(children);

        for impl_rule in enabled_impls.iter() {
            tracker.charge(CompilePhase::Implement)?;
            let RuleAction::Impl(phys) = &cat.rule(impl_rule).action else {
                continue;
            };
            let phys = *phys;
            let oc = impl_cost(phys, op, own_est, &child_ests, obs);
            let reqs = required_child_parts(phys, op, children.len());
            let mut exchanges = Vec::with_capacity(children.len());
            // Scalarize at the costing site; the f64 accumulation below is
            // textually the pre-vector model's, so default-model compiles
            // stay bit-identical to the classic scalar path.
            let mut candidate_cost = model.scalar(&oc.cost);
            let mut candidate_vec = model.corrected(&oc.cost);
            let mut child_parts = Vec::with_capacity(children.len());
            let mut feasible = true;
            for (i, &c) in children.iter().enumerate() {
                let req = reqs.get(i).cloned().unwrap_or(Partitioning::Any);
                let child_w = winners[c.index()].as_ref().expect("child winner resolved");
                candidate_cost += child_w.cost;
                candidate_vec = candidate_vec.add(&child_w.cost_vec);
                if child_w.out_part.satisfies(&req) {
                    exchanges.push(None);
                    child_parts.push(child_w.out_part.clone());
                } else {
                    let Some(ex_impl) = exchange_impl_for(&req) else {
                        exchanges.push(None);
                        child_parts.push(child_w.out_part.clone());
                        continue;
                    };
                    let ex_rule = cat
                        .rule_for_impl(ex_impl)
                        .expect("exchange impl rule exists");
                    if !config.is_enabled(ex_rule) {
                        exchange_blocked = true;
                        feasible = false;
                        break;
                    }
                    let ex_dop = match req {
                        Partitioning::Singleton => 1,
                        _ => oc.dop,
                    };
                    let ex_cost =
                        exchange_cost(ex_impl, memo.est(child_w.est).bytes(), oc.dop.max(1));
                    candidate_cost += model.scalar(&ex_cost.cost);
                    candidate_vec = candidate_vec.add(&model.corrected(&ex_cost.cost));
                    exchanges.push(Some((ex_impl, ex_rule, req.clone(), ex_dop)));
                    child_parts.push(req);
                }
            }
            if !feasible {
                continue;
            }
            let out_part = output_part(phys, op, &child_parts);
            let better = match &best_winner {
                None => true,
                Some(w) => candidate_cost < w.cost,
            };
            if better {
                best_winner = Some(Winner {
                    cost: candidate_cost,
                    cost_vec: candidate_vec,
                    expr: expr_id,
                    phys,
                    impl_rule,
                    out_part,
                    dop: oc.dop,
                    exchanges,
                    est: memo.expr(expr_id).est,
                });
            }
        }
    }

    visiting[group.index()] = false;
    match best_winner {
        Some(w) => {
            let cost = w.cost;
            winners[group.index()] = Some(w);
            Ok(cost)
        }
        None => {
            // Prefer the most specific cause: a kind with no enabled
            // implementation here, then a child subtree's cause, then the
            // exchange enforcer.
            let err = if let Some(kind) = kind_without_impl {
                CompileError::NoImplementation { kind }
            } else if let Some(e) = child_failure {
                e
            } else if exchange_blocked {
                CompileError::NoExchangeImplementation
            } else {
                CompileError::NoImplementation {
                    kind: memo.canonical_kind(group),
                }
            };
            failures[group.index()] = Some(err.clone());
            Err(err)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn extract(
    memo: &Memo,
    group: GroupId,
    winners: &[Option<Winner>],
    plan: &mut PhysPlan,
    built: &mut [Option<NodeId>],
    used: &mut RuleSet,
    enforce_rule: RuleId,
    model: &CostModel,
) -> NodeId {
    if let Some(node) = built[group.index()] {
        return node;
    }
    let w = winners[group.index()]
        .as_ref()
        .expect("winner for reachable group");
    let children = memo.children(w.expr);
    let mut child_nodes = Vec::with_capacity(children.len());
    for (i, &c) in children.iter().enumerate() {
        let mut node = extract(memo, c, winners, plan, built, used, enforce_rule, model);
        if let Some((ex_impl, ex_rule, scheme, ex_dop)) = &w.exchanges[i] {
            let child_w = winners[c.index()].as_ref().expect("child winner");
            let child_est = memo.est(child_w.est);
            let ex_cost = exchange_cost(*ex_impl, child_est.bytes(), w.dop.max(1));
            node = plan.add(PhysNode {
                op: PhysOp::Exchange {
                    scheme: scheme.clone(),
                    dop: *ex_dop,
                },
                children: vec![node],
                est_rows: child_est.rows,
                est_bytes: child_est.bytes(),
                est_cost: model.scalar(&ex_cost.cost),
                est_cost_vec: model.corrected(&ex_cost.cost),
                partitioning: scheme.clone(),
                dop: *ex_dop,
                created_by: Some(*ex_rule),
                logical_rule: None,
            });
            used.insert(*ex_rule);
            used.insert(enforce_rule);
        }
        child_nodes.push(node);
    }
    let child_cost = |c: GroupId| winners[c.index()].as_ref().expect("child winner").cost;
    let own_cost = w.cost
        - children.iter().map(|&c| child_cost(c)).sum::<f64>()
        - w.exchanges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.as_ref().map(|(ex_impl, _, _, _)| {
                    let child_w = winners[children[i].index()].as_ref().expect("child winner");
                    let ex = exchange_cost(*ex_impl, memo.est(child_w.est).bytes(), w.dop.max(1));
                    model.scalar(&ex.cost)
                })
            })
            .sum::<f64>();
    // Component-wise own cost: the subtree vector minus resolved child and
    // exchange vectors, floored at zero like the scalar.
    let mut own_vec = w.cost_vec;
    for &c in children {
        own_vec =
            own_vec.saturating_sub(&winners[c.index()].as_ref().expect("child winner").cost_vec);
    }
    for (i, e) in w.exchanges.iter().enumerate() {
        if let Some((ex_impl, _, _, _)) = e {
            let child_w = winners[children[i].index()].as_ref().expect("child winner");
            let ex = exchange_cost(*ex_impl, memo.est(child_w.est).bytes(), w.dop.max(1));
            own_vec = own_vec.saturating_sub(&model.corrected(&ex.cost));
        }
    }
    let w_est = memo.est(w.est);
    let created_by_logical = memo.expr(w.expr).created_by;
    let node = plan.add(PhysNode {
        op: phys_op_for(w.phys, memo.op(w.expr)),
        children: child_nodes,
        est_rows: w_est.rows,
        est_bytes: w_est.bytes(),
        est_cost: own_cost.max(0.0),
        est_cost_vec: own_vec,
        partitioning: w.out_part.clone(),
        dop: w.dop,
        created_by: Some(w.impl_rule),
        logical_rule: created_by_logical,
    });
    used.insert(w.impl_rule);
    if let Some(t) = created_by_logical {
        used.insert(t);
    }
    built[group.index()] = Some(node);
    node
}

/// Map a logical operator plus chosen implementation to a physical operator.
pub(crate) fn phys_op_for(phys: PhysImpl, op: &LogicalOp) -> PhysOp {
    use PhysImpl::*;
    match (phys, op) {
        (ScanSerial, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: false,
            indexed: false,
        },
        (ScanParallel, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: true,
            indexed: false,
        },
        (ScanIndexed, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: true,
            indexed: true,
        },
        (FilterImpl, LogicalOp::Filter { predicate }) => PhysOp::Filter {
            predicate: predicate.clone(),
        },
        (ProjectImpl, LogicalOp::Project { cols, computed }) => PhysOp::Project {
            cols: cols.clone(),
            computed: *computed,
        },
        (HashJoin1, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 1,
        },
        (HashJoin2, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 2,
        },
        (HashJoin3, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 3,
        },
        (MergeJoin, LogicalOp::Join { kind, keys }) => PhysOp::MergeJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (BroadcastJoin, LogicalOp::Join { kind, keys }) => PhysOp::BroadcastJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (LoopJoin, LogicalOp::Join { kind, keys }) => PhysOp::LoopJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (IndexJoin, LogicalOp::Join { kind, keys }) => PhysOp::IndexJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (
            HashAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::HashAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (
            SortAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::SortAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (
            StreamAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::StreamAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (UnionConcat, LogicalOp::UnionAll) => PhysOp::UnionAll { serial: false },
        (UnionSerial, LogicalOp::UnionAll) => PhysOp::UnionAll { serial: true },
        (UnionVirtual, LogicalOp::UnionAll) => PhysOp::VirtualDataset,
        (VirtualDatasetImpl, LogicalOp::VirtualDataset) => PhysOp::VirtualDataset,
        (TopN, LogicalOp::Top { k }) => PhysOp::Top { k: *k, heap: true },
        (TopSort, LogicalOp::Top { k }) => PhysOp::Top { k: *k, heap: false },
        (SortParallel, LogicalOp::Sort { keys }) => PhysOp::Sort {
            keys: keys.clone(),
            parallel: true,
        },
        (SortSerial, LogicalOp::Sort { keys }) => PhysOp::Sort {
            keys: keys.clone(),
            parallel: false,
        },
        (WindowHash, LogicalOp::Window { keys }) => PhysOp::Window {
            keys: keys.clone(),
            hash_based: true,
        },
        (WindowSort, LogicalOp::Window { keys }) => PhysOp::Window {
            keys: keys.clone(),
            hash_based: false,
        },
        (ProcessParallel, LogicalOp::Process { udo }) => PhysOp::Process {
            udo: *udo,
            parallel: true,
        },
        (ProcessSerial, LogicalOp::Process { udo }) => PhysOp::Process {
            udo: *udo,
            parallel: false,
        },
        (OutputImpl, LogicalOp::Output { stream }) => PhysOp::Output { stream: *stream },
        (p, o) => unreachable!("implementation {p:?} cannot implement {:?}", o.kind()),
    }
}
