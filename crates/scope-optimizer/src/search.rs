//! Cost-based search: memo exploration with the enabled transformation
//! rules, implementation with the enabled implementation rules (inserting
//! enforcer exchanges where partitioning requirements are unmet), and
//! extraction of the winning physical plan.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use scope_ir::ids::NodeId;
use scope_ir::{LogicalOp, OpKind};

use crate::config::RuleConfig;
use crate::cost::{exchange_cost, exchange_impl_for, impl_cost, output_part, required_child_parts};
use crate::estimate::LogicalEst;
use crate::memo::{GroupId, MExprId, Memo};
use crate::physical::{Partitioning, PhysNode, PhysOp, PhysPlan};
use crate::rules::{PhysImpl, RuleAction, RuleCatalog};
use crate::ruleset::{RuleId, RuleSet};
use crate::transform::{apply_rule, TransformCtx};

/// Compilation failures caused by rule configurations — the paper's
/// "many of these may not compile successfully due to implicit
/// dependencies" — plus the resource-budget and panic-isolation failures
/// introduced by the hardening layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Every implementation rule for this operator kind is disabled.
    NoImplementation { kind: OpKind },
    /// A required exchange's implementation rule is disabled.
    NoExchangeImplementation,
    /// Internal guard: the memo contained a cycle (should never happen).
    CyclicMemo,
    /// The memo's hard expression cap was hit while ingesting the original
    /// plan (the plan alone is bigger than the whole exploration budget).
    MemoExhausted { groups: usize, exprs: usize },
    /// The per-compile task or wall-clock budget was exhausted mid-search.
    BudgetExhausted {
        phase: CompilePhase,
        tasks: u64,
        /// `true` when the wall-clock deadline (not the task count) fired.
        wall_clock: bool,
    },
    /// The compile panicked and was isolated by
    /// [`crate::optimizer::catch_compile_panics`].
    Panicked { message: String },
}

impl CompileError {
    /// Whether this error must abort the whole compile immediately rather
    /// than merely disqualify one memo alternative.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            CompileError::MemoExhausted { .. }
                | CompileError::BudgetExhausted { .. }
                | CompileError::Panicked { .. }
        )
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoImplementation { kind } => {
                write!(f, "no enabled implementation rule for {}", kind.name())
            }
            CompileError::NoExchangeImplementation => {
                write!(
                    f,
                    "no enabled exchange implementation for a required repartitioning"
                )
            }
            CompileError::CyclicMemo => write!(f, "cyclic memo"),
            CompileError::MemoExhausted { groups, exprs } => {
                write!(
                    f,
                    "memo exhausted during ingest ({groups} groups, {exprs} exprs)"
                )
            }
            CompileError::BudgetExhausted {
                phase,
                tasks,
                wall_clock,
            } => {
                let which = if *wall_clock { "wall-clock" } else { "task" };
                write!(
                    f,
                    "compile {which} budget exhausted during {} after {tasks} tasks",
                    phase.name()
                )
            }
            CompileError::Panicked { message } => write!(f, "compile panicked: {message}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Which search phase a budget ran out in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompilePhase {
    /// Transformation-rule exploration of the memo.
    Explore,
    /// Implementation / enforcement / costing.
    Implement,
}

impl CompilePhase {
    pub fn name(self) -> &'static str {
        match self {
            CompilePhase::Explore => "exploration",
            CompilePhase::Implement => "implementation",
        }
    }
}

/// Per-compile resource budget. One *task* is one unit of optimizer work:
/// one transformation-rule application attempt during exploration, or one
/// implementation alternative costed during implementation. The memo's
/// group/expression caps bound *space*; this bounds *time*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompileBudget {
    /// Maximum optimizer tasks per compile.
    pub max_tasks: u64,
    /// Optional wall-clock deadline per compile. `None` keeps compiles
    /// fully deterministic (the default — task counts don't depend on
    /// machine speed).
    pub max_wall: Option<Duration>,
}

impl CompileBudget {
    /// Effectively no budget (for tests and calibration runs).
    pub const UNLIMITED: CompileBudget = CompileBudget {
        max_tasks: u64::MAX,
        max_wall: None,
    };

    /// A task-count-only budget.
    pub fn with_max_tasks(max_tasks: u64) -> CompileBudget {
        CompileBudget {
            max_tasks,
            max_wall: None,
        }
    }
}

impl Default for CompileBudget {
    /// Generous enough that every well-behaved compile fits (the largest
    /// generated jobs take a few hundred thousand tasks), small enough that
    /// a pathological rule interaction cannot stall a discovery run.
    fn default() -> CompileBudget {
        CompileBudget {
            max_tasks: 5_000_000,
            max_wall: None,
        }
    }
}

/// Mutable task/deadline accounting for one compile, threaded through
/// exploration and implementation.
#[derive(Debug)]
pub struct BudgetTracker {
    max_tasks: u64,
    deadline: Option<Instant>,
    tasks: u64,
}

/// How often (in tasks) the wall-clock deadline is polled.
const WALL_CHECK_INTERVAL: u64 = 256;

impl BudgetTracker {
    pub fn new(budget: &CompileBudget) -> BudgetTracker {
        BudgetTracker {
            max_tasks: budget.max_tasks,
            deadline: budget.max_wall.map(|d| Instant::now() + d),
            tasks: 0,
        }
    }

    /// Tasks charged so far.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Charge one task; errors once the budget is exhausted.
    pub fn charge(&mut self, phase: CompilePhase) -> Result<(), CompileError> {
        self.tasks += 1;
        if self.tasks > self.max_tasks {
            return Err(CompileError::BudgetExhausted {
                phase,
                tasks: self.tasks,
                wall_clock: false,
            });
        }
        if self.tasks.is_multiple_of(WALL_CHECK_INTERVAL) {
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return Err(CompileError::BudgetExhausted {
                        phase,
                        tasks: self.tasks,
                        wall_clock: true,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Result of a successful search.
pub struct SearchOutcome {
    pub plan: PhysPlan,
    pub est_cost: f64,
    /// Rules that contributed to the winning plan (transformations,
    /// implementations, enforcer + exchange implementations).
    pub used_rules: RuleSet,
}

/// Explore the memo: run every enabled transformation rule over every
/// expression (including rule outputs) until the list is exhausted or
/// budgets bite. Returns the number of expressions added; errors when the
/// compile budget runs out mid-exploration.
pub fn explore(
    memo: &mut Memo,
    config: &RuleConfig,
    ctx: &TransformCtx<'_>,
    tracker: &mut BudgetTracker,
) -> Result<usize, CompileError> {
    let cat = RuleCatalog::global();
    let before = memo.num_exprs();
    let mut idx = 0usize;
    while idx < memo.num_exprs() {
        let expr_id = MExprId(idx as u32);
        let kind = memo.expr(expr_id).op.kind();
        // Collect applicable rules first (cheap: ids only).
        let rule_ids: Vec<RuleId> = cat
            .transforms_for(kind)
            .iter()
            .copied()
            .filter(|id| config.is_enabled(*id))
            .collect();
        for rid in rule_ids {
            tracker.charge(CompilePhase::Explore)?;
            let rule = cat.rule(rid);
            apply_rule(rule, expr_id, memo, ctx);
        }
        idx += 1;
    }
    Ok(memo.num_exprs() - before)
}

/// Per-group winning implementation.
#[derive(Clone, Debug)]
struct Winner {
    cost: f64,
    expr: MExprId,
    phys: PhysImpl,
    impl_rule: RuleId,
    out_part: Partitioning,
    dop: u32,
    /// Per child: exchange to insert (impl, rule id, scheme, dop), if any.
    exchanges: Vec<Option<(PhysImpl, RuleId, Partitioning, u32)>>,
    est: LogicalEst,
}

/// Compute winners for all groups reachable from `root` and extract the
/// cheapest physical plan.
pub fn implement(
    memo: &Memo,
    root: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    tracker: &mut BudgetTracker,
) -> Result<SearchOutcome, CompileError> {
    let mut winners: HashMap<GroupId, Winner> = HashMap::new();
    let mut failures: HashMap<GroupId, CompileError> = HashMap::new();
    let mut visiting: Vec<bool> = vec![false; memo.num_groups()];
    best(
        memo,
        root,
        config,
        obs,
        &mut winners,
        &mut failures,
        &mut visiting,
        tracker,
    )?;

    // Extraction.
    let mut plan = PhysPlan::new();
    let mut built: HashMap<GroupId, NodeId> = HashMap::new();
    let mut used = RuleSet::EMPTY;
    let cat = RuleCatalog::global();
    let enforce = cat.find("EnforceExchange").expect("catalog rule");
    let root_node = extract(
        memo, root, &winners, &mut plan, &mut built, &mut used, enforce,
    );
    plan.set_root(root_node);
    let est_cost = plan.total_est_cost();
    Ok(SearchOutcome {
        plan,
        est_cost,
        used_rules: used,
    })
}

#[allow(clippy::too_many_arguments)]
fn best(
    memo: &Memo,
    group: GroupId,
    config: &RuleConfig,
    obs: &scope_ir::ObservableCatalog,
    winners: &mut HashMap<GroupId, Winner>,
    failures: &mut HashMap<GroupId, CompileError>,
    visiting: &mut Vec<bool>,
    tracker: &mut BudgetTracker,
) -> Result<f64, CompileError> {
    if let Some(w) = winners.get(&group) {
        return Ok(w.cost);
    }
    if let Some(e) = failures.get(&group) {
        return Err(e.clone());
    }
    if visiting[group.index()] {
        return Err(CompileError::CyclicMemo);
    }
    visiting[group.index()] = true;

    let cat = RuleCatalog::global();
    let mut best_winner: Option<Winner> = None;
    let mut kind_without_impl: Option<OpKind> = None;
    let mut exchange_blocked = false;
    let mut child_failure: Option<CompileError> = None;

    let expr_ids = memo.group(group).exprs.clone();
    for expr_id in expr_ids {
        let expr = memo.expr(expr_id);
        let kind = expr.op.kind();
        let children = expr.children.clone();
        // Resolve children first. A child group with no feasible
        // implementation only disqualifies *this alternative* — other
        // expressions in the group may avoid that subtree entirely.
        // Compilation as a whole fails only when the root group ends up
        // with no feasible implementation.
        let mut ok = true;
        for &c in &children {
            match best(memo, c, config, obs, winners, failures, visiting, tracker) {
                Ok(_) => {}
                // Budget exhaustion (and friends) abort the whole compile —
                // unlike per-alternative infeasibility, there is no point
                // trying sibling alternatives with an empty budget.
                Err(e) if e.is_fatal() => return Err(e),
                Err(CompileError::NoExchangeImplementation) => {
                    exchange_blocked = true;
                    ok = false;
                    break;
                }
                Err(e) => {
                    if !matches!(e, CompileError::CyclicMemo) {
                        child_failure.get_or_insert(e);
                    }
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        let enabled_impls: Vec<RuleId> = cat
            .impls_for(kind)
            .iter()
            .copied()
            .filter(|id| config.is_enabled(*id))
            .collect();
        if enabled_impls.is_empty() {
            kind_without_impl = Some(kind);
            continue;
        }

        let expr = memo.expr(expr_id);
        let child_ests: Vec<&LogicalEst> = children.iter().map(|g| &memo.group(*g).est).collect();

        for impl_rule in enabled_impls {
            tracker.charge(CompilePhase::Implement)?;
            let RuleAction::Impl(phys) = &cat.rule(impl_rule).action else {
                continue;
            };
            let phys = *phys;
            let oc = impl_cost(phys, &expr.op, &expr.est, &child_ests, obs);
            let reqs = required_child_parts(phys, &expr.op, children.len());
            let mut exchanges = Vec::with_capacity(children.len());
            let mut candidate_cost = oc.cost;
            let mut child_parts = Vec::with_capacity(children.len());
            let mut feasible = true;
            for (i, &c) in children.iter().enumerate() {
                let req = reqs.get(i).cloned().unwrap_or(Partitioning::Any);
                let child_w = &winners[&c];
                candidate_cost += child_w.cost;
                if child_w.out_part.satisfies(&req) {
                    exchanges.push(None);
                    child_parts.push(child_w.out_part.clone());
                } else {
                    let Some(ex_impl) = exchange_impl_for(&req) else {
                        exchanges.push(None);
                        child_parts.push(child_w.out_part.clone());
                        continue;
                    };
                    let ex_rule = cat
                        .rules()
                        .iter()
                        .find(|r| r.action == RuleAction::Impl(ex_impl))
                        .map(|r| r.id)
                        .expect("exchange impl rule exists");
                    if !config.is_enabled(ex_rule) {
                        exchange_blocked = true;
                        feasible = false;
                        break;
                    }
                    let ex_dop = match req {
                        Partitioning::Singleton => 1,
                        _ => oc.dop,
                    };
                    let ex_cost = exchange_cost(ex_impl, child_w.est.bytes(), oc.dop.max(1));
                    candidate_cost += ex_cost.cost;
                    exchanges.push(Some((ex_impl, ex_rule, req.clone(), ex_dop)));
                    child_parts.push(req);
                }
            }
            if !feasible {
                continue;
            }
            let out_part = output_part(phys, &expr.op, &child_parts);
            let better = match &best_winner {
                None => true,
                Some(w) => candidate_cost < w.cost,
            };
            if better {
                best_winner = Some(Winner {
                    cost: candidate_cost,
                    expr: expr_id,
                    phys,
                    impl_rule,
                    out_part,
                    dop: oc.dop,
                    exchanges,
                    est: expr.est.clone(),
                });
            }
        }
    }

    visiting[group.index()] = false;
    match best_winner {
        Some(w) => {
            let cost = w.cost;
            winners.insert(group, w);
            Ok(cost)
        }
        None => {
            // Prefer the most specific cause: a kind with no enabled
            // implementation here, then a child subtree's cause, then the
            // exchange enforcer.
            let err = if let Some(kind) = kind_without_impl {
                CompileError::NoImplementation { kind }
            } else if let Some(e) = child_failure {
                e
            } else if exchange_blocked {
                CompileError::NoExchangeImplementation
            } else {
                CompileError::NoImplementation {
                    kind: memo.canonical(group).op.kind(),
                }
            };
            failures.insert(group, err.clone());
            Err(err)
        }
    }
}

fn extract(
    memo: &Memo,
    group: GroupId,
    winners: &HashMap<GroupId, Winner>,
    plan: &mut PhysPlan,
    built: &mut HashMap<GroupId, NodeId>,
    used: &mut RuleSet,
    enforce_rule: RuleId,
) -> NodeId {
    if let Some(&node) = built.get(&group) {
        return node;
    }
    let w = winners.get(&group).expect("winner for reachable group");
    let expr = memo.expr(w.expr);
    let mut child_nodes = Vec::with_capacity(expr.children.len());
    for (i, &c) in expr.children.iter().enumerate() {
        let mut node = extract(memo, c, winners, plan, built, used, enforce_rule);
        if let Some((ex_impl, ex_rule, scheme, ex_dop)) = &w.exchanges[i] {
            let child_w = &winners[&c];
            let ex_cost = exchange_cost(*ex_impl, child_w.est.bytes(), w.dop.max(1));
            node = plan.add(PhysNode {
                op: PhysOp::Exchange {
                    scheme: scheme.clone(),
                    dop: *ex_dop,
                },
                children: vec![node],
                est_rows: child_w.est.rows,
                est_bytes: child_w.est.bytes(),
                est_cost: ex_cost.cost,
                partitioning: scheme.clone(),
                dop: *ex_dop,
                created_by: Some(*ex_rule),
                logical_rule: None,
            });
            used.insert(*ex_rule);
            used.insert(enforce_rule);
        }
        child_nodes.push(node);
    }
    let own_cost = w.cost
        - expr.children.iter().map(|c| winners[c].cost).sum::<f64>()
        - w.exchanges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.as_ref().map(|(ex_impl, _, _, _)| {
                    exchange_cost(
                        *ex_impl,
                        winners[&expr.children[i]].est.bytes(),
                        w.dop.max(1),
                    )
                    .cost
                })
            })
            .sum::<f64>();
    let node = plan.add(PhysNode {
        op: phys_op_for(w.phys, &expr.op),
        children: child_nodes,
        est_rows: w.est.rows,
        est_bytes: w.est.bytes(),
        est_cost: own_cost.max(0.0),
        partitioning: w.out_part.clone(),
        dop: w.dop,
        created_by: Some(w.impl_rule),
        logical_rule: expr.created_by,
    });
    used.insert(w.impl_rule);
    if let Some(t) = expr.created_by {
        used.insert(t);
    }
    built.insert(group, node);
    node
}

/// Map a logical operator plus chosen implementation to a physical operator.
fn phys_op_for(phys: PhysImpl, op: &LogicalOp) -> PhysOp {
    use PhysImpl::*;
    match (phys, op) {
        (ScanSerial, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: false,
            indexed: false,
        },
        (ScanParallel, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: true,
            indexed: false,
        },
        (ScanIndexed, LogicalOp::RangeGet { table, pushed }) => PhysOp::Scan {
            table: *table,
            pushed: pushed.clone(),
            parallel: true,
            indexed: true,
        },
        (FilterImpl, LogicalOp::Filter { predicate }) => PhysOp::Filter {
            predicate: predicate.clone(),
        },
        (ProjectImpl, LogicalOp::Project { cols, computed }) => PhysOp::Project {
            cols: cols.clone(),
            computed: *computed,
        },
        (HashJoin1, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 1,
        },
        (HashJoin2, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 2,
        },
        (HashJoin3, LogicalOp::Join { kind, keys }) => PhysOp::HashJoin {
            kind: *kind,
            keys: keys.clone(),
            variant: 3,
        },
        (MergeJoin, LogicalOp::Join { kind, keys }) => PhysOp::MergeJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (BroadcastJoin, LogicalOp::Join { kind, keys }) => PhysOp::BroadcastJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (LoopJoin, LogicalOp::Join { kind, keys }) => PhysOp::LoopJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (IndexJoin, LogicalOp::Join { kind, keys }) => PhysOp::IndexJoin {
            kind: *kind,
            keys: keys.clone(),
        },
        (
            HashAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::HashAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (
            SortAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::SortAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (
            StreamAgg,
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            },
        ) => PhysOp::StreamAgg {
            keys: keys.clone(),
            aggs: aggs.clone(),
            partial: *partial,
        },
        (UnionConcat, LogicalOp::UnionAll) => PhysOp::UnionAll { serial: false },
        (UnionSerial, LogicalOp::UnionAll) => PhysOp::UnionAll { serial: true },
        (UnionVirtual, LogicalOp::UnionAll) => PhysOp::VirtualDataset,
        (VirtualDatasetImpl, LogicalOp::VirtualDataset) => PhysOp::VirtualDataset,
        (TopN, LogicalOp::Top { k }) => PhysOp::Top { k: *k, heap: true },
        (TopSort, LogicalOp::Top { k }) => PhysOp::Top { k: *k, heap: false },
        (SortParallel, LogicalOp::Sort { keys }) => PhysOp::Sort {
            keys: keys.clone(),
            parallel: true,
        },
        (SortSerial, LogicalOp::Sort { keys }) => PhysOp::Sort {
            keys: keys.clone(),
            parallel: false,
        },
        (WindowHash, LogicalOp::Window { keys }) => PhysOp::Window {
            keys: keys.clone(),
            hash_based: true,
        },
        (WindowSort, LogicalOp::Window { keys }) => PhysOp::Window {
            keys: keys.clone(),
            hash_based: false,
        },
        (ProcessParallel, LogicalOp::Process { udo }) => PhysOp::Process {
            udo: *udo,
            parallel: true,
        },
        (ProcessSerial, LogicalOp::Process { udo }) => PhysOp::Process {
            udo: *udo,
            parallel: false,
        },
        (OutputImpl, LogicalOp::Output { stream }) => PhysOp::Output { stream: *stream },
        (p, o) => unreachable!("implementation {p:?} cannot implement {:?}", o.kind()),
    }
}
