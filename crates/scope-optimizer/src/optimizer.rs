//! Top-level compilation: normalize → ingest → explore → implement →
//! extract, producing a physical plan, its estimated cost, and the job's
//! rule signature.

use std::collections::BTreeSet;

use scope_ir::ids::ColId;
use scope_ir::{Job, ObservableCatalog, OpKind, PlanGraph};

use crate::config::{RuleConfig, RuleSignature};
use crate::cost::{CostEstimate, CostModel};
use crate::estimate::Estimator;
use crate::memo::Memo;
use crate::normalize::normalize;
use crate::physical::PhysPlan;
use crate::rules::catalog::COMPLEX_KINDS;
use crate::rules::{RuleAction, RuleCatalog};
use crate::ruleset::RuleSet;
use crate::search::{
    explore, implement_with_model, BudgetTracker, CompileBudget, CompileError, ImplementScratch,
};
use crate::transform::{referenced_cols, TransformCtx};

/// Resource accounting for one compile, surfaced for observability even
/// when steering changes how much work the search does.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Optimizer tasks charged against the [`CompileBudget`].
    pub tasks: u64,
    /// Expressions added by exploration (rule outputs).
    pub explore_added: usize,
    /// Memo insertions rejected by the space budgets.
    pub memo_budget_rejections: usize,
    /// Wall-clock compile time in microseconds (diagnostic only — never
    /// feeds back into search decisions, which stay deterministic).
    pub compile_micros: u64,
}

/// A successfully compiled job.
#[derive(Debug)]
pub struct CompiledPlan {
    /// The winning physical plan.
    pub plan: PhysPlan,
    /// The optimizer's total estimated cost for the plan.
    pub est_cost: f64,
    /// Component-wise total estimated cost (`est_cost` is its
    /// scalarization under the compile's cost weights). Deliberately
    /// excluded from [`CompiledPlan::fingerprint`]: the scalar's bits
    /// already pin the model-visible outcome, and the frozen `classic`
    /// oracle predates vectors.
    pub est_cost_vec: CostEstimate,
    /// Definition 3.2 — every rule that contributed to this plan.
    pub signature: RuleSignature,
    /// Diagnostics: memo size after exploration.
    pub memo_groups: usize,
    /// Diagnostics: number of memo expressions after exploration.
    pub memo_exprs: usize,
    /// Resource accounting for this compile.
    pub stats: CompileStats,
}

impl CompiledPlan {
    /// Order-sensitive digest of everything deterministic about this
    /// compile: the rendered plan, the estimated cost's exact bits, the
    /// rule signature, the memo shape, and the task accounting. Wall-clock
    /// time is deliberately excluded. Two compiles of the same job under
    /// the same configuration must produce equal fingerprints regardless
    /// of thread, scratch reuse, or interleaving — the bit-identity
    /// property the parallel-discovery and arena tests assert.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.plan.render().hash(&mut h);
        self.est_cost.to_bits().hash(&mut h);
        self.signature.0.hash(&mut h);
        self.memo_groups.hash(&mut h);
        self.memo_exprs.hash(&mut h);
        self.stats.tasks.hash(&mut h);
        self.stats.explore_added.hash(&mut h);
        self.stats.memo_budget_rejections.hash(&mut h);
        h.finish()
    }
}

/// Reusable per-thread compile state: the memo's arena slabs plus the
/// implementation-phase scratch. [`Memo::clear`] resets lengths without
/// freeing, so a warm thread compiles with no per-compile slab growth.
#[derive(Default)]
pub struct CompileScratch {
    memo: Memo,
    implement: ImplementScratch,
}

impl CompileScratch {
    pub fn new() -> CompileScratch {
        CompileScratch::default()
    }
}

thread_local! {
    /// Per-thread compile scratch reused by [`compile_with_budget`].
    static COMPILE_SCRATCH: std::cell::RefCell<CompileScratch> =
        std::cell::RefCell::new(CompileScratch::new());
}

/// Compile a logical plan under a rule configuration.
///
/// ```
/// use scope_ir::{LogicalOp, PlanGraph, TrueCatalog};
/// use scope_ir::ids::{DomainId, TableId};
/// use scope_optimizer::{compile, RuleConfig};
///
/// let mut cat = TrueCatalog::new();
/// let col = cat.add_column(100, 0.0, DomainId(0));
/// cat.add_table(1_000_000, 100, 7, vec![col]);
///
/// let mut plan = PlanGraph::new();
/// let scan = plan.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
/// let out = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![scan]);
/// plan.set_root(out);
///
/// let compiled = compile(&plan, &cat.observe(), &RuleConfig::default_config()).unwrap();
/// assert!(compiled.est_cost > 0.0);
/// assert!(compiled.signature.len() >= 2); // GetToRange, BuildOutput, ...
/// ```
pub fn compile(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
) -> Result<CompiledPlan, CompileError> {
    compile_with_budget(plan, obs, config, &CompileBudget::default())
}

/// [`compile`] with an explicit per-compile resource budget. Exceeding the
/// budget surfaces as [`CompileError::BudgetExhausted`].
pub fn compile_with_budget(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
    budget: &CompileBudget,
) -> Result<CompiledPlan, CompileError> {
    compile_with_model(plan, obs, config, budget, &CostModel::DEFAULT)
}

/// [`compile_with_budget`] under an explicit cost model (scalarization
/// weights + feedback corrections). [`CostModel::DEFAULT`] reproduces the
/// classic scalar compile bit-for-bit; anything else re-ranks memo
/// alternatives, so callers caching compiles must key on
/// [`CostModel::fingerprint_bits`] as well.
pub fn compile_with_model(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
    budget: &CompileBudget,
    model: &CostModel,
) -> Result<CompiledPlan, CompileError> {
    COMPILE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            compile_with_scratch_model(plan, obs, config, budget, &mut scratch, model)
        }
        // Re-entrant compile on this thread (shouldn't happen, but a panic
        // unwound mid-borrow must not poison every later compile): fall
        // back to fresh one-shot state.
        Err(_) => {
            compile_with_scratch_model(plan, obs, config, budget, &mut CompileScratch::new(), model)
        }
    })
}

/// [`compile_with_budget`] against caller-owned scratch. The scratch is
/// cleared at the *start* of the compile (not the end), so a previous
/// panicked compile can never leak state into this one.
pub fn compile_with_scratch(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
    budget: &CompileBudget,
    scratch: &mut CompileScratch,
) -> Result<CompiledPlan, CompileError> {
    compile_with_scratch_model(plan, obs, config, budget, scratch, &CostModel::DEFAULT)
}

/// [`compile_with_scratch`] under an explicit cost model.
pub fn compile_with_scratch_model(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    config: &RuleConfig,
    budget: &CompileBudget,
    scratch: &mut CompileScratch,
    model: &CostModel,
) -> Result<CompiledPlan, CompileError> {
    let start = std::time::Instant::now();
    let _compile_span = scope_trace::span_timed("compile", scope_trace::Histogram::CompileMicros);
    let mut tracker = BudgetTracker::new(budget);
    let normalized = normalize(plan);
    let estimator = Estimator::with_rows_correction(obs, model.corrections.rows);

    // Columns referenced anywhere in the query: the safe retention set for
    // pruning rewrites.
    let mut referenced: BTreeSet<ColId> = BTreeSet::new();
    for (_, node) in normalized.plan.iter() {
        referenced_cols(&node.op, &mut referenced);
    }

    let ctx = TransformCtx {
        est: &estimator,
        referenced: &referenced,
    };

    let CompileScratch { memo, implement } = scratch;
    memo.clear();
    let root = memo.ingest(&normalized.plan, &estimator)?;
    let explore_added = {
        let _span =
            scope_trace::span_timed("compile.explore", scope_trace::Histogram::ExploreMicros);
        explore(memo, config, &ctx, &mut tracker)?
    };
    let outcome = {
        let _span =
            scope_trace::span_timed("compile.implement", scope_trace::Histogram::ImplementMicros);
        implement_with_model(memo, root, config, obs, &mut tracker, implement, model)?
    };
    if scope_trace::enabled() {
        scope_trace::record(scope_trace::Histogram::MemoGroups, memo.num_groups() as u64);
        scope_trace::record(scope_trace::Histogram::MemoExprs, memo.num_exprs() as u64);
        scope_trace::record(scope_trace::Histogram::CompileTasks, tracker.tasks());
    }

    // Marker rules fire on the normalized plan's operator-kind counts.
    let kind_counts = normalized.plan.op_counts();
    let mut fired = normalized.fired.union(&outcome.used_rules);
    fire_markers(config, &kind_counts, &mut fired);

    debug_assert!(
        fired
            .difference(&config.enabled().union(RuleCatalog::global().required()))
            .is_empty(),
        "signature must be a subset of enabled ∪ required"
    );

    // Every extracted plan must uphold the physical invariants; in debug
    // builds, all tests and experiments audit this for free.
    #[cfg(debug_assertions)]
    {
        let violations = crate::validate::validate_physical(&outcome.plan);
        debug_assert!(
            violations.is_empty(),
            "compiled plan violates invariants: {violations:?}\n{}",
            outcome.plan.render()
        );
    }

    Ok(CompiledPlan {
        est_cost: outcome.est_cost,
        est_cost_vec: outcome.est_cost_vec,
        plan: outcome.plan,
        signature: RuleSignature(fired),
        memo_groups: memo.num_groups(),
        memo_exprs: memo.num_exprs(),
        stats: CompileStats {
            tasks: tracker.tasks(),
            explore_added,
            memo_budget_rejections: memo.budget_rejections(),
            compile_micros: start.elapsed().as_micros() as u64,
        },
    })
}

/// Fire marker/guard/canonicalize rules against the normalized plan's
/// operator-kind counts, inserting them into `fired`. Shared by the live
/// compile path and the frozen [`crate::classic`] oracle so the signature
/// logic cannot drift between them.
pub(crate) fn fire_markers(
    config: &RuleConfig,
    kind_counts: &[u32; OpKind::COUNT],
    fired: &mut RuleSet,
) {
    let cat = RuleCatalog::global();
    for &marker_id in cat.markers() {
        let rule = cat.rule(marker_id);
        let required = cat.required().contains(marker_id);
        if !required && !config.is_enabled(marker_id) {
            continue;
        }
        let fires = match &rule.action {
            RuleAction::Canonicalize(kind) => {
                COMPLEX_KINDS.contains(kind) && kind_counts[*kind as usize] > 0
            }
            RuleAction::Guard { kind, min_count } | RuleAction::Marker { kind, min_count } => {
                kind_counts[*kind as usize] >= *min_count as u32
            }
            _ => false,
        };
        if fires {
            fired.insert(marker_id);
        }
    }
}

/// The effective configuration for a job: the base configuration plus the
/// customer's rule hints (§3.3 — hints are additive enables).
pub fn effective_config(job: &Job, base: &RuleConfig) -> RuleConfig {
    if job.hints.is_empty() {
        return base.clone();
    }
    let mut config = base.clone();
    for &raw in &job.hints {
        if (raw as usize) < crate::ruleset::NUM_RULES {
            config.enable(crate::ruleset::RuleId(raw));
        }
    }
    config
}

/// Compile a job (convenience wrapper deriving the observable catalog and
/// applying the job's customer hints on top of `config`).
pub fn compile_job(job: &Job, config: &RuleConfig) -> Result<CompiledPlan, CompileError> {
    let obs = job.catalog.observe();
    compile(&job.plan, &obs, &effective_config(job, config))
}

/// [`compile_job`] with an explicit per-compile resource budget.
pub fn compile_job_with_budget(
    job: &Job,
    config: &RuleConfig,
    budget: &CompileBudget,
) -> Result<CompiledPlan, CompileError> {
    let obs = job.catalog.observe();
    compile_with_budget(&job.plan, &obs, &effective_config(job, config), budget)
}

/// [`compile_job_with_budget`] under an explicit cost model.
pub fn compile_job_with_model(
    job: &Job,
    config: &RuleConfig,
    budget: &CompileBudget,
    model: &CostModel,
) -> Result<CompiledPlan, CompileError> {
    let obs = job.catalog.observe();
    compile_with_model(
        &job.plan,
        &obs,
        &effective_config(job, config),
        budget,
        model,
    )
}

/// [`compile_job_with_budget`] with panic isolation: a compile that
/// panics (e.g. a buggy rule interaction) is converted into a typed
/// [`CompileError::Panicked`] instead of unwinding into the caller — one
/// bad candidate configuration cannot kill a whole day's discovery search.
pub fn compile_job_guarded(
    job: &Job,
    config: &RuleConfig,
    budget: &CompileBudget,
) -> Result<CompiledPlan, CompileError> {
    catch_compile_panics(|| compile_job_with_budget(job, config, budget))
}

thread_local! {
    /// Depth of active [`catch_compile_panics`] scopes on this thread; the
    /// chained panic hook stays silent while it is non-zero.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Installed once: chains to the previous panic hook except inside a
/// [`catch_compile_panics`] scope, where the caught panic is expected and
/// stderr noise would drown discovery-run output.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_OUTPUT.with(std::cell::Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Run `f`, converting any panic into [`CompileError::Panicked`].
pub fn catch_compile_panics<T>(
    f: impl FnOnce() -> Result<T, CompileError>,
) -> Result<T, CompileError> {
    install_quiet_panic_hook();
    SUPPRESS_PANIC_OUTPUT.with(|c| c.set(c.get() + 1));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|c| c.set(c.get() - 1));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(CompileError::Panicked { message })
        }
    }
}

/// The set of operator kinds appearing in a compiled plan's *logical*
/// normalized form (diagnostic helper used by experiments).
pub fn normalized_kind_counts(plan: &PlanGraph) -> [u32; OpKind::COUNT] {
    normalize(plan).plan.op_counts()
}

/// Count, for a set of signatures, how many catalog rules never appear —
/// the "unused rules" statistic of Table 2.
pub fn unused_rules(signatures: &[RuleSignature]) -> RuleSet {
    let mut seen = RuleSet::EMPTY;
    for sig in signatures {
        seen = seen.union(&sig.0);
    }
    RuleSet::FULL.difference(&seen)
}
