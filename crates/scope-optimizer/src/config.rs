//! Rule configurations (Definition 3.1), rule signatures (Definition 3.2)
//! and RuleDiff (Definition 6.1).

use crate::rules::RuleCatalog;
use crate::ruleset::{RuleId, RuleSet};

/// Definition 3.1 — a bit vector specifying whether each rule is enabled
/// when optimizing a job. Required rules are clamped on: they can never be
/// disabled through this type.
///
/// ```
/// use scope_optimizer::{RuleCatalog, RuleConfig};
///
/// let cat = RuleCatalog::global();
/// let mut config = RuleConfig::default_config();
/// assert_eq!(config.disabled().len(), 46); // the off-by-default rules
///
/// // Steering: disable a join implementation, enable an off-by-default rule.
/// config.disable(cat.find("HashJoinImpl1").unwrap());
/// config.enable(cat.find("GroupbyOnJoin").unwrap());
/// let (newly_disabled, newly_enabled) = config.delta_from_default();
/// assert_eq!(newly_disabled.len(), 1);
/// assert_eq!(newly_enabled.len(), 1);
///
/// // Required rules cannot be turned off.
/// config.disable(cat.find("EnforceExchange").unwrap());
/// assert!(config.is_enabled(cat.find("EnforceExchange").unwrap()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RuleConfig {
    enabled: RuleSet,
}

impl RuleConfig {
    /// SCOPE's default configuration: everything enabled except the 46
    /// off-by-default rules.
    pub fn default_config() -> RuleConfig {
        let cat = RuleCatalog::global();
        RuleConfig {
            enabled: RuleSet::FULL.difference(cat.off_by_default()),
        }
    }

    /// Build from an explicit enabled set; required rules are forced on.
    pub fn from_enabled(enabled: RuleSet) -> RuleConfig {
        Self::normalized(enabled).0
    }

    /// Build from an explicit enabled set, reporting the normalization that
    /// was applied: the returned mask holds the required rules `enabled`
    /// tried to leave cleared (empty when `enabled` already honoured them).
    /// This is the only way bits enter a `RuleConfig` wholesale, so a
    /// config that clears required rules cannot be constructed — callers
    /// that care (lint, config ingestion) inspect the correction mask
    /// instead of re-deriving it at compile time.
    pub fn normalized(enabled: RuleSet) -> (RuleConfig, RuleSet) {
        let cat = RuleCatalog::global();
        let correction = cat.required().difference(&enabled);
        (
            RuleConfig {
                enabled: enabled.union(cat.required()),
            },
            correction,
        )
    }

    /// Whether `id` is enabled.
    #[inline]
    pub fn is_enabled(&self, id: RuleId) -> bool {
        self.enabled.contains(id)
    }

    /// Disable a rule. Disabling a required rule is a no-op (the paper's
    /// hints cannot turn those off either).
    pub fn disable(&mut self, id: RuleId) {
        if !RuleCatalog::global().required().contains(id) {
            self.enabled.remove(id);
        }
    }

    /// Disable every rule in `set` (required rules are skipped).
    pub fn disable_all(&mut self, set: &RuleSet) {
        let cat = RuleCatalog::global();
        self.enabled = self.enabled.difference(&set.difference(cat.required()));
    }

    /// Enable a rule.
    pub fn enable(&mut self, id: RuleId) {
        self.enabled.insert(id);
    }

    /// The enabled set.
    pub fn enabled(&self) -> &RuleSet {
        &self.enabled
    }

    /// The disabled set.
    pub fn disabled(&self) -> RuleSet {
        RuleSet::FULL.difference(&self.enabled)
    }

    /// Rules disabled here but not in the default configuration, and vice
    /// versa — a compact description of "what this config changes".
    pub fn delta_from_default(&self) -> (RuleSet, RuleSet) {
        let default = RuleConfig::default_config();
        let newly_disabled = default.enabled.difference(&self.enabled);
        let newly_enabled = self.enabled.difference(&default.enabled);
        (newly_disabled, newly_enabled)
    }
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Definition 3.2 — the set of rules that directly contributed to the final
/// query plan produced by the optimizer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RuleSignature(pub RuleSet);

impl RuleSignature {
    /// Rules that are *on* in this signature.
    pub fn on_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.0.iter()
    }

    /// Number of on rules.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no rule fired (only possible for degenerate plans).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: RuleId) -> bool {
        self.0.contains(id)
    }

    /// The paper's bit-vector rendering.
    pub fn to_bit_string(&self) -> String {
        self.0.to_bit_string()
    }
}

/// Definition 6.1 — which rule changes between two signatures *actually
/// impacted the query plan*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleDiff {
    /// Rules used by the default plan but not by the new plan.
    pub only_in_default: RuleSet,
    /// Rules used by the new plan but not by the default plan.
    pub only_in_new: RuleSet,
}

impl RuleDiff {
    /// Compare a default signature against a new configuration's signature.
    pub fn between(default_sig: &RuleSignature, new_sig: &RuleSignature) -> RuleDiff {
        RuleDiff {
            only_in_default: default_sig.0.difference(&new_sig.0),
            only_in_new: new_sig.0.difference(&default_sig.0),
        }
    }

    /// Whether the two plans used exactly the same rules.
    pub fn is_empty(&self) -> bool {
        self.only_in_default.is_empty() && self.only_in_new.is_empty()
    }

    /// Total number of differing rules.
    pub fn len(&self) -> usize {
        self.only_in_default.len() + self.only_in_new.len()
    }

    /// Fixed-width feature encoding used by the learned model (§7.2): for
    /// each rule, `-1` if only in default, `+1` if only in new, else `0`.
    pub fn to_feature_vec(&self) -> Vec<f64> {
        let mut v = vec![0.0; crate::ruleset::NUM_RULES];
        for id in self.only_in_default.iter() {
            v[id.index()] = -1.0;
        }
        for id in self.only_in_new.iter() {
            v[id.index()] = 1.0;
        }
        v
    }

    /// Human-readable summary with rule names.
    pub fn render(&self) -> String {
        let cat = RuleCatalog::global();
        let names = |set: &RuleSet| -> String {
            set.iter()
                .map(|id| cat.rule(id).name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "only in default plan: [{}]; only in new plan: [{}]",
            names(&self.only_in_default),
            names(&self.only_in_new)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleCategory;

    #[test]
    fn default_config_disables_exactly_off_by_default() {
        let cfg = RuleConfig::default_config();
        let cat = RuleCatalog::global();
        for rule in cat.rules() {
            let expect = rule.category != RuleCategory::OffByDefault;
            assert_eq!(cfg.is_enabled(rule.id), expect, "{}", rule.name);
        }
        assert_eq!(cfg.disabled().len(), 46);
    }

    #[test]
    fn required_rules_cannot_be_disabled() {
        let cat = RuleCatalog::global();
        let required_id = cat.find("EnforceExchange").unwrap();
        let mut cfg = RuleConfig::default_config();
        cfg.disable(required_id);
        assert!(cfg.is_enabled(required_id));
        // from_enabled clamps too.
        let cfg2 = RuleConfig::from_enabled(RuleSet::EMPTY);
        assert!(cfg2.is_enabled(required_id));
        assert_eq!(cfg2.enabled().len(), 37);
    }

    #[test]
    fn normalized_reports_the_applied_correction() {
        let cat = RuleCatalog::global();
        // Clearing everything: the correction is exactly the required set.
        let (cfg, correction) = RuleConfig::normalized(RuleSet::EMPTY);
        assert_eq!(correction, *cat.required());
        assert_eq!(*cfg.enabled(), *cat.required());
        // An already-normalized set needs no correction.
        let (cfg2, correction2) = RuleConfig::normalized(*cfg.enabled());
        assert!(correction2.is_empty());
        assert_eq!(cfg2, cfg);
        // A single cleared required bit is reported precisely.
        let req = cat.find("EnforceExchange").unwrap();
        let mut bits = *RuleConfig::default_config().enabled();
        bits.remove(req);
        let (cfg3, correction3) = RuleConfig::normalized(bits);
        assert_eq!(correction3.iter().collect::<Vec<_>>(), vec![req]);
        assert!(cfg3.is_enabled(req));
    }

    #[test]
    fn disable_all_skips_required() {
        let mut cfg = RuleConfig::default_config();
        cfg.disable_all(&RuleSet::FULL);
        assert_eq!(*cfg.enabled(), *RuleCatalog::global().required());
    }

    #[test]
    fn delta_from_default() {
        let cat = RuleCatalog::global();
        let on_rule = cat.find("CollapseSelects").unwrap();
        let off_rule = cat.find("GroupbyOnJoin").unwrap();
        let mut cfg = RuleConfig::default_config();
        cfg.disable(on_rule);
        cfg.enable(off_rule);
        let (newly_disabled, newly_enabled) = cfg.delta_from_default();
        assert_eq!(newly_disabled.iter().collect::<Vec<_>>(), vec![on_rule]);
        assert_eq!(newly_enabled.iter().collect::<Vec<_>>(), vec![off_rule]);
    }

    #[test]
    fn rule_diff_matches_definition() {
        let a = RuleSignature([RuleId(1), RuleId(2), RuleId(3)].into_iter().collect());
        let b = RuleSignature([RuleId(2), RuleId(3), RuleId(9)].into_iter().collect());
        let diff = RuleDiff::between(&a, &b);
        assert_eq!(
            diff.only_in_default.iter().collect::<Vec<_>>(),
            vec![RuleId(1)]
        );
        assert_eq!(diff.only_in_new.iter().collect::<Vec<_>>(), vec![RuleId(9)]);
        assert_eq!(diff.len(), 2);
        assert!(!diff.is_empty());
        assert!(RuleDiff::between(&a, &a).is_empty());
    }

    #[test]
    fn rule_diff_feature_vec_encoding() {
        let a = RuleSignature([RuleId(0)].into_iter().collect());
        let b = RuleSignature([RuleId(255)].into_iter().collect());
        let v = RuleDiff::between(&a, &b).to_feature_vec();
        assert_eq!(v[0], -1.0);
        assert_eq!(v[255], 1.0);
        assert_eq!(v.iter().filter(|&&x| x != 0.0).count(), 2);
    }

    #[test]
    fn signature_bit_string_has_on_rules() {
        let sig = RuleSignature([RuleId(0), RuleId(5)].into_iter().collect());
        let s = sig.to_bit_string();
        assert_eq!(&s[..6], "100001");
        assert_eq!(sig.len(), 2);
        assert!(sig.contains(RuleId(5)));
    }
}
