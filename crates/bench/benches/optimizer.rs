//! Criterion benches for the optimizer substrate: compilation latency under
//! the default configuration, span approximation, and signature machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scope_optimizer::{compile_job, RuleCatalog, RuleConfig, RuleSet};
use scope_workload::{Workload, WorkloadProfile};
use steer_core::approximate_span;

fn bench_compile(c: &mut Criterion) {
    let w = Workload::generate(WorkloadProfile::workload_a(0.05));
    let jobs = w.day(0);
    let config = RuleConfig::default_config();
    let mut group = c.benchmark_group("optimizer");
    group.bench_function("compile_default_single_job", |b| {
        let job = &jobs[0];
        b.iter(|| compile_job(job, &config).expect("compiles"));
    });
    group.bench_function("compile_default_day_50_jobs", |b| {
        b.iter(|| {
            let mut cost_sum = 0.0;
            for job in jobs.iter().take(50) {
                cost_sum += compile_job(job, &config).expect("compiles").est_cost;
            }
            cost_sum
        });
    });
    group.finish();
}

fn bench_span(c: &mut Criterion) {
    let w = Workload::generate(WorkloadProfile::workload_a(0.05));
    let jobs = w.day(0);
    c.bench_function("span/algorithm1_single_job", |b| {
        let job = &jobs[0];
        let obs = job.catalog.observe();
        b.iter(|| approximate_span(&job.plan, &obs));
    });
}

fn bench_ruleset(c: &mut Criterion) {
    let cat = RuleCatalog::global();
    let a = cat.non_required();
    let b_set = *cat.off_by_default();
    let mut group = c.benchmark_group("ruleset");
    group.bench_function("union_diff_iter", |bench| {
        bench.iter_batched(
            || (a, b_set),
            |(x, y)| {
                let u = x.union(&y);
                let d = x.difference(&y);
                u.iter().count() + d.iter().count()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("bit_string_roundtrip", |bench| {
        bench.iter(|| RuleSet::from_bit_string(&a.to_bit_string()).len());
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_span, bench_ruleset);
criterion_main!(benches);
