//! Criterion benches for the learning stack: featurization, forward pass,
//! and a short training run at paper-scale feature dimensionality.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use steer_learn::nn::Mlp;
use steer_learn::{normalize_targets, Normalizer};

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // Paper-sized input: job features + 10 configs × (1 + 256) ≈ 2700.
    let input = 2716;
    let mut mlp = Mlp::new(input, 256, 10, &mut rng);
    let x: Vec<f64> = (0..input).map(|i| (i % 7) as f64 / 7.0).collect();
    c.bench_function("nn/forward_2716x256x10", |b| {
        b.iter(|| mlp.predict(&x));
    });
    let xs = vec![x.clone(); 16];
    let ys = vec![normalize_targets(&[5.0, 3.0, 9.0, 1.0, 2.0, 8.0, 7.0, 6.0, 4.0, 2.5]); 16];
    c.bench_function("nn/train_batch16", |b| {
        b.iter(|| mlp.train_batch(&xs, &ys, 1e-3));
    });
}

fn bench_encoding(c: &mut Criterion) {
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| (0..2716).map(|j| ((i * j) % 101) as f64).collect())
        .collect();
    c.bench_function("encode/normalizer_fit_200x2716", |b| {
        b.iter(|| Normalizer::fit(&rows).dim());
    });
    let norm = Normalizer::fit(&rows);
    c.bench_function("encode/normalizer_transform", |b| {
        b.iter(|| norm.transform(&rows[0]).len());
    });
}

criterion_group!(benches, bench_mlp, bench_encoding);
criterion_main!(benches);
