//! Criterion benches for the execution simulator and the discovery
//! pipeline: A/B execution latency, candidate-configuration generation,
//! and end-to-end per-job analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_optimizer::{compile_job, RuleConfig};
use scope_workload::{Workload, WorkloadProfile};
use steer_core::{approximate_span, candidate_configs, Pipeline, PipelineParams};

fn bench_execute(c: &mut Criterion) {
    let w = Workload::generate(WorkloadProfile::workload_a(0.05));
    let jobs = w.day(0);
    let job = &jobs[0];
    let compiled = compile_job(job, &RuleConfig::default_config()).expect("compiles");
    let ab = ABTester::new(1);
    c.bench_function("exec/ab_run_single_plan", |b| {
        b.iter(|| ab.run(job, &compiled.plan, 0));
    });
}

fn bench_candidates(c: &mut Criterion) {
    let w = Workload::generate(WorkloadProfile::workload_a(0.05));
    let jobs = w.day(0);
    let job = &jobs[0];
    let obs = job.catalog.observe();
    let span = approximate_span(&job.plan, &obs);
    c.bench_function("search/generate_100_candidates", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            candidate_configs(&span, 100, &mut rng).len()
        });
    });
}

fn bench_analyze(c: &mut Criterion) {
    let w = Workload::generate(WorkloadProfile::workload_a(0.05));
    let jobs = w.day(0);
    let pipeline = Pipeline::new(
        ABTester::new(1),
        PipelineParams {
            m_candidates: 50,
            execute_top_k: 5,
            ..PipelineParams::default()
        },
    );
    // Use a job whose default run exists.
    let job = &jobs[0];
    let (compiled, metrics) = pipeline.default_run(job).expect("default run");
    c.bench_function("pipeline/analyze_job_50_candidates", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            pipeline.analyze_job(job, &compiled, metrics, &mut rng)
        });
    });
}

criterion_group!(benches, bench_execute, bench_candidates, bench_analyze);
criterion_main!(benches);
