//! Shared utilities for the experiment harnesses (see `src/bin/exp_*.rs`)
//! and the Criterion benches.

pub mod harness;
pub mod reporting;
