//! **Figure 7** — metric tension on Workload B: for each selected job, pick
//! the best configuration by (a) runtime, (b) CPU time, (c) IO time, and
//! report the induced change on *all three* metrics. Optimizing one metric
//! commonly regresses another.
//!
//! The paper's figure uses ~100 Workload B jobs; to reach comparable volume
//! at reproduction scale this experiment widens the runtime window and
//! samples every in-window job over several days.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig7 -- [--scale=0.1]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::{ABTester, Metric};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{DiscoveryReport, Pipeline};

fn main() {
    let scale = scale_arg();
    banner(
        "Figure 7",
        "metric trade-offs when selecting for runtime / CPU / IO (Workload B)",
    );
    let w = workload(WorkloadTag::B, scale);
    let mut params = pipeline_params(scale);
    params.min_runtime_s = 120.0;
    params.sample_frac = 1.0;
    let p = Pipeline::new(ABTester::new(AB_SEED), params);
    let mut rng = StdRng::seed_from_u64(0x716);
    let mut report = DiscoveryReport::default();
    for day in 0..4 {
        let jobs = w.day(day);
        let day_report = p.discover(&jobs, &mut rng);
        report.outcomes.extend(day_report.outcomes);
        report.not_selected += day_report.not_selected;
        report.out_of_window += day_report.out_of_window;
    }
    println!(
        "selected {} jobs over 4 days ({} in-window but not selected)",
        report.outcomes.len(),
        report.not_selected
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // The figure reproduces the paper's three metrics; the memory metric
    // exists for the feedback loop, not for this sweep.
    for select_by in [Metric::Runtime, Metric::CpuTime, Metric::IoTime] {
        let mut improved = [0usize; 3];
        let mut regressed = [0usize; 3];
        let mut n = 0usize;
        for o in &report.outcomes {
            let Some(changes) = o.change_when_optimizing(select_by) else {
                continue;
            };
            n += 1;
            csv.push(format!(
                "{},{},{:.2},{:.2},{:.2}",
                select_by.name(),
                o.job_id,
                changes[0],
                changes[1],
                changes[2]
            ));
            for (i, &ch) in changes.iter().enumerate() {
                if ch < -1.0 {
                    improved[i] += 1;
                } else if ch > 1.0 {
                    regressed[i] += 1;
                }
            }
        }
        rows.push(vec![
            format!("best {}", select_by.name()),
            n.to_string(),
            format!("{} / {}", improved[0], regressed[0]),
            format!("{} / {}", improved[1], regressed[1]),
            format!("{} / {}", improved[2], regressed[2]),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "selection",
                "jobs",
                "runtime imp/reg",
                "cpu imp/reg",
                "io imp/reg"
            ],
            &rows
        )
    );
    println!("Paper: selecting for runtime regresses CPU/IO on many jobs; selecting for CPU mostly clears CPU regressions but costs runtime — and symmetrically for IO.");
    let path = write_csv(
        "fig7_metric_tradeoffs.csv",
        "selection,job,runtime_pct,cpu_pct,io_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
