//! **Discovery throughput**: wall-clock of the parallel discovery scheduler
//! across worker counts and compile-cache sizes, against the serial
//! uncached pipeline as baseline. Discovery is compile-bound and
//! embarrassingly parallel across jobs, so throughput should scale with
//! cores while the fingerprint-keyed cache removes the redundant compiles
//! Algorithm 1 and the candidate search repeat — all without changing a
//! single reported result (verified per configuration against the serial
//! baseline's result fingerprint).
//!
//! Emits `results/BENCH_discovery.json` with jobs/sec, compiles avoided
//! (cache hits), and speedup vs serial for every swept configuration.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_throughput -- [--scale=1.0]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_steer_bench::harness::{available_threads, pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{
    banner, json_array, json_object, markdown_table, scale_arg, write_json,
};
use scope_workload::WorkloadTag;
use steer_core::{DiscoveryReport, Pipeline, PipelineParams};

/// Cache capacities swept at each worker count: uncached, the pipeline
/// default (which a full-scale day's working set overflows — FIFO replay
/// thrash is part of the story), and one large enough to hold every
/// successful compile of a full-scale day (~11k at scale 1.0).
const CACHE_CAPACITIES: [usize; 3] = [0, 4096, 32768];

struct SweepRow {
    threads: usize,
    cache_capacity: usize,
    /// `"cold"`: fresh cache. `"warm"`: the same day replayed on the cache
    /// the cold run populated — the recurring-job steady state, where every
    /// successful compile of the previous run is served from cache.
    phase: &'static str,
    /// Minimum wall-clock over the interleaved repetitions (robust to
    /// scheduler noise; each rep rebuilds the pipeline so cold stays cold).
    wall_s: f64,
    jobs_per_s: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    /// Failed shard `try_lock`s during the first rep — the direct measure
    /// of compile-cache lock contention the padded shards exist to kill.
    contended: u64,
    identical: bool,
}

/// Everything result-bearing in a report, rendered bit-exactly (timings and
/// cache stats excluded — they are the only fields allowed to vary).
fn result_fingerprint(r: &DiscoveryReport) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}",
        r.outcomes,
        r.not_selected,
        r.out_of_window,
        r.failed_defaults,
        r.failed_candidates,
        r.duplicate_plans,
        r.vetting,
    )
}

fn main() {
    let scale = scale_arg();
    banner(
        "DiscoveryThroughput",
        "parallel discovery + compile cache vs the serial uncached pipeline (Workload A, day 0)",
    );
    let w = workload(WorkloadTag::A, scale);
    let jobs = w.day(0);
    let cores = available_threads();
    // Always sweep 1/2/4/8 workers (so the scaling rows exist even on
    // small machines) plus the full core count on bigger ones.
    // Oversubscription is harmless: the fan-out clamps to the item count
    // and the OS timeslices compile-bound workers fairly — and with
    // per-worker scratch and striped counters it must also be *free*,
    // which the 4-vs-2-thread gate below enforces.
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    // Interleaved repetitions per configuration; each row reports the
    // minimum wall-clock, which strips scheduler noise without letting a
    // lucky run hide a real slowdown (a real slowdown slows every rep).
    let reps = 3;
    println!(
        "{} jobs, {} cores available; sweeping threads {:?} × cache {:?}, min of {} reps",
        jobs.len(),
        cores,
        thread_counts,
        CACHE_CAPACITIES,
        reps
    );

    // Warm-up: one untimed serial run so one-time process costs (allocator
    // pools, lazily-built catalogs) land outside every timed window.
    {
        let p = Pipeline::new(
            ABTester::new(AB_SEED),
            PipelineParams {
                n_threads: 1,
                cache_capacity: 0,
                ..pipeline_params(scale)
            },
        );
        let mut rng = StdRng::seed_from_u64(0x7410);
        let _ = p.discover(&jobs, &mut rng);
    }

    let mut rows: Vec<SweepRow> = Vec::new();
    let mut serial_wall = 0.0f64;
    let mut serial_fp = String::new();
    for &threads in &thread_counts {
        for cache_capacity in CACHE_CAPACITIES {
            // Cold run on a fresh cache; cached configurations then replay
            // the day warm (same seed), modelling the recurring-job steady
            // state the paper's workloads live in. Both phases must
            // reproduce the serial baseline's results bit-exactly.
            let phases: &[&'static str] = if cache_capacity == 0 {
                &["cold"]
            } else {
                &["cold", "warm"]
            };
            // One fresh pipeline per rep so every rep's cold phase really
            // is cold; fingerprints and cache stats come from the first
            // rep, walls are the per-phase minimum across reps.
            struct FirstRep {
                fp: String,
                hits: u64,
                misses: u64,
                hit_rate: f64,
                contended: u64,
            }
            let mut walls = vec![f64::INFINITY; phases.len()];
            let mut first: Vec<Option<FirstRep>> = Vec::new();
            first.resize_with(phases.len(), || None);
            for rep in 0..reps {
                let p = Pipeline::new(
                    ABTester::new(AB_SEED),
                    PipelineParams {
                        n_threads: threads,
                        cache_capacity,
                        ..pipeline_params(scale)
                    },
                );
                for (pi, _) in phases.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(0x7410);
                    let started = Instant::now();
                    let report = p.discover(&jobs, &mut rng);
                    let wall_s = started.elapsed().as_secs_f64();
                    walls[pi] = walls[pi].min(wall_s);
                    if rep == 0 {
                        first[pi] = Some(FirstRep {
                            fp: result_fingerprint(&report),
                            hits: report.cache.hits,
                            misses: report.cache.misses,
                            hit_rate: report.cache.hit_rate(),
                            contended: report.cache.contended,
                        });
                    }
                }
            }
            for (pi, &phase) in phases.iter().enumerate() {
                let FirstRep {
                    fp,
                    hits,
                    misses,
                    hit_rate,
                    contended,
                } = first[pi].take().expect("first rep ran");
                let wall_s = walls[pi];
                // The serial uncached run is both the speedup baseline and
                // the reference results every configuration must reproduce.
                if threads == 1 && cache_capacity == 0 {
                    serial_wall = wall_s;
                    serial_fp = fp.clone();
                }
                let row = SweepRow {
                    threads,
                    cache_capacity,
                    phase,
                    wall_s,
                    jobs_per_s: jobs.len() as f64 / wall_s.max(1e-9),
                    speedup: serial_wall / wall_s.max(1e-9),
                    hits,
                    misses,
                    hit_rate,
                    contended,
                    identical: fp == serial_fp,
                };
                println!(
                    "threads {:>2} cache {:>5} {:<4}: {:>6.2}s  {:>6.1} jobs/s  speedup {:>5.2}x  hits {:>5} ({:>4.1}%)  contended {:>3}  identical: {}",
                    row.threads,
                    row.cache_capacity,
                    row.phase,
                    row.wall_s,
                    row.jobs_per_s,
                    row.speedup,
                    row.hits,
                    100.0 * row.hit_rate,
                    row.contended,
                    row.identical
                );
                rows.push(row);
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                r.cache_capacity.to_string(),
                r.phase.to_string(),
                format!("{:.2}", r.wall_s),
                format!("{:.1}", r.jobs_per_s),
                format!("{:.2}x", r.speedup),
                r.hits.to_string(),
                format!("{:.1}%", 100.0 * r.hit_rate),
                r.contended.to_string(),
                r.identical.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "threads",
                "cache",
                "phase",
                "wall (s)",
                "jobs/s",
                "speedup",
                "compiles avoided",
                "hit rate",
                "lock contention",
                "identical results"
            ],
            &table
        )
    );

    let sweeps: Vec<String> = rows
        .iter()
        .map(|r| {
            json_object(&[
                ("threads", r.threads.to_string()),
                ("cache_capacity", r.cache_capacity.to_string()),
                ("phase", format!("\"{}\"", r.phase)),
                ("wall_s", format!("{:.4}", r.wall_s)),
                ("jobs_per_s", format!("{:.2}", r.jobs_per_s)),
                ("speedup_vs_serial", format!("{:.3}", r.speedup)),
                ("compiles_avoided", r.hits.to_string()),
                ("cache_misses", r.misses.to_string()),
                ("cache_hit_rate", format!("{:.4}", r.hit_rate)),
                ("lock_contention", r.contended.to_string()),
                ("identical_to_serial", r.identical.to_string()),
            ])
        })
        .collect();
    let best = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("at least the serial row");
    let body = json_object(&[
        ("experiment", "\"discovery_throughput\"".into()),
        ("scale", format!("{scale}")),
        ("n_jobs", jobs.len().to_string()),
        ("cores_available", cores.to_string()),
        ("serial_wall_s", format!("{:.4}", serial_wall)),
        ("best_speedup", format!("{:.3}", best.speedup)),
        ("best_threads", best.threads.to_string()),
        ("best_cache_capacity", best.cache_capacity.to_string()),
        (
            "all_identical_to_serial",
            rows.iter().all(|r| r.identical).to_string(),
        ),
        ("sweeps", json_array(&sweeps)),
    ]);
    let path = write_json("BENCH_discovery.json", &body);
    println!("wrote {}", path.display());

    if rows.iter().any(|r| !r.identical) {
        eprintln!("FAIL: some configuration changed discovery results");
        std::process::exit(1);
    }

    // Scaling gate: adding workers must never *cost* wall-clock. With
    // per-worker compile scratch, padded cache shards, and striped trace
    // counters there is nothing left for extra threads to fight over, so
    // even on a single-core machine (where they cannot help) 2→4 threads
    // must be free. Tolerance is sized to the noise floor of shared
    // single-core runners (back-to-back identical serial runs vary ±10%
    // even after min-of-reps): 15% relative plus 100ms absolute. A real
    // contention regression — the pre-rework failure mode this guards —
    // costs far more than that and grows with thread count.
    let cold_wall = |threads: usize| {
        rows.iter()
            .find(|r| r.threads == threads && r.cache_capacity == 0 && r.phase == "cold")
            .map(|r| r.wall_s)
    };
    if let (Some(w1), Some(w2), Some(w4)) = (cold_wall(1), cold_wall(2), cold_wall(4)) {
        for (lo, hi, label) in [(w1, w2, "1→2"), (w2, w4, "2→4")] {
            if hi > lo * 1.15 + 0.1 {
                eprintln!(
                    "FAIL: {label} threads regressed uncached cold wall ({lo:.3}s → {hi:.3}s, >15% tolerance) — contention is back"
                );
                std::process::exit(1);
            }
        }
    }
}
