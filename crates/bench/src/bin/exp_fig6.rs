//! **Figure 6** — per-job percentage runtime change from the default to the
//! best of the ten cheapest alternative configurations, for the jobs the
//! §6.1 heuristics selected (all three workloads).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig6 -- [--scale=0.1]`

use scope_ir::stats::{mean, median};
use scope_steer_bench::harness::run_discovery;
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner(
        "Figure 6",
        "best-alternative runtime change per selected job",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for tag in WorkloadTag::ALL {
        let report = run_discovery(tag, scale);
        let mut changes: Vec<f64> = report
            .outcomes
            .iter()
            .map(steer_core::pipeline::JobOutcome::best_runtime_change_pct)
            .collect();
        changes.sort_by(f64::total_cmp);
        for (i, ch) in changes.iter().enumerate() {
            csv.push(format!("{},{},{:.2}", tag.name(), i, ch));
        }
        let improved = changes.iter().filter(|&&c| c < 0.0).count();
        let big = changes.iter().filter(|&&c| c < -50.0).count();
        rows.push(vec![
            tag.name().to_string(),
            changes.len().to_string(),
            improved.to_string(),
            big.to_string(),
            format!("{:.1}", changes.first().copied().unwrap_or(0.0)),
            format!("{:.1}", median(&changes)),
            format!("{:.1}", mean(&changes)),
        ]);
        println!(
            "Workload {}: executed {} jobs; sorted best-alt changes: {:?}",
            tag.name(),
            changes.len(),
            changes
                .iter()
                .map(|c| format!("{c:.0}%"))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Workload",
                "jobs",
                "improved",
                "improved >50%",
                "best %",
                "median %",
                "mean %"
            ],
            &rows
        )
    );
    println!("Paper: a majority of executed jobs improve; tails reach ≈ −90%; workload C shows the smallest percentage magnitudes.");
    let path = write_csv("fig6_best_alt_change.csv", "workload,rank,change_pct", &csv);
    println!("wrote {}", path.display());
}
