//! **Table 2** — rule categories with statistics: rules per category and
//! how many were never used by any job of one day of Workload A.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_table2 -- [--scale=0.1]`

use scope_exec::ABTester;
use scope_optimizer::{RuleCatalog, RuleCategory, RuleSet};
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner(
        "Table 2",
        "rule categories and unused rules (Workload A, one day)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);

    let mut used = RuleSet::EMPTY;
    for c in &compiled {
        used = used.union(&c.compiled.signature.0);
    }

    let cat = RuleCatalog::global();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for category in RuleCategory::ALL {
        let in_cat: Vec<_> = cat
            .rules()
            .iter()
            .filter(|r| r.category == category)
            .collect();
        let unused = in_cat.iter().filter(|r| !used.contains(r.id)).count();
        let examples: Vec<&str> = in_cat
            .iter()
            .filter(|r| used.contains(r.id))
            .take(3)
            .map(|r| r.name.as_str())
            .collect();
        csv.push(format!("{},{},{}", category.name(), in_cat.len(), unused));
        rows.push(vec![
            category.name().to_string(),
            in_cat.len().to_string(),
            unused.to_string(),
            examples.join(", "),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["Category", "#Rules", "#Unused Rules", "Used examples"],
            &rows
        )
    );
    println!("Paper: Required 37/9 unused, Off-by-default 46/36, On-by-default 141/37, Implementation 32/4");
    let path = write_csv("table2.csv", "category,rules,unused", &csv);
    println!("wrote {}", path.display());
}
