//! **Table 4** — RuleDiff for the most-improved jobs of Workloads A and B:
//! which rules appear only in the default plan and only in the best plan
//! (Definition 6.1).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_table4 -- [--scale=0.1]`

use scope_exec::Metric;
use scope_optimizer::{RuleCatalog, RuleDiff};
use scope_steer_bench::harness::run_discovery;
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner(
        "Table 4",
        "RuleDiff for the best configurations of top-improving jobs",
    );
    let cat = RuleCatalog::global();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for tag in [WorkloadTag::A, WorkloadTag::B] {
        let report = run_discovery(tag, scale);
        let mut outcomes: Vec<_> = report.outcomes.iter().collect();
        outcomes.sort_by(|a, b| {
            a.best_runtime_change_pct()
                .total_cmp(&b.best_runtime_change_pct())
        });
        for (i, o) in outcomes.iter().take(3).enumerate() {
            let Some(best) = o.best_by(Metric::Runtime) else {
                continue;
            };
            let diff = RuleDiff::between(&o.group, &best.signature);
            let names = |set: &scope_optimizer::RuleSet| -> String {
                let v: Vec<String> = set.iter().map(|id| cat.rule(id).name.clone()).collect();
                if v.len() > 4 {
                    format!("{}, +{} more rules", v[..3].join(", "), v.len() - 3)
                } else if v.is_empty() {
                    "-".to_string()
                } else {
                    v.join(", ")
                }
            };
            let label = format!("Q{}{}", tag.name(), i + 1);
            let change = o.best_runtime_change_pct();
            csv.push(format!(
                "{label},{change:.1},\"{}\",\"{}\"",
                names(&diff.only_in_default),
                names(&diff.only_in_new)
            ));
            rows.push(vec![
                label,
                format!("{change:.0}%"),
                names(&diff.only_in_default),
                names(&diff.only_in_new),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "Job",
                "Runtime %change",
                "Rules only in default plan",
                "Rules only in best plan"
            ],
            &rows
        )
    );
    println!("Paper's motifs: disabled defaults vanish (disabling is crucial); alternative implementations appear (e.g. UnionAllToVirtualDataset replacing UnionAllToUnionAll); sometimes an off-by-default rule appears only in the best plan.");
    let path = write_csv(
        "table4_rulediff.csv",
        "job,change_pct,only_in_default,only_in_best",
        &csv,
    );
    println!("wrote {}", path.display());
}
