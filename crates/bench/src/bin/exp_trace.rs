//! **Tracing overhead + trace export**: runs discovery with the
//! `scope-trace` tracer off and on (alternating repetitions), verifies the
//! reports are bit-identical either way (tracing must never change
//! results), measures the wall-clock overhead of tracing (target < 2%
//! enabled; pure noise disabled), and exports the instrumented run as a
//! Chrome `trace_event` flamegraph plus an embedded [`MetricsSnapshot`].
//!
//! Emits `results/BENCH_trace.json` (overhead, candidate funnel, widest
//! spans, full metrics) and `results/trace_discovery.json` (load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_trace -- [--scale=1.0]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_ir::Job;
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{
    banner, json_array, json_object, markdown_table, scale_arg, write_json,
};
use scope_trace::{Counter, SpanEvent};
use scope_workload::WorkloadTag;
use steer_core::{DiscoveryReport, Pipeline};

/// Timed repetitions per tracer state (off/on alternate, so clock drift and
/// cache warmth hit both sides equally).
const REPS: usize = 3;

/// Everything result-bearing in a report, rendered bit-exactly (timings,
/// cache stats, and the metrics snapshot excluded — telemetry is the only
/// thing allowed to vary).
fn result_fingerprint(r: &DiscoveryReport) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}",
        r.outcomes,
        r.not_selected,
        r.out_of_window,
        r.failed_defaults,
        r.failed_candidates,
        r.duplicate_plans,
        r.vetting,
    )
}

/// One discovery run on a fresh pipeline (cold cache) with the standard
/// experiment seed; returns (wall seconds, report).
fn run_once(scale: f64, jobs: &[Job]) -> (f64, DiscoveryReport) {
    let p = Pipeline::new(ABTester::new(AB_SEED), pipeline_params(scale));
    let mut rng = StdRng::seed_from_u64(0x7ACE);
    let started = Instant::now();
    let report = p.discover(jobs, &mut rng);
    (started.elapsed().as_secs_f64(), report)
}

fn main() {
    let scale = scale_arg();
    banner(
        "TracingOverhead",
        "scope-trace on vs off over discovery (Workload A, day 0): identical results, bounded overhead",
    );
    let w = workload(WorkloadTag::A, scale);
    let jobs = w.day(0);
    println!(
        "{} jobs at scale {scale}; {REPS} reps per tracer state",
        jobs.len()
    );

    // Warmup run (untimed): page cache, allocator, branch predictors.
    scope_trace::set_enabled(false);
    let (_, warm_report) = run_once(scale, &jobs);
    let reference_fp = result_fingerprint(&warm_report);

    let mut off_walls = Vec::with_capacity(REPS);
    let mut on_walls = Vec::with_capacity(REPS);
    let mut traced_report: Option<DiscoveryReport> = None;
    let mut identical = true;
    for rep in 0..REPS {
        for &traced in &[false, true] {
            scope_trace::set_enabled(traced);
            if traced {
                // Clean slate so the exported trace and metrics cover
                // exactly the final instrumented run.
                scope_trace::reset();
            }
            let (wall, report) = run_once(scale, &jobs);
            scope_trace::set_enabled(false);
            let fp = result_fingerprint(&report);
            if fp != reference_fp {
                eprintln!("FAIL: rep {rep} traced={traced} changed discovery results");
                identical = false;
            }
            println!(
                "rep {rep} tracing {:<3}: {wall:>7.3}s",
                if traced { "on" } else { "off" }
            );
            if traced {
                on_walls.push(wall);
                traced_report = Some(report);
            } else {
                off_walls.push(wall);
            }
        }
    }
    let traced_report = traced_report.expect("at least one traced rep");
    let spans = scope_trace::take_spans();

    let best = |walls: &[f64]| walls.iter().copied().fold(f64::INFINITY, f64::min);
    let off_best = best(&off_walls);
    let on_best = best(&on_walls);
    let overhead_pct = 100.0 * (on_best - off_best) / off_best.max(1e-9);
    println!(
        "best wall: off {off_best:.3}s, on {on_best:.3}s → tracing overhead {overhead_pct:+.2}% (target < 2%)"
    );

    // The traced report must actually carry telemetry: a delta snapshot
    // with a populated candidate funnel and at least one span per job.
    let m = &traced_report.metrics;
    assert!(
        !m.is_empty(),
        "traced run produced an empty MetricsSnapshot"
    );
    let funnel: Vec<(&str, u64)> = [
        Counter::FunnelGenerated,
        Counter::FunnelStaticRejected,
        Counter::FunnelCacheHit,
        Counter::FunnelCompiled,
        Counter::FunnelCompileFailed,
        Counter::FunnelVetoed,
        Counter::FunnelDuplicate,
        Counter::FunnelExecuted,
    ]
    .iter()
    .map(|&c| (c.name(), m.counter(c)))
    .collect();
    println!(
        "candidate funnel: {}",
        funnel
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    assert!(
        m.counter(Counter::FunnelGenerated) > 0,
        "funnel recorded no candidates"
    );
    assert!(!spans.is_empty(), "traced run recorded no spans");

    // Top-10 widest spans of the instrumented run.
    let mut widest: Vec<&SpanEvent> = spans.iter().collect();
    widest.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.id.cmp(&b.id)));
    widest.truncate(10);
    let table: Vec<Vec<String>> = widest
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                format!("{:.3}", s.dur_us as f64 / 1000.0),
                format!("{:.3}", s.start_us as f64 / 1000.0),
                s.thread.to_string(),
                s.arg.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["span", "dur (ms)", "start (ms)", "thread", "arg"], &table)
    );

    let chrome = scope_trace::chrome_trace(&spans);
    let trace_path = write_json("trace_discovery.json", &chrome);
    println!("wrote {} ({} spans)", trace_path.display(), spans.len());

    let widest_json: Vec<String> = widest
        .iter()
        .map(|s| {
            json_object(&[
                ("name", format!("\"{}\"", s.name)),
                ("dur_us", s.dur_us.to_string()),
                ("start_us", s.start_us.to_string()),
                ("thread", s.thread.to_string()),
                ("arg", s.arg.to_string()),
            ])
        })
        .collect();
    let funnel_json: Vec<(&str, String)> =
        funnel.iter().map(|&(n, v)| (n, v.to_string())).collect();
    let body = json_object(&[
        ("experiment", "\"tracing_overhead\"".into()),
        ("scale", format!("{scale}")),
        ("n_jobs", jobs.len().to_string()),
        ("reps", REPS.to_string()),
        (
            "wall_off_s",
            json_array(
                &off_walls
                    .iter()
                    .map(|w| format!("{w:.4}"))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "wall_on_s",
            json_array(
                &on_walls
                    .iter()
                    .map(|w| format!("{w:.4}"))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("wall_off_best_s", format!("{off_best:.4}")),
        ("wall_on_best_s", format!("{on_best:.4}")),
        ("overhead_pct", format!("{overhead_pct:.3}")),
        ("identical_results", identical.to_string()),
        ("n_spans", spans.len().to_string()),
        ("widest_spans", json_array(&widest_json)),
        ("funnel", json_object(&funnel_json)),
        ("metrics", m.to_json()),
    ]);
    let path = write_json("BENCH_trace.json", &body);
    println!("wrote {}", path.display());

    if !identical {
        eprintln!("FAIL: tracing changed discovery results");
        std::process::exit(1);
    }
}
