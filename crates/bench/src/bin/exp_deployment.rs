//! **Deployment lifecycle** (§3.3 + §6.4): discover winning configurations
//! on day 0, minimize them into reviewable plan hints, install them in a
//! hint store, and track a week of re-validation — including the paper's
//! mitigation of drift ("re-running our pipeline every week") by
//! suspending any hint whose group starts regressing.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_deployment -- [--scale=0.3]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_steer_bench::harness::{pipeline, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{minimize_config, winning_configs, FlightConfig, FlightController};

fn main() {
    let scale = scale_arg();
    banner(
        "Deployment",
        "plan-hint lifecycle: discover → minimize → install → revalidate (Workload A)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let p = pipeline(scale);
    let mut rng = StdRng::seed_from_u64(0xDE9107);

    // Day 0: discovery.
    let day0 = w.day(0);
    let report = p.discover(&day0, &mut rng);
    let winners = winning_configs(&report.outcomes, 10.0);
    println!(
        "day 0: pipeline selected {} jobs, {} winning configurations (≥10% better)",
        report.outcomes.len(),
        winners.len()
    );

    // Minimize each winner into a reviewable hint.
    let mut minimized = Vec::new();
    let mut before = 0usize;
    let mut after = 0usize;
    for winner in &winners {
        let Some(job) = day0.iter().find(|j| j.id == winner.base_job) else {
            continue;
        };
        if let Some(min) = minimize_config(job, &winner.config) {
            before += min.deltas_before;
            after += min.deltas_after;
            let mut w = winner.clone();
            w.config = min.config;
            minimized.push(w);
        }
    }
    println!(
        "minimization: {} hints, total deltas {} → {} rules ({}x smaller)",
        minimized.len(),
        before,
        after,
        if after > 0 { before / after.max(1) } else { 0 }
    );

    // Install and revalidate over a week.
    // Offline experiment: expose the hints immediately (Deployed) but go
    // through the flight controller so installation is journaled.
    let mut flights = FlightController::new(FlightConfig::default());
    flights.ingest_deployed(&minimized, 0);
    let mut store = flights.store;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for day in 1..7 {
        let jobs = w.day(day);
        let r = store.revalidate(&jobs, &ab, day, 2.0);
        rows.push(vec![
            day.to_string(),
            r.groups_checked.to_string(),
            r.jobs_executed.to_string(),
            format!("{:+.1}%", r.mean_change_pct),
            r.groups_suspended.to_string(),
        ]);
        csv.push(format!(
            "{day},{},{},{:.2},{}",
            r.groups_checked, r.jobs_executed, r.mean_change_pct, r.groups_suspended
        ));
    }
    println!(
        "{}",
        markdown_table(
            &[
                "day",
                "groups checked",
                "jobs executed",
                "mean change",
                "suspended"
            ],
            &rows
        )
    );
    let active = store
        .hints()
        .filter(|h| h.status == steer_core::HintStatus::Active)
        .count();
    println!(
        "after one week: {} of {} hints still active; hint file below",
        active,
        store.len()
    );
    println!("{}", store.to_hint_text());
    let path = write_csv(
        "deployment_week.csv",
        "day,groups_checked,jobs_executed,mean_change_pct,suspended",
        &csv,
    );
    println!("wrote {}", path.display());
}
