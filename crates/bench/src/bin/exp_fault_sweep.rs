//! **Fault sweep**: how steering quality degrades as the cluster gets
//! less reliable. For each vertex-failure rate we run the full lifecycle —
//! discovery under faults on day 0, hint minimization + installation, then
//! a day of production traffic through the deployment guardrail — and
//! compare steered wall-clock against a default-only baseline on the same
//! faulty cluster. The guardrail's fallback-to-default keeps the steered
//! column from ever losing more than the wasted attempt (§3.3's "safe to
//! deploy" story, stress-tested).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fault_sweep -- [--scale=0.3]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::{ABTester, FaultProfile, RetryPolicy};
use scope_optimizer::{compile_job, RuleConfig};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{
    minimize_config, winning_configs, FlightConfig, FlightController, Pipeline, PipelineParams,
};

/// Vertex-level transient failure probabilities to sweep. 0 is the
/// fault-free control; the top end is an unhealthy cluster where most
/// wide stages lose at least one vertex.
const RATES: [f64; 6] = [0.0, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2];

struct SweepRow {
    rate: f64,
    selected: usize,
    failed_defaults: usize,
    failed_candidates: usize,
    winners: usize,
    steered: usize,
    fallbacks: usize,
    failed_jobs: usize,
    delta_pct: f64,
}

fn main() {
    let scale = scale_arg();
    banner(
        "FaultSweep",
        "steering quality vs cluster fault rate (Workload A, guardrail deployment)",
    );
    let policy = RetryPolicy::default();
    let mut rows = Vec::new();

    for rate in RATES {
        let profile = FaultProfile::with_vertex_failures(rate);
        let ab = ABTester::new(AB_SEED).with_faults(profile);
        let p = Pipeline::new(
            ab.clone(),
            PipelineParams {
                retry: policy.clone(),
                ..pipeline_params(scale)
            },
        );
        let w = workload(WorkloadTag::A, scale);

        // Day 0: discovery on the faulty cluster. Failed trials are
        // discarded by the pipeline, never promoted to hints.
        let day0 = w.day(0);
        let mut rng = StdRng::seed_from_u64(0xFA017);
        let report = p.discover(&day0, &mut rng);
        let raw_winners = winning_configs(&report.outcomes, 10.0);

        let mut minimized = Vec::new();
        for winner in &raw_winners {
            let Some(job) = day0.iter().find(|j| j.id == winner.base_job) else {
                continue;
            };
            if let Some(min) = minimize_config(job, &winner.config) {
                let mut m = winner.clone();
                m.config = min.config;
                minimized.push(m);
            }
        }
        let mut flights = FlightController::new(FlightConfig::default());
        flights.ingest_deployed(&minimized, 0);
        let store = flights.store;

        // Day 1: production traffic through the guardrail, vs a
        // default-only baseline on the same faulty cluster.
        let day1 = w.day(1);
        let default_cfg = RuleConfig::default_config();
        let mut steered = 0usize;
        let mut fallbacks = 0usize;
        let mut failed_jobs = 0usize;
        let mut guarded_total = 0.0f64;
        let mut baseline_total = 0.0f64;
        for job in &day1 {
            let Ok(default) = compile_job(job, &default_cfg) else {
                continue;
            };
            let Some(run) = store.run_with_guardrail(job, &ab, &policy) else {
                continue;
            };
            let base = ab.run_with_retry(job, &default.plan, 1, &policy);
            if !run.outcome.is_success() || !base.outcome.is_success() {
                // Even the fallback (or the baseline itself) died within
                // its retry budget: count it, but keep the totals to jobs
                // both sides finished.
                failed_jobs += 1;
                continue;
            }
            if run.steered {
                steered += 1;
            }
            if run.used_fallback {
                fallbacks += 1;
            }
            guarded_total += run.metrics.runtime;
            baseline_total += base.metrics.runtime;
        }
        let delta_pct = if baseline_total > 0.0 {
            (guarded_total - baseline_total) / baseline_total * 100.0
        } else {
            0.0
        };
        println!(
            "rate {rate:.0e}: {} selected, {} winners, day-1 steered {} / fallback {} / failed {} (Δ {:+.1}%)",
            report.outcomes.len(),
            minimized.len(),
            steered,
            fallbacks,
            failed_jobs,
            delta_pct
        );
        rows.push(SweepRow {
            rate,
            selected: report.outcomes.len(),
            failed_defaults: report.failed_defaults,
            failed_candidates: report.failed_candidates,
            winners: minimized.len(),
            steered,
            fallbacks,
            failed_jobs,
            delta_pct,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0e}", r.rate),
                r.selected.to_string(),
                r.failed_defaults.to_string(),
                r.failed_candidates.to_string(),
                r.winners.to_string(),
                r.steered.to_string(),
                r.fallbacks.to_string(),
                r.failed_jobs.to_string(),
                format!("{:+.1}%", r.delta_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "vertex p_fail",
                "jobs selected",
                "failed defaults",
                "failed trials",
                "hints",
                "steered",
                "fallbacks",
                "failed jobs",
                "Δ runtime vs default"
            ],
            &table
        )
    );
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{:.3}",
                r.rate,
                r.selected,
                r.failed_defaults,
                r.failed_candidates,
                r.winners,
                r.steered,
                r.fallbacks,
                r.failed_jobs,
                r.delta_pct
            )
        })
        .collect();
    let path = write_csv(
        "fault_sweep.csv",
        "vertex_failure_prob,jobs_selected,failed_defaults,failed_candidate_trials,hints,steered_jobs,fallback_jobs,failed_jobs,delta_runtime_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
