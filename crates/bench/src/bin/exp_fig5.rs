//! **Figure 5** — scatter of default estimated cost (x) versus runtime (y)
//! for all jobs of one Workload A day. The interesting population is the
//! top-left corner: low estimated cost, high runtime — jobs whose cost
//! model assumptions collapsed (§6.1's second selection heuristic).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig5 -- [--scale=0.1]`

use scope_exec::ABTester;
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner("Figure 5", "estimated cost vs runtime scatter (Workload A)");
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);

    let mut csv = Vec::new();
    let mut outliers = 0usize;
    let (mut sx, mut sy, mut sxy, mut sx2, mut sy2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let n = compiled.len() as f64;
    for c in &compiled {
        let x = c.compiled.est_cost.max(1e-3).ln();
        let y = c.metrics.runtime.max(1e-3).ln();
        sx += x;
        sy += y;
        sxy += x * y;
        sx2 += x * x;
        sy2 += y * y;
        // The paper's top-left corner: optimizer expected fast, reality slow.
        if c.metrics.runtime > 4.0 * c.compiled.est_cost && c.metrics.runtime > 300.0 {
            outliers += 1;
        }
        csv.push(format!(
            "{:.3},{:.1}",
            c.compiled.est_cost, c.metrics.runtime
        ));
    }
    let corr =
        (n * sxy - sx * sy) / ((n * sx2 - sx * sx).sqrt() * (n * sy2 - sy * sy).sqrt()).max(1e-12);
    println!(
        "jobs: {}; log-log correlation(cost, runtime) = {corr:.2}; low-cost/high-runtime outliers: {outliers} ({:.1}%)",
        compiled.len(),
        100.0 * outliers as f64 / n
    );
    println!("Paper: costs broadly track runtimes but a visible top-left population exists.");
    let path = write_csv("fig5_cost_vs_runtime.csv", "est_cost,runtime_s", &csv);
    println!("wrote {}", path.display());
}
