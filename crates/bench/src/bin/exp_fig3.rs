//! **Figure 3** — average number of rules (±1 std) in each job's span,
//! grouped by rule category (one day of Workload A).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig3 -- [--scale=0.1]`

use scope_exec::ABTester;
use scope_ir::stats::{mean, std_dev};
use scope_optimizer::RuleCategory;
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::approximate_span;

fn main() {
    let scale = scale_arg();
    banner("Figure 3", "span size per rule category (Workload A)");
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);

    let categories = [
        RuleCategory::OffByDefault,
        RuleCategory::OnByDefault,
        RuleCategory::Implementation,
    ];
    let mut per_cat: Vec<Vec<f64>> = vec![Vec::new(); categories.len()];
    let mut totals: Vec<f64> = Vec::new();
    // Spans are a per-job property; a sample suffices for the statistics.
    let sample = compiled.iter().step_by(2.max(compiled.len() / 200));
    for c in sample {
        let obs = c.job.catalog.observe();
        let span = approximate_span(&c.job.plan, &obs);
        totals.push(span.len() as f64);
        for (i, cat) in categories.iter().enumerate() {
            per_cat[i].push(span.in_category(*cat).len() as f64);
        }
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, cat) in categories.iter().enumerate() {
        rows.push(vec![
            cat.name().to_string(),
            format!("{:.1}", mean(&per_cat[i])),
            format!("{:.1}", std_dev(&per_cat[i])),
        ]);
        csv.push(format!(
            "{},{:.3},{:.3}",
            cat.name(),
            mean(&per_cat[i]),
            std_dev(&per_cat[i])
        ));
    }
    rows.push(vec![
        "All non-required".into(),
        format!("{:.1}", mean(&totals)),
        format!("{:.1}", std_dev(&totals)),
    ]);
    csv.push(format!("all,{:.3},{:.3}", mean(&totals), std_dev(&totals)));
    println!(
        "{}",
        markdown_table(&["Category", "mean span rules", "std"], &rows)
    );
    println!("Paper: on average up to ~20 rules per job across the 219 non-required rules.");
    let path = write_csv("fig3_span_by_category.csv", "category,mean,std", &csv);
    println!("wrote {} ({} jobs sampled)", path.display(), totals.len());
}
