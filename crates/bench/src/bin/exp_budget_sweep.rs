//! **Compile-budget sweep**: steering quality vs the per-candidate compile
//! budget. For each task budget we run the full lifecycle — discovery with
//! guarded, budgeted candidate recompiles on day 0, hint minimization +
//! installation, then a day of production traffic through the deployment
//! guardrail (with the same budget on its steered compiles) — and compare
//! steered wall-clock against a default-only baseline. Small budgets starve
//! the candidate search (everything is discarded as over-budget, nothing is
//! discovered); large ones recover the unlimited-budget steering wins while
//! still bounding the cost of any individual rogue compile.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_budget_sweep -- [--scale=0.3]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::{ABTester, RetryPolicy};
use scope_optimizer::{compile_job, CompileBudget, RuleConfig};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{
    minimize_config, winning_configs, FlightConfig, FlightController, Pipeline, PipelineParams,
};

/// Per-candidate task budgets to sweep, `None` = unlimited control. The low
/// end rejects every recompile; the knee sits where typical explore +
/// implement task counts fit.
const BUDGETS: [Option<u64>; 6] = [
    Some(300),
    Some(1_000),
    Some(3_000),
    Some(10_000),
    Some(30_000),
    None,
];

struct SweepRow {
    budget: Option<u64>,
    selected: usize,
    over_budget: usize,
    filtered: usize,
    winners: usize,
    steered: usize,
    vetoed: usize,
    delta_pct: f64,
}

fn budget_label(b: Option<u64>) -> String {
    match b {
        Some(n) => n.to_string(),
        None => "unlimited".into(),
    }
}

fn main() {
    let scale = scale_arg();
    banner(
        "BudgetSweep",
        "steering quality vs per-candidate compile budget (Workload A, guardrail deployment)",
    );
    let policy = RetryPolicy::default();
    let ab = ABTester::new(AB_SEED);
    let w = workload(WorkloadTag::A, scale);
    let mut rows = Vec::new();

    for budget_tasks in BUDGETS {
        let budget = match budget_tasks {
            Some(n) => CompileBudget::with_max_tasks(n),
            None => CompileBudget::UNLIMITED,
        };
        let p = Pipeline::new(
            ab.clone(),
            PipelineParams {
                retry: policy.clone(),
                compile_budget: budget,
                ..pipeline_params(scale)
            },
        );

        // Day 0: discovery with budgeted, guarded candidate recompiles.
        // Over-budget candidates are discarded and counted, never executed.
        let day0 = w.day(0);
        let mut rng = StdRng::seed_from_u64(0xB0D6E7);
        let report = p.discover(&day0, &mut rng);
        let raw_winners = winning_configs(&report.outcomes, 10.0);

        let mut minimized = Vec::new();
        for winner in &raw_winners {
            let Some(job) = day0.iter().find(|j| j.id == winner.base_job) else {
                continue;
            };
            if let Some(min) = minimize_config(job, &winner.config) {
                let mut m = winner.clone();
                m.config = min.config;
                minimized.push(m);
            }
        }
        let mut flights = FlightController::new(FlightConfig::default());
        flights.store.compile_budget = budget;
        flights.ingest_deployed(&minimized, 0);
        let store = flights.store;

        // Day 1: production traffic through the guardrail (same budget on
        // steered compiles), vs a default-only baseline.
        let day1 = w.day(1);
        let default_cfg = RuleConfig::default_config();
        let mut steered = 0usize;
        let mut vetoed = 0usize;
        let mut guarded_total = 0.0f64;
        let mut baseline_total = 0.0f64;
        for job in &day1 {
            let Ok(default) = compile_job(job, &default_cfg) else {
                continue;
            };
            let Some(run) = store.run_with_guardrail(job, &ab, &policy) else {
                continue;
            };
            let base = ab.run_with_retry(job, &default.plan, 1, &policy);
            if !run.outcome.is_success() || !base.outcome.is_success() {
                continue;
            }
            if run.steered {
                steered += 1;
            }
            if run.vetoed {
                vetoed += 1;
            }
            guarded_total += run.metrics.runtime;
            baseline_total += base.metrics.runtime;
        }
        let delta_pct = if baseline_total > 0.0 {
            (guarded_total - baseline_total) / baseline_total * 100.0
        } else {
            0.0
        };
        println!(
            "budget {}: {} selected, {} over-budget / {} filtered trials, {} hints, day-1 steered {} / vetoed {} (Δ {:+.1}%)",
            budget_label(budget_tasks),
            report.outcomes.len(),
            report.vetting.over_budget,
            report.vetting.total(),
            minimized.len(),
            steered,
            vetoed,
            delta_pct
        );
        rows.push(SweepRow {
            budget: budget_tasks,
            selected: report.outcomes.len(),
            over_budget: report.vetting.over_budget,
            filtered: report.vetting.total(),
            winners: minimized.len(),
            steered,
            vetoed,
            delta_pct,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                budget_label(r.budget),
                r.selected.to_string(),
                r.over_budget.to_string(),
                r.filtered.to_string(),
                r.winners.to_string(),
                r.steered.to_string(),
                r.vetoed.to_string(),
                format!("{:+.1}%", r.delta_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "task budget",
                "jobs selected",
                "over-budget trials",
                "filtered trials",
                "hints",
                "steered",
                "vetoed",
                "Δ runtime vs default"
            ],
            &table
        )
    );
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{:.3}",
                r.budget.map(|b| b as i64).unwrap_or(-1),
                r.selected,
                r.over_budget,
                r.filtered,
                r.winners,
                r.steered,
                r.vetoed,
                r.delta_pct
            )
        })
        .collect();
    let path = write_csv(
        "budget_sweep.csv",
        "task_budget,jobs_selected,over_budget_trials,filtered_trials,hints,steered_jobs,vetoed_jobs,delta_runtime_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
