//! **§6.2, "When the cost model is completely wrong"** — the paper's
//! control experiment: for twenty random jobs, execute *randomly selected*
//! candidate configurations (instead of the ten cheapest) and count how
//! often a random plan beats the default. The paper found only one
//! significantly-better plan this way, concluding that the cost model —
//! imperfect as it is — is still the right selection signal.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_random_configs -- [--scale=1.0]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_optimizer::compile_job;
use scope_steer_bench::harness::{compile_day, pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{approximate_span, candidate_configs};

fn main() {
    let scale = scale_arg();
    banner(
        "§6.2 control",
        "randomly selected configurations instead of the cheapest (20 random jobs, Workload A)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);
    let params = pipeline_params(scale);

    let mut rng = StdRng::seed_from_u64(0x62C0);
    let mut jobs: Vec<_> = compiled
        .iter()
        .filter(|c| c.metrics.runtime > 300.0 && c.metrics.runtime < 3600.0)
        .collect();
    jobs.shuffle(&mut rng);
    jobs.truncate(20);

    let per_job = 10usize; // "several randomly selected candidates"
    let mut csv = Vec::new();
    let mut sig_better = 0usize;
    let mut any_better = 0usize;
    let mut cheapest_sig_better = 0usize;
    for t in &jobs {
        let obs = t.job.catalog.observe();
        let span = approximate_span(&t.job.plan, &obs);
        let mut configs = candidate_configs(&span, params.m_candidates, &mut rng);

        // Random selection: shuffle, take the first `per_job` that compile.
        configs.shuffle(&mut rng);
        let mut random_best = f64::INFINITY;
        let mut executed = 0usize;
        let mut compiled_alts = Vec::new();
        for config in &configs {
            if let Ok(c) = compile_job(&t.job, config) {
                compiled_alts.push(c);
            }
        }
        for c in compiled_alts.iter().take(per_job) {
            executed += 1;
            let m = ab.run(&t.job, &c.plan, 0);
            random_best = random_best.min(m.runtime);
        }
        // Cost-guided selection on the same candidate pool, for contrast.
        compiled_alts.sort_by(|a, b| a.est_cost.total_cmp(&b.est_cost));
        let mut cheap_best = f64::INFINITY;
        for c in compiled_alts.iter().take(per_job) {
            let m = ab.run(&t.job, &c.plan, 0);
            cheap_best = cheap_best.min(m.runtime);
        }

        let random_change = 100.0 * (random_best - t.metrics.runtime) / t.metrics.runtime;
        let cheap_change = 100.0 * (cheap_best - t.metrics.runtime) / t.metrics.runtime;
        if random_change < -50.0 {
            sig_better += 1;
        }
        if random_change < -5.0 {
            any_better += 1;
        }
        if cheap_change < -50.0 {
            cheapest_sig_better += 1;
        }
        csv.push(format!(
            "{},{:.1},{executed},{random_change:.2},{cheap_change:.2}",
            t.job.id, t.metrics.runtime
        ));
    }
    println!(
        "random selection: {}/{} jobs significantly better (>50%), {} modestly better (>5%)",
        sig_better,
        jobs.len(),
        any_better
    );
    println!(
        "cost-guided selection on the same pools: {}/{} jobs significantly better",
        cheapest_sig_better,
        jobs.len()
    );
    println!(
        "Paper: random selection found only ONE significantly-better plan across twenty jobs."
    );
    println!(
        "Divergence: in this reproduction improvements are DENSE in the candidate space — each planted \
         trap has a single cause, so a large fraction of span configurations fixes it and random \
         selection wins easily (cost-guided selection even trails it, because skew fixes are \
         invisible to the cost model). Production mis-estimates are more idiosyncratic, making good \
         configurations the needles the paper describes. See EXPERIMENTS.md."
    );
    let path = write_csv(
        "random_configs.csv",
        "job,default_runtime_s,executed,random_best_change_pct,cheapest_best_change_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
