//! **Flighting**: does staged rollout contain a planted regression, and
//! does the journal survive a crash? Four scenarios over Workload A:
//!
//! 1. *Steady state* — healthy winners flighted across five serving seeds;
//!    the monitors must never fire (no false rollbacks).
//! 2. *Canary regression* — the environment shifts under one hint's
//!    steered plans ([`SLOWDOWN`]×) from day 1, while the hint is still
//!    canarying. The monitors must roll it back having exposed well under
//!    10% of that hint's traffic to the regression.
//! 3. *Deployed regression* — the same shift hits a hint that is already
//!    Deployed (serving 100%, no shadow baselines). Background
//!    revalidation is its only monitoring and must still catch it.
//! 4. *Crash recovery* — a torn journal write mid-run; recovery must
//!    reconstruct bit-identical state from the durable prefix.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_flighting -- [--scale=1.0]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::{plan_fingerprint, ABTester, CrashPlan, FaultProfile, RetryPolicy};
use scope_optimizer::{compile_job, compile_job_guarded, CompileBudget, RuleConfig};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, json_object, markdown_table, scale_arg, write_json};
use scope_workload::{Workload, WorkloadTag};
use steer_core::{
    minimize_config, winning_configs, FlightConfig, FlightController, GroupConfig, HintStatus,
    Pipeline,
};

/// Days of production traffic served through the flight layer.
const DAYS: u32 = 6;
/// Serving seeds for the steady-state false-rollback check.
const SERVING_SEEDS: [u64; 5] = [AB_SEED, 7, 23, 71, 113];
/// Planted slowdown on the victim's steered plans. The net day-mean the
/// monitor sees is diluted twice — by the hint's genuine improvement
/// (often −50% and more on the plans it actually changes) and by group
/// members whose steered plan equals the default (change ≈ 0) — so the
/// raw factor must be large for the *net* to read as a clear incident.
const SLOWDOWN: f64 = 5.0;

struct Discovered {
    workload: Workload,
    winners: Vec<GroupConfig>,
}

fn discover(scale: f64) -> Discovered {
    let ab = ABTester::new(AB_SEED);
    let p = Pipeline::new(ab, pipeline_params(scale));
    let w = workload(WorkloadTag::A, scale);
    let day0 = w.day(0);
    let mut rng = StdRng::seed_from_u64(0xF11617);
    let report = p.discover(&day0, &mut rng);
    let mut minimized = Vec::new();
    for winner in &winning_configs(&report.outcomes, 10.0) {
        let Some(job) = day0.iter().find(|j| j.id == winner.base_job) else {
            continue;
        };
        if let Some(min) = minimize_config(job, &winner.config) {
            let mut m = winner.clone();
            m.config = min.config;
            minimized.push(m);
        }
    }
    Discovered {
        workload: w,
        winners: minimized,
    }
}

/// The hints the controller will actually serve: `ingest` keeps only the
/// best winner per group, so targeting a raw winner's config could plant
/// the regression on plans the store never steers onto.
fn stored_hints(d: &Discovered) -> Vec<(String, RuleConfig)> {
    let mut reference = FlightController::new(FlightConfig::default());
    reference.ingest(&d.winners, 0);
    reference
        .store
        .hints()
        .filter(|h| h.status == HintStatus::Active)
        .map(|h| (h.group.clone(), h.config.clone()))
        .collect()
}

/// Matching jobs over the serving window whose steered plan actually
/// differs from the default. Only those can regress under a plan-targeted
/// shift — group members steered onto an identical plan observe ~0% change
/// and dilute the day mean the monitor sees.
fn distinct_plan_jobs(workload: &Workload, key: &str, config: &RuleConfig) -> usize {
    let mut distinct = 0usize;
    for day in 1..=DAYS {
        for job in &workload.day(day) {
            let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                continue;
            };
            if default.signature.to_bit_string() != key {
                continue;
            }
            let Ok(steered) = compile_job_guarded(job, config, &CompileBudget::default()) else {
                continue;
            };
            if plan_fingerprint(&steered.plan) != plan_fingerprint(&default.plan) {
                distinct += 1;
            }
        }
    }
    distinct
}

/// The stored hint with the most traffic the planted regression can
/// actually touch: jobs steered onto a plan that differs from the default.
fn pick_victim(d: &Discovered) -> Option<(String, RuleConfig)> {
    stored_hints(d)
        .into_iter()
        .map(|(key, config)| {
            let distinct = distinct_plan_jobs(&d.workload, &key, &config);
            (key, config, distinct)
        })
        .filter(|(_, _, distinct)| *distinct > 0)
        .max_by_key(|(_, _, distinct)| *distinct)
        .map(|(key, config, _)| (key, config))
}

/// Fault profile slowing every plan the victim hint steers onto (and only
/// plans that differ from the default — identical plans slow both sides of
/// the comparison and cancel out).
fn planted_faults(workload: &Workload, key: &str, config: &RuleConfig) -> FaultProfile {
    let mut fps: Vec<(u64, f64)> = Vec::new();
    for day in 1..=DAYS {
        for job in &workload.day(day) {
            let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                continue;
            };
            if default.signature.to_bit_string() != key {
                continue;
            }
            let Ok(steered) = compile_job_guarded(job, config, &CompileBudget::default()) else {
                continue;
            };
            let fp = plan_fingerprint(&steered.plan);
            if fp != plan_fingerprint(&default.plan) && !fps.iter().any(|&(f, _)| f == fp) {
                fps.push((fp, SLOWDOWN));
            }
        }
    }
    FaultProfile::with_slowdown_plans(fps)
}

struct FlightRun {
    rollback_day: Option<u32>,
    rollbacks: usize,
    victim_matching: usize,
    victim_steered: usize,
    snapshot: String,
    journal: String,
}

/// Drive the day-by-day pipeline: serve, background-revalidate, advance.
fn fly(
    d: &Discovered,
    ab: &ABTester,
    config: FlightConfig,
    deployed: bool,
    victim_key: Option<&str>,
    crash: Option<CrashPlan>,
) -> FlightRun {
    let mut c = FlightController::new(config);
    // Armed before ingest so the tear point counts from the first journal
    // write — install and stage events alone guarantee it fires.
    if let Some(plan) = crash {
        c.arm_crash(plan);
    }
    if deployed {
        c.ingest_deployed(&d.winners, 0);
    } else {
        c.ingest(&d.winners, 0);
    }
    c.advance(0);
    let policy = RetryPolicy::no_retries();
    let mut run = FlightRun {
        rollback_day: None,
        rollbacks: 0,
        victim_matching: 0,
        victim_steered: 0,
        snapshot: String::new(),
        journal: String::new(),
    };
    for day in 1..=DAYS {
        let jobs = d.workload.day(day);
        let report = c.serve_day(&jobs, ab, &policy, day);
        if let Some(stats) = victim_key.and_then(|k| report.by_group.get(k)) {
            run.victim_matching += stats.matching;
            run.victim_steered += stats.steered;
            println!(
                "  day {day}: victim matching {} steered {} observed {} mean {:+.1}%",
                stats.matching, stats.steered, stats.observed, stats.mean_change_pct
            );
        }
        c.revalidate_background(&jobs, ab, day);
        let advance = c.advance(day);
        if !advance.rollbacks.is_empty() {
            run.rollbacks += advance.rollbacks.len();
            if run.rollback_day.is_none()
                && victim_key.is_none_or(|k| advance.rollbacks.iter().any(|g| g == k))
            {
                run.rollback_day = Some(day);
            }
        }
    }
    run.snapshot = c.snapshot_text();
    run.journal = c.journal_text();
    run
}

fn main() {
    let scale = scale_arg();
    banner(
        "Flighting",
        "staged canary rollout: regression containment, auto-rollback, crash recovery",
    );
    let d = discover(scale);
    println!("discovered {} minimized winners", d.winners.len());
    let gate = scale >= 0.5;
    if d.winners.is_empty() {
        // Nothing to flight at this scale; leave a stub result so CI still
        // has an artifact to upload.
        assert!(!gate, "full-scale discovery must surface winners");
        let path = write_json(
            "BENCH_flighting.json",
            &json_object(&[
                ("scale", format!("{scale}")),
                ("winners", "0".to_string()),
                ("skipped", "true".to_string()),
            ]),
        );
        println!("no winners at this scale; wrote stub {}", path.display());
        return;
    }

    // ── Scenario 1: steady state, five serving seeds, no false rollbacks.
    let mut false_rollbacks = 0usize;
    for seed in SERVING_SEEDS {
        let ab = ABTester::new(seed);
        let run = fly(&d, &ab, FlightConfig::default(), false, None, None);
        false_rollbacks += run.rollbacks;
    }
    println!(
        "steady state: {} rollbacks across {} serving seeds",
        false_rollbacks,
        SERVING_SEEDS.len()
    );
    if gate {
        assert_eq!(
            false_rollbacks, 0,
            "steady-state serving must not roll back"
        );
    }

    // ── Scenario 2: regression planted while the victim is canarying.
    let victim = pick_victim(&d);
    let (canary_row, deployed_row) = if let Some((key, victim_config)) = victim {
        let faults = planted_faults(&d.workload, &key, &victim_config);
        let has_distinct_plans = !faults.is_none();
        let ab = ABTester::new(AB_SEED).with_faults(faults);

        let canary = fly(&d, &ab, FlightConfig::default(), false, Some(&key), None);
        let containment = if canary.victim_matching > 0 {
            canary.victim_steered as f64 / canary.victim_matching as f64
        } else {
            0.0
        };
        println!(
            "canary regression: victim {} — rollback day {:?}, {} of {} jobs affected ({:.1}% of the hint's traffic)",
            &key[..12.min(key.len())],
            canary.rollback_day,
            canary.victim_steered,
            canary.victim_matching,
            containment * 100.0
        );
        if gate && has_distinct_plans {
            assert!(
                canary.rollback_day.is_some(),
                "planted canary regression must roll back"
            );
            assert!(
                containment < 0.10,
                "canary containment {containment:.3} must stay under 10%"
            );
        }

        // ── Scenario 3: the same shift against an already-Deployed hint,
        // with a revalidation budget that samples each flight at least
        // every other day.
        let config = FlightConfig {
            revalidation_budget: d.winners.len().div_ceil(2).max(2),
            ..FlightConfig::default()
        };
        let deployed = fly(&d, &ab, config, true, Some(&key), None);
        println!(
            "deployed regression: rollback day {:?} (background revalidation only)",
            deployed.rollback_day
        );
        if gate && has_distinct_plans {
            assert!(
                deployed.rollback_day.is_some(),
                "background revalidation must catch a deployed regression"
            );
        }
        (
            vec![
                "canary regression".to_string(),
                fmt_day(canary.rollback_day),
                format!("{:.1}%", containment * 100.0),
            ],
            vec![
                "deployed regression".to_string(),
                fmt_day(deployed.rollback_day),
                "100% until caught".to_string(),
            ],
        )
    } else {
        println!("no winner had recurring traffic at this scale; regression scenarios skipped");
        (
            vec!["canary regression".into(), "skipped".into(), "-".into()],
            vec!["deployed regression".into(), "skipped".into(), "-".into()],
        )
    };

    // ── Scenario 4: crash recovery (always asserted, any scale).
    let ab = ABTester::new(AB_SEED);
    let healthy = fly(&d, &ab, FlightConfig::default(), false, None, None);
    let (recovered, report) =
        FlightController::recover(None, &healthy.journal, FlightConfig::default())
            .expect("healthy journal must recover");
    assert_eq!(
        recovered.snapshot_text(),
        healthy.snapshot,
        "recovery must reconstruct bit-identical state"
    );
    // Every winner contributes one install (at ingest) and one stage event
    // (at the day-0 advance), so tearing the 2N-th write fires at any
    // scale that discovered at least one winner.
    let guaranteed = 2 * d.winners.len() as u64;
    let torn = fly(
        &d,
        &ab,
        FlightConfig::default(),
        false,
        None,
        Some(CrashPlan::after_ops(guaranteed.saturating_sub(1), 9)),
    );
    let (rec_torn, torn_report) =
        FlightController::recover(None, &torn.journal, FlightConfig::default())
            .expect("torn journal must recover");
    assert_eq!(
        torn_report.discarded_lines, 1,
        "exactly the torn line is lost"
    );
    let durable = torn.journal.lines().count() - 1;
    let prefix: String = healthy
        .journal
        .lines()
        .take(durable)
        .collect::<Vec<_>>()
        .join("\n");
    let (rec_prefix, _) = FlightController::recover(None, &prefix, FlightConfig::default())
        .expect("durable prefix must recover");
    assert_eq!(
        rec_torn.snapshot_text(),
        rec_prefix.snapshot_text(),
        "torn-tail recovery must equal the durable prefix"
    );
    println!(
        "crash recovery: {} events replayed bit-identically; torn write truncated cleanly",
        report.replayed_events
    );

    let rows = vec![
        vec![
            "steady state (5 seeds)".to_string(),
            if false_rollbacks == 0 {
                "none".into()
            } else {
                false_rollbacks.to_string()
            },
            "-".to_string(),
        ],
        canary_row.clone(),
        deployed_row.clone(),
        vec![
            "crash recovery".to_string(),
            "-".to_string(),
            format!("{} events replayed", report.replayed_events),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["scenario", "rollback", "traffic affected / notes"], &rows)
    );

    let body = json_object(&[
        ("scale", format!("{scale}")),
        ("winners", d.winners.len().to_string()),
        ("serving_days", DAYS.to_string()),
        ("steady_state_seeds", SERVING_SEEDS.len().to_string()),
        ("steady_state_rollbacks", false_rollbacks.to_string()),
        ("canary_rollback_day", format!("\"{}\"", canary_row[1])),
        ("canary_traffic_affected", format!("\"{}\"", canary_row[2])),
        ("deployed_rollback_day", format!("\"{}\"", deployed_row[1])),
        ("recovered_events", report.replayed_events.to_string()),
        ("recovery_bit_identical", "true".to_string()),
    ]);
    let path = write_json("BENCH_flighting.json", &body);
    println!("wrote {}", path.display());
}

fn fmt_day(day: Option<u32>) -> String {
    day.map_or_else(|| "never".to_string(), |d| format!("day {d}"))
}
