//! **Ablations** for the paper's §8 future-work directions:
//!
//! 1. *Feedback-guided configuration search* — reweight category sampling
//!    towards rule categories that produced winners in earlier rounds,
//!    versus the paper's pure random search, at equal compile budget.
//! 2. *Span quality* — Algorithm 1's iterative span versus exhaustive
//!    single-rule probing (disable one rule at a time): coverage and
//!    compile cost.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_ablation_search -- [--scale=0.1]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_exec::ABTester;
use scope_optimizer::{compile_job, RuleCatalog, RuleCategory, RuleConfig, RuleSet};
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::approximate_span;

/// Random search with optional per-category weights (feedback).
fn sample_config<R: Rng + ?Sized>(
    span_by_cat: &[RuleSet; 3],
    weights: &[f64; 3],
    rng: &mut R,
) -> RuleConfig {
    let full = RuleCatalog::global().non_required();
    let mut disabled = RuleSet::EMPTY;
    for (rules, w) in span_by_cat.iter().zip(weights.iter()) {
        let rate = (rng.gen_range(0.05..0.75) * w).clamp(0.0, 0.95);
        for id in rules.iter() {
            if rng.gen_bool(rate) {
                disabled.insert(id);
            }
        }
    }
    RuleConfig::from_enabled(full.difference(&disabled))
}

fn main() {
    let scale = scale_arg();
    banner(
        "Ablation",
        "feedback-guided search and span-quality ablations (§8 future work)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);
    let targets: Vec<_> = compiled
        .iter()
        .filter(|c| c.metrics.runtime > 300.0 && c.metrics.runtime < 3600.0)
        .take(12)
        .collect();
    println!("ablation targets: {} jobs", targets.len());

    let cat = RuleCatalog::global();
    let categories = [
        RuleCategory::OffByDefault,
        RuleCategory::OnByDefault,
        RuleCategory::Implementation,
    ];

    // ---- Ablation 1: feedback-guided vs pure random search ----
    let budget = 60usize; // recompiles per job per strategy
    let rounds = 4usize;
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for feedback in [false, true] {
        let mut total_best_change = 0.0;
        let mut wins = 0usize;
        for t in &targets {
            let obs = t.job.catalog.observe();
            let span = approximate_span(&t.job.plan, &obs);
            let span_by_cat: [RuleSet; 3] = [
                span.in_category(categories[0]),
                span.in_category(categories[1]),
                span.in_category(categories[2]),
            ];
            let mut rng = StdRng::seed_from_u64(t.job.id.0 ^ feedback as u64);
            let mut weights = [1.0f64; 3];
            let mut best = t.metrics.runtime;
            for _round in 0..rounds {
                let mut round_gain = [0.0f64; 3];
                for _ in 0..budget / rounds {
                    let config = sample_config(&span_by_cat, &weights, &mut rng);
                    let Ok(c) = compile_job(&t.job, &config) else {
                        continue;
                    };
                    if c.est_cost >= t.compiled.est_cost {
                        continue; // only execute promising plans
                    }
                    let m = ab.run(&t.job, &c.plan, 0);
                    if m.runtime < best {
                        let gain = best - m.runtime;
                        best = m.runtime;
                        // Attribute the gain to categories whose rules were
                        // disabled by this configuration.
                        let disabled = config.disabled();
                        for (i, rules) in span_by_cat.iter().enumerate() {
                            if !disabled.intersection(rules).is_empty() {
                                round_gain[i] += gain;
                            }
                        }
                    }
                }
                if feedback {
                    // Reweight: categories that produced gains get sampled
                    // harder next round.
                    let total: f64 = round_gain.iter().sum();
                    if total > 0.0 {
                        for i in 0..3 {
                            weights[i] = (0.5 + 1.5 * round_gain[i] / total).clamp(0.25, 2.0);
                        }
                    }
                }
            }
            let change = 100.0 * (best - t.metrics.runtime) / t.metrics.runtime;
            total_best_change += change;
            if change < -5.0 {
                wins += 1;
            }
            csv.push(format!("{},{},{:.2}", feedback, t.job.id, change));
        }
        rows.push(vec![
            if feedback {
                "feedback-guided"
            } else {
                "pure random"
            }
            .to_string(),
            budget.to_string(),
            wins.to_string(),
            format!("{:.1}%", total_best_change / targets.len().max(1) as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "search strategy",
                "compiles/job",
                "jobs improved >5%",
                "mean best change"
            ],
            &rows
        )
    );
    write_csv("ablation_search.csv", "feedback,job,best_change_pct", &csv);

    // ---- Ablation 2: Algorithm 1 span vs exhaustive single-rule probing ----
    let mut rows2 = Vec::new();
    let mut alg1_sizes = 0usize;
    let mut alg1_compiles = 0usize;
    let mut probe_sizes = 0usize;
    let probe_compiles_per_job = cat.non_required().len();
    for t in targets.iter().take(6) {
        let obs = t.job.catalog.observe();
        let span = approximate_span(&t.job.plan, &obs);
        alg1_sizes += span.len();
        alg1_compiles += span.iterations;

        // Exhaustive: disable each non-required rule individually; it is in
        // the probed span if the signature changes.
        let baseline = compile_job(&t.job, &RuleConfig::default_config())
            .expect("default compiles")
            .signature;
        let mut probed = RuleSet::EMPTY;
        for id in cat.non_required().iter() {
            let mut config = RuleConfig::from_enabled(cat.non_required());
            config.disable(id);
            match compile_job(&t.job, &config) {
                Ok(c) => {
                    if (c.signature != baseline || baseline.contains(id))
                        && (baseline.contains(id) || c.signature.contains(id))
                    {
                        probed.insert(id);
                    }
                }
                Err(_) => {
                    probed.insert(id); // disabling it breaks the job
                }
            }
        }
        probe_sizes += probed.len();
    }
    rows2.push(vec![
        "Algorithm 1 (iterative)".into(),
        format!("{:.1}", alg1_sizes as f64 / 6.0),
        format!("{:.0}", alg1_compiles as f64 / 6.0),
    ]);
    rows2.push(vec![
        "single-rule probing".into(),
        format!("{:.1}", probe_sizes as f64 / 6.0),
        format!("{probe_compiles_per_job}"),
    ]);
    println!(
        "{}",
        markdown_table(
            &["span method", "mean span size", "compiles per job"],
            &rows2
        )
    );
    println!("Algorithm 1 reaches comparable coverage at a fraction of the compile budget — the paper's rationale for the iterative heuristic.");
}
