//! **Static lint vs dynamic retirement**: how much of the candidate
//! filtering that discovery does with compiles could `scope-lint` have done
//! with none. For every sampled job the harness classifies each candidate
//! configuration statically (`Valid | Redundant | Dead | Invalid`), then
//! compiles it anyway as ground truth, giving a verdict-vs-outcome
//! confusion matrix and three hard checks:
//!
//! 1. **Soundness** — a statically-`Invalid` config that compiles cleanly
//!    is a lint bug; the run fails (exit 1).
//! 2. **Canonical equivalence** — a `Redundant` config must compile to the
//!    same signature, cost, and task count as its canonical projection.
//! 3. **End-to-end determinism** — a full discovery run with the lint gate
//!    on must reproduce the gate-off run bit-for-bit (static counters
//!    aside), while retiring/folding candidates before compile.
//!
//! The probe class: disabling `OutputImpl` (every plan has an `Output`
//! root, it has the only implementation, and no rewrite escapes the kind)
//! must always be statically retired — the "≥1 statically-retired
//! candidate class" of the experiment brief.
//!
//! Emits `results/BENCH_lint.json`.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_lint -- [--scale=1.0]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_ir::OpKind;
use scope_lint::{ConfigVerdict, JobLint, RuleGraph};
use scope_optimizer::{compile_job, RuleConfig};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{
    banner, json_array, json_object, markdown_table, scale_arg, write_json,
};
use scope_workload::WorkloadTag;
use steer_core::{approximate_span, candidate_configs, DiscoveryReport, Pipeline, PipelineParams};

/// Candidate-classification tallies, split by ground-truth compile outcome.
#[derive(Default)]
struct Confusion {
    valid_ok: usize,
    valid_err: usize,
    redundant_ok: usize,
    redundant_err: usize,
    dead_ok: usize,
    dead_err: usize,
    invalid_err: usize,
    /// Statically-Invalid configs that compiled cleanly — lint bugs.
    invalid_ok: usize,
}

impl Confusion {
    fn total(&self) -> usize {
        self.valid_ok
            + self.valid_err
            + self.redundant_ok
            + self.redundant_err
            + self.dead_ok
            + self.dead_err
            + self.invalid_err
            + self.invalid_ok
    }
}

/// Everything result-bearing in a report with the static-analyzer counters
/// zeroed, so gate-on and gate-off runs can be compared bit-exactly.
fn lint_insensitive_fingerprint(r: &DiscoveryReport) -> String {
    let mut vetting = r.vetting;
    vetting.static_invalid = 0;
    vetting.static_redundant = 0;
    let outcomes: Vec<_> = r
        .outcomes
        .iter()
        .map(|o| {
            let mut o = o.clone();
            o.vetting.static_invalid = 0;
            o.vetting.static_redundant = 0;
            o
        })
        .collect();
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}",
        outcomes,
        r.not_selected,
        r.out_of_window,
        r.failed_defaults,
        r.failed_candidates,
        r.duplicate_plans,
        vetting,
    )
}

fn main() {
    let scale = scale_arg();
    banner(
        "StaticLint",
        "scope-lint verdicts vs ground-truth compiles, plus gated vs ungated discovery (Workload A, day 0)",
    );
    let w = workload(WorkloadTag::A, scale);
    let jobs = w.day(0);
    // Ground-truthing compiles every candidate twice-over (once here, once
    // as the canonical projection for Redundant verdicts), so sample a
    // bounded slice of the day.
    let sampled: Vec<_> = jobs.iter().take(40).collect();
    let m = pipeline_params(scale).m_candidates.min(200);
    println!(
        "{} jobs in the day; ground-truthing {} jobs x up to {} candidates",
        jobs.len(),
        sampled.len(),
        m
    );

    let mut rng = StdRng::seed_from_u64(0x11f7);
    let mut confusion = Confusion::default();
    let mut equivalence_checked = 0usize;
    let mut equivalence_ok = 0usize;
    for job in &sampled {
        let obs = job.catalog.observe();
        let span = approximate_span(&job.plan, &obs);
        let configs = candidate_configs(&span, m, &mut rng);
        let lint = JobLint::new(&job.plan);
        for config in configs {
            let verdict = lint.classify(&config);
            let compiled = compile_job(job, &config);
            match (&verdict, &compiled) {
                (ConfigVerdict::Valid, Ok(_)) => confusion.valid_ok += 1,
                (ConfigVerdict::Valid, Err(_)) => confusion.valid_err += 1,
                (ConfigVerdict::Redundant { .. }, Ok(_)) => confusion.redundant_ok += 1,
                (ConfigVerdict::Redundant { .. }, Err(_)) => confusion.redundant_err += 1,
                (ConfigVerdict::Dead { .. }, Ok(_)) => confusion.dead_ok += 1,
                (ConfigVerdict::Dead { .. }, Err(_)) => confusion.dead_err += 1,
                (ConfigVerdict::Invalid { .. }, Err(_)) => confusion.invalid_err += 1,
                (ConfigVerdict::Invalid { .. }, Ok(_)) => confusion.invalid_ok += 1,
            }
            if let (ConfigVerdict::Redundant { canonical }, Ok(c)) = (&verdict, &compiled) {
                equivalence_checked += 1;
                let projected = RuleConfig::from_enabled(*canonical);
                if let Ok(p) = compile_job(job, &projected) {
                    if p.signature == c.signature
                        && p.est_cost == c.est_cost
                        && p.stats.tasks == c.stats.tasks
                    {
                        equivalence_ok += 1;
                    }
                }
            }
        }
    }
    let total = confusion.total();
    let static_retired = confusion.invalid_err + confusion.invalid_ok;
    let static_rate = static_retired as f64 / total.max(1) as f64;
    println!(
        "{}",
        markdown_table(
            &["verdict", "compile ok", "compile err"],
            &[
                vec![
                    "valid".into(),
                    confusion.valid_ok.to_string(),
                    confusion.valid_err.to_string()
                ],
                vec![
                    "redundant".into(),
                    confusion.redundant_ok.to_string(),
                    confusion.redundant_err.to_string()
                ],
                vec![
                    "dead".into(),
                    confusion.dead_ok.to_string(),
                    confusion.dead_err.to_string()
                ],
                vec![
                    "invalid".into(),
                    confusion.invalid_ok.to_string(),
                    confusion.invalid_err.to_string()
                ],
            ]
        )
    );
    println!(
        "statically retired {static_retired}/{total} candidates ({:.1}%); canonical equivalence {}/{}",
        100.0 * static_rate,
        equivalence_ok,
        equivalence_checked
    );

    // The guaranteed statically-retired class: OutputImpl disabled.
    let mut probe = RuleConfig::default_config();
    for id in RuleGraph::global().impls(OpKind::Output).iter() {
        probe.disable(id);
    }
    let probe_job = sampled.first().expect("day 0 is never empty");
    let probe_verdict = JobLint::new(&probe_job.plan).classify(&probe);
    let probe_static = matches!(probe_verdict, ConfigVerdict::Invalid { .. });
    let probe_dynamic = compile_job(probe_job, &probe).is_err();
    println!(
        "OutputImpl-disabled probe: statically invalid = {probe_static}, compile fails = {probe_dynamic}"
    );

    // End-to-end: gated vs ungated discovery over the full day.
    let run = |lint_gate: bool| {
        let p = Pipeline::new(
            ABTester::new(AB_SEED),
            PipelineParams {
                lint_gate,
                ..pipeline_params(scale)
            },
        );
        let mut rng = StdRng::seed_from_u64(0x11f7);
        let started = Instant::now();
        let report = p.discover(&jobs, &mut rng);
        (report, started.elapsed().as_secs_f64())
    };
    let (gated, gated_s) = run(true);
    let (ungated, ungated_s) = run(false);
    let identical = lint_insensitive_fingerprint(&gated) == lint_insensitive_fingerprint(&ungated);
    println!(
        "discovery: gate on {:.2}s (static_invalid {}, static_redundant {}, dynamic {}), gate off {:.2}s; identical results: {}",
        gated_s,
        gated.vetting.static_invalid,
        gated.vetting.static_redundant,
        gated.dynamic_rejections(),
        ungated_s,
        identical
    );

    let confusion_json = json_object(&[
        ("valid_ok", confusion.valid_ok.to_string()),
        ("valid_err", confusion.valid_err.to_string()),
        ("redundant_ok", confusion.redundant_ok.to_string()),
        ("redundant_err", confusion.redundant_err.to_string()),
        ("dead_ok", confusion.dead_ok.to_string()),
        ("dead_err", confusion.dead_err.to_string()),
        ("invalid_err", confusion.invalid_err.to_string()),
        ("invalid_ok", confusion.invalid_ok.to_string()),
    ]);
    let discovery_json = json_array(&[
        json_object(&[
            ("lint_gate", "true".into()),
            ("wall_s", format!("{gated_s:.4}")),
            ("static_invalid", gated.vetting.static_invalid.to_string()),
            (
                "static_redundant",
                gated.vetting.static_redundant.to_string(),
            ),
            ("dynamic_rejections", gated.dynamic_rejections().to_string()),
        ]),
        json_object(&[
            ("lint_gate", "false".into()),
            ("wall_s", format!("{ungated_s:.4}")),
            (
                "dynamic_rejections",
                ungated.dynamic_rejections().to_string(),
            ),
        ]),
    ]);
    let body = json_object(&[
        ("experiment", "\"static_lint\"".into()),
        ("scale", format!("{scale}")),
        ("jobs_ground_truthed", sampled.len().to_string()),
        ("candidates_classified", total.to_string()),
        ("statically_retired", static_retired.to_string()),
        ("static_rejection_rate", format!("{static_rate:.4}")),
        (
            "unsound_invalid_compiled_ok",
            confusion.invalid_ok.to_string(),
        ),
        ("equivalence_checked", equivalence_checked.to_string()),
        ("equivalence_ok", equivalence_ok.to_string()),
        ("probe_output_impl_static", probe_static.to_string()),
        ("probe_output_impl_dynamic", probe_dynamic.to_string()),
        ("identical_discovery_results", identical.to_string()),
        ("confusion", confusion_json),
        ("discovery", discovery_json),
    ]);
    let path = write_json("BENCH_lint.json", &body);
    println!("wrote {}", path.display());

    let mut failed = false;
    if confusion.invalid_ok > 0 {
        eprintln!(
            "FAIL: {} statically-Invalid configs compiled cleanly (lint unsound)",
            confusion.invalid_ok
        );
        failed = true;
    }
    if equivalence_ok != equivalence_checked {
        eprintln!(
            "FAIL: {}/{} Redundant configs did not match their canonical projection",
            equivalence_checked - equivalence_ok,
            equivalence_checked
        );
        failed = true;
    }
    if !probe_static || !probe_dynamic {
        eprintln!("FAIL: OutputImpl-disabled probe was not retired as expected");
        failed = true;
    }
    if !identical {
        eprintln!("FAIL: the lint gate changed discovery results");
        failed = true;
    }
    if gated.vetting.static_total() == 0 {
        eprintln!("FAIL: the lint gate never fired during discovery");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
