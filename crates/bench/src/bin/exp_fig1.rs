//! **Figure 1** — one fixed rule configuration, discovered once, applied to
//! recurring same-group jobs over a week of Workload A: percentage runtime
//! change per job (the paper's 65 production jobs improving 50–90%).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig1 -- [--scale=0.1]`

use scope_exec::ABTester;
use scope_ir::Job;
use scope_steer_bench::harness::{run_discovery, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{extrapolate, winning_configs};

fn main() {
    let scale = scale_arg();
    banner(
        "Figure 1",
        "one winning configuration applied to a job group across 7 days (Workload A)",
    );
    let report = run_discovery(WorkloadTag::A, scale);
    let winners = winning_configs(&report.outcomes, 20.0);
    assert!(
        !winners.is_empty(),
        "discovery found no ≥20% winners; increase scale"
    );

    // The paper's figure tracks the *same* configuration across a week; we
    // extrapolate every strong winner and report the group with the most
    // matches.
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let days: Vec<Vec<Job>> = (0..7).map(|d| w.day(d)).collect();
    let all_jobs: Vec<&Job> = days.iter().flatten().collect();
    let runs = extrapolate(&winners, &all_jobs, &ab);

    // Group runs by signature; pick the group with the most applications.
    use std::collections::HashMap;
    let mut by_group: HashMap<String, Vec<&steer_core::ExtrapolatedRun>> = HashMap::new();
    for r in &runs {
        by_group.entry(r.group.to_bit_string()).or_default().push(r);
    }
    let (key, best_group) = by_group
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("at least one group");

    let mut csv = Vec::new();
    let mut improved = 0usize;
    println!(
        "largest extrapolated group: {} jobs across 7 days (signature {}...)",
        best_group.len(),
        &key[..24]
    );
    for (i, r) in best_group.iter().enumerate() {
        if r.change_pct < 0.0 {
            improved += 1;
        }
        csv.push(format!(
            "{i},{},{},{:.1},{:.1},{:.2}",
            r.day, r.job_id, r.default_runtime, r.steered_runtime, r.change_pct
        ));
    }
    let changes: Vec<f64> = best_group.iter().map(|r| r.change_pct).collect();
    let sorted = {
        let mut s = changes.clone();
        s.sort_by(f64::total_cmp);
        s
    };
    println!(
        "improved {improved}/{} jobs; change percentiles: best {:.0}%, median {:.0}%, worst {:.0}%",
        best_group.len(),
        sorted.first().unwrap_or(&0.0),
        sorted.get(sorted.len() / 2).unwrap_or(&0.0),
        sorted.last().unwrap_or(&0.0)
    );
    println!(
        "all extrapolated runs (all groups): {} jobs, {} improved",
        runs.len(),
        runs.iter().filter(|r| r.change_pct < 0.0).count()
    );
    println!("Paper: 65 jobs over one week, all improved, 50–90% faster.");
    let path = write_csv(
        "fig1_extrapolated_group.csv",
        "rank,day,job,default_s,steered_s,change_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
