//! **Table 1** — production workloads used through the paper: number of
//! jobs, unique templates, unique inputs, and unique rule signatures per
//! workload for one day.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_table1 -- [--scale=0.1]`

use std::collections::HashSet;

use scope_exec::ABTester;
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner(
        "Table 1",
        &format!("workload statistics for one day (scale {scale})"),
    );
    let ab = ABTester::new(AB_SEED);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut totals = [0usize; 4];
    for tag in WorkloadTag::ALL {
        let w = workload(tag, scale);
        let compiled = compile_day(&w, 0, &ab);
        let jobs = compiled.len();
        let templates: HashSet<_> = compiled.iter().map(|c| c.job.template).collect();
        let inputs: HashSet<u64> = compiled
            .iter()
            .flat_map(|c| c.job.inputs.iter().map(|i| i.name_hash))
            .collect();
        let signatures: HashSet<String> = compiled
            .iter()
            .map(|c| c.compiled.signature.to_bit_string())
            .collect();
        totals[0] += jobs;
        totals[1] += templates.len();
        totals[2] += inputs.len();
        totals[3] += signatures.len();
        csv.push(format!(
            "{},{},{},{},{}",
            tag.name(),
            jobs,
            templates.len(),
            inputs.len(),
            signatures.len()
        ));
        rows.push(vec![
            tag.name().to_string(),
            jobs.to_string(),
            templates.len().to_string(),
            inputs.len().to_string(),
            signatures.len().to_string(),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
    ]);
    println!(
        "{}",
        markdown_table(
            &[
                "Workload",
                "# Jobs",
                "# Unique Templates",
                "# Unique Inputs",
                "# Unique rule signatures",
            ],
            &rows
        )
    );
    println!(
        "Paper (scale 1/100 of production): A 950/480/290/130, B 150/105/90/8, C 400/220/185/25 (approx.)"
    );
    let path = write_csv(
        "table1.csv",
        "workload,jobs,templates,inputs,signatures",
        &csv,
    );
    println!("wrote {}", path.display());
}
