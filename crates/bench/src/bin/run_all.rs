//! Run the full experiment battery (every table and figure) by invoking
//! each experiment binary in sequence. Results land in `results/` and the
//! combined stdout is what EXPERIMENTS.md records.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin run_all -- [--scale=1.0]`

use std::process::Command;

const EXPERIMENTS: [&str; 26] = [
    "exp_table1",
    "exp_table2",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_table3",
    "exp_table4",
    "exp_fig1",
    "exp_learning",
    "exp_ablation_search",
    "exp_ablation_learning",
    "exp_deployment",
    "exp_random_configs",
    "exp_fault_sweep",
    "exp_budget_sweep",
    "exp_compile_micro",
    "exp_throughput",
    "exp_lint",
    "exp_trace",
    "exp_flighting",
    "exp_serving",
    "exp_bounds",
    "exp_cost_feedback",
];

fn main() {
    let scale = scope_steer_bench::reporting::scale_arg();
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failed = Vec::new();
    let started = std::time::Instant::now();
    for exp in EXPERIMENTS {
        println!("\n──────────────────────── {exp} ────────────────────────");
        let status = Command::new(bin_dir.join(exp))
            .arg(format!("--scale={scale}"))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failed.push(exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to start: {e}");
                failed.push(exp);
            }
        }
    }
    println!(
        "\nran {} experiments in {:?}; failures: {:?}",
        EXPERIMENTS.len(),
        started.elapsed(),
        failed
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
