//! **Figure 2** — distributions over one day of Workload A:
//! (a) job runtimes, (b) how frequently each rule is used, (c) number of
//! distinct rules used per job, (d) jobs per default rule signature.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig2 -- [--scale=0.1]`

use std::collections::HashMap;

use scope_exec::ABTester;
use scope_ir::stats::{mean, percentile};
use scope_optimizer::NUM_RULES;
use scope_steer_bench::harness::{compile_day, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, scale_arg, write_csv};
use scope_workload::WorkloadTag;

fn main() {
    let scale = scale_arg();
    banner(
        "Figure 2",
        "runtime / rule-usage / rules-per-job / signature distributions (Workload A)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);

    // (a) runtimes.
    let runtimes: Vec<f64> = compiled.iter().map(|c| c.metrics.runtime).collect();
    let csv_a: Vec<String> = {
        let mut sorted = runtimes.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
            .iter()
            .enumerate()
            .map(|(i, r)| format!("{},{r:.1}", (i + 1) as f64 / sorted.len() as f64))
            .collect()
    };
    println!(
        "(a) runtimes s: p10={:.0} p50={:.0} p90={:.0} p99={:.0} max={:.0}; >5min: {:.0}%",
        percentile(&runtimes, 10.0),
        percentile(&runtimes, 50.0),
        percentile(&runtimes, 90.0),
        percentile(&runtimes, 99.0),
        percentile(&runtimes, 100.0),
        100.0 * runtimes.iter().filter(|&&r| r > 300.0).count() as f64 / runtimes.len() as f64
    );
    write_csv("fig2a_runtime_cdf.csv", "cdf,runtime_s", &csv_a);

    // (b) rule usage frequency.
    let mut usage = vec![0usize; NUM_RULES];
    for c in &compiled {
        for id in c.compiled.signature.on_rules() {
            usage[id.index()] += 1;
        }
    }
    let mut usage_sorted: Vec<usize> = usage.iter().copied().filter(|&u| u > 0).collect();
    usage_sorted.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "(b) rules used at least once: {}; used by >10% of jobs: {}",
        usage_sorted.len(),
        usage_sorted
            .iter()
            .filter(|&&u| u * 10 > compiled.len())
            .count()
    );
    let csv_b: Vec<String> = usage_sorted
        .iter()
        .enumerate()
        .map(|(rank, u)| format!("{rank},{u}"))
        .collect();
    write_csv("fig2b_rule_usage.csv", "rank,jobs_using_rule", &csv_b);

    // (c) rules per job.
    let per_job: Vec<f64> = compiled
        .iter()
        .map(|c| c.compiled.signature.len() as f64)
        .collect();
    println!(
        "(c) rules per job: mean={:.1} p10={:.0} p50={:.0} p90={:.0} (paper: typically 10-20)",
        mean(&per_job),
        percentile(&per_job, 10.0),
        percentile(&per_job, 50.0),
        percentile(&per_job, 90.0)
    );
    let csv_c: Vec<String> = per_job.iter().map(|v| format!("{v:.0}")).collect();
    write_csv("fig2c_rules_per_job.csv", "rules_in_signature", &csv_c);

    // (d) jobs per default signature.
    let mut groups: HashMap<String, usize> = HashMap::new();
    for c in &compiled {
        *groups
            .entry(c.compiled.signature.to_bit_string())
            .or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = groups.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "(d) signature groups: {} distinct; top-5 sizes {:?} of {} jobs (paper: heavy head, some signatures with ~1% of jobs each)",
        sizes.len(),
        &sizes[..sizes.len().min(5)],
        compiled.len()
    );
    let csv_d: Vec<String> = sizes
        .iter()
        .enumerate()
        .map(|(rank, s)| format!("{rank},{s}"))
        .collect();
    let path = write_csv("fig2d_signature_groups.csv", "rank,jobs_in_group", &csv_d);
    println!("wrote {} (and fig2a/b/c csvs)", path.display());
}
