//! **Ablation: supervised model vs Bao-style bandits** (the paper's §4
//! scalability argument). On the same per-group datasets as the Table 5
//! experiment, compare:
//!
//! * the paper's supervised per-group model (features → choice),
//! * Bao's formulation: context-free multi-armed bandits (ε-greedy and
//!   Thompson sampling) replayed online over the two weeks,
//! * a no-learning cost-model chooser (always the lowest estimated cost),
//! * the default and per-job best as bounds.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_ablation_learning -- [--scale=1.0]`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_ir::stats::mean;
use scope_ir::Job;
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{group_of, Pipeline};
use steer_learn::{
    build_group_dataset, cost_model_choice, evaluate, replay_bandit, train_group, EpsilonGreedy,
    GroupSample, ThompsonGaussian, TrainParams,
};

fn main() {
    let scale = scale_arg();
    banner(
        "Ablation",
        "supervised vs bandit vs cost-model configuration choice (Workload B)",
    );
    let w = workload(WorkloadTag::B, scale);
    let ab = ABTester::new(AB_SEED);

    // Same group selection as exp_learning.
    let days: Vec<Vec<Job>> = (0..14).map(|d| w.day(d)).collect();
    let mut groups: HashMap<String, Vec<&Job>> = HashMap::new();
    for job in days.iter().flatten() {
        let Ok(compiled) =
            scope_optimizer::compile_job(job, &scope_optimizer::RuleConfig::default_config())
        else {
            continue;
        };
        let runtime = ab.run(job, &compiled.plan, 0).runtime;
        if !(120.0..=7200.0).contains(&runtime) {
            continue;
        }
        if let Some(g) = group_of(job) {
            groups.entry(g.to_bit_string()).or_default().push(job);
        }
    }
    let mut ranked: Vec<(&String, &Vec<&Job>)> =
        groups.iter().filter(|(_, jobs)| jobs.len() >= 12).collect();
    // Total order: size descending, then group key — HashMap iteration
    // order must not leak into results.
    ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(b.0)));
    ranked.truncate(3);

    let mut params = pipeline_params(scale);
    params.sample_frac = 1.0;
    params.min_runtime_s = 60.0;
    params.max_runtime_s = f64::INFINITY;
    let pipeline = Pipeline::new(ab.clone(), params);
    let mut rng = StdRng::seed_from_u64(0xAB1A);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (gi, (_, jobs)) in ranked.iter().enumerate() {
        // Candidate configurations (same protocol as exp_learning).
        let mut alt_configs = Vec::new();
        for base in jobs.iter().take(3) {
            let Some((compiled, metrics)) = pipeline.default_run(base) else {
                continue;
            };
            if let Some(outcome) = pipeline.analyze_job(base, &compiled, metrics, &mut rng) {
                let mut executed = outcome.executed;
                executed.sort_by(|a, b| a.metrics.runtime.total_cmp(&b.metrics.runtime));
                for cand in executed.into_iter().take(3) {
                    if !alt_configs.contains(&cand.config) {
                        alt_configs.push(cand.config);
                    }
                }
            }
        }
        alt_configs.truncate(9);
        let ds = build_group_dataset(jobs, &alt_configs, &ab);
        if ds.is_empty() || ds.k() < 2 {
            continue;
        }

        // Bounds.
        let default_mean = mean(&ds.samples.iter().map(|s| s.runtimes[0]).collect::<Vec<_>>());
        let best_mean = mean(
            &ds.samples
                .iter()
                .map(|s| s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min))
                .collect::<Vec<_>>(),
        );

        // Supervised (paper): evaluated on the held-out test split.
        let (chooser, split) = train_group(
            &ds,
            &TrainParams {
                hidden: 128,
                seed: gi as u64,
                ..TrainParams::default()
            },
            &mut rng,
        );
        let eval = evaluate(&ds, &chooser, &split);
        let supervised_mean = eval.learned.mean;

        // Bandits (Bao): online replay over the full stream.
        let ordered: Vec<&GroupSample> = {
            let mut v: Vec<&GroupSample> = ds.samples.iter().collect();
            v.sort_by_key(|s| (s.day, s.job_id));
            v
        };
        let mut eg = EpsilonGreedy::new(ds.k(), 0.1);
        let eg_replay = replay_bandit(&ds, &mut eg, &mut rng);
        let mut th = ThompsonGaussian::new(ds.k());
        let th_replay = replay_bandit(&ds, &mut th, &mut rng);
        let eg_mean = mean(&eg_replay.runtimes);
        let th_mean = mean(&th_replay.runtimes);

        // Cost-model chooser (no learning).
        let cost_mean = mean(
            &ds.samples
                .iter()
                .map(|s| s.runtimes[cost_model_choice(s, ds.k())])
                .collect::<Vec<_>>(),
        );

        rows.push(vec![
            format!("group {} ({} jobs, K={})", gi + 1, ds.len(), ds.k()),
            format!("{best_mean:.0}"),
            format!("{supervised_mean:.0}"),
            format!("{eg_mean:.0}"),
            format!("{th_mean:.0}"),
            format!("{cost_mean:.0}"),
            format!("{default_mean:.0}"),
        ]);
        csv.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            gi + 1,
            best_mean,
            supervised_mean,
            eg_mean,
            th_mean,
            cost_mean,
            default_mean,
            eg_replay.mean_regret(&ordered)
        ));
    }

    println!(
        "{}",
        markdown_table(
            &[
                "mean runtime (s)",
                "best",
                "supervised (paper)",
                "ε-greedy (Bao)",
                "Thompson (Bao)",
                "cost-model",
                "default"
            ],
            &rows
        )
    );
    println!(
        "Bandits pay exploration on every group and cannot condition on job features; \
         the supervised per-group model (the paper's §4 design choice) dominates or matches them here."
    );
    println!(
        "note: supervised means are over the held-out 40% test split; the other columns replay the full two-week stream."
    );
    let path = write_csv(
        "ablation_learning.csv",
        "group,best,supervised,egreedy,thompson,cost_model,default,egreedy_mean_regret",
        &csv,
    );
    println!("wrote {}", path.display());
}
