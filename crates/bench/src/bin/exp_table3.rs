//! **Table 3** — average runtime change if we always choose the best-known
//! configuration (including the default), per workload.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_table3 -- [--scale=0.1]`

use scope_steer_bench::harness::run_discovery;
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::best_known_summary;

fn main() {
    let scale = scale_arg();
    banner(
        "Table 3",
        "mean runtime change with best-known configurations",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for tag in WorkloadTag::ALL {
        let report = run_discovery(tag, scale);
        let s = best_known_summary(&report.outcomes);
        rows.push(vec![
            tag.name().to_string(),
            s.n_jobs.to_string(),
            format!("{:+.0}s", s.mean_delta_runtime_s),
            format!("{:+.0}%", s.mean_delta_pct),
        ]);
        csv.push(format!(
            "{},{},{:.2},{:.2}",
            tag.name(),
            s.n_jobs,
            s.mean_delta_runtime_s,
            s.mean_delta_pct
        ));
    }
    println!(
        "{}",
        markdown_table(
            &["Workload", "# Queries", "Δ Runtime", "Δ Percentage"],
            &rows
        )
    );
    println!("Paper: A 36 queries / −1689s / −30%; B 155 / −663s / −15%; C 45 / −400s / −7%.");
    let path = write_csv(
        "table3.csv",
        "workload,n_jobs,mean_delta_s,mean_delta_pct",
        &csv,
    );
    println!("wrote {}", path.display());
}
