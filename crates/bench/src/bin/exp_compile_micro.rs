//! **Compile micro-benchmark**: single-compile latency and allocation
//! counts for the arena/interner compile path against the frozen
//! pre-rework oracle (`scope_optimizer::classic`).
//!
//! Three paths are measured over the same workload day:
//!
//! - `classic` — the byte-for-byte snapshot of the compile path before the
//!   arena rework (owned memo, per-expression rule vectors);
//! - `arena_fresh` — the live path through a brand-new [`CompileScratch`]
//!   per compile (what a cold thread pays);
//! - `arena_reused` — the live path through one scratch reused across all
//!   compiles (the steady state of the thread-local fast path and of
//!   per-worker scratch in parallel discovery).
//!
//! Every job is first compiled on all three paths and the
//! [`CompiledPlan::fingerprint`]s are asserted identical (or the errors
//! equal) — this benchmark refuses to report a speedup for a path that
//! changes results. Latency is then measured per job as the minimum over
//! interleaved repetitions (robust to scheduler noise on small machines),
//! and allocations are counted by a wrapping `#[global_allocator]`.
//!
//! Emits `results/BENCH_compile.json`. The ≥25% mean-latency gate and the
//! fewer-allocations gate fire at `--scale` ≥ 0.1; smoke runs below that
//! assert only bit-identity.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_compile_micro -- [--scale=1.0]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use scope_ir::Job;
use scope_optimizer::classic::compile_classic;
use scope_optimizer::optimizer::{compile_with_scratch, CompileScratch};
use scope_optimizer::{effective_config, CompileBudget, RuleConfig};
use scope_steer_bench::harness::workload;
use scope_steer_bench::reporting::{
    banner, json_array, json_object, markdown_table, scale_arg, write_json,
};
use scope_workload::WorkloadTag;

/// Allocation-counting wrapper around the system allocator. Counts every
/// `alloc`/`realloc` call and the bytes requested; `dealloc` is passed
/// through uncounted (frees mirror allocations).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Interleaved repetitions per path: each rep re-times every job on every
/// path back-to-back, and a job's latency is its minimum across reps, so a
/// scheduler hiccup hits one rep of one path, not one path's whole mean.
const REPS: usize = 5;

struct PathStats {
    name: &'static str,
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
    allocs_per_compile: f64,
    alloc_kb_per_compile: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats_for(name: &'static str, mins_us: &[f64], allocs: u64, bytes: u64, n: usize) -> PathStats {
    let mut sorted = mins_us.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    PathStats {
        name,
        mean_us: mins_us.iter().sum::<f64>() / mins_us.len().max(1) as f64,
        p50_us: percentile(&sorted, 0.50),
        p95_us: percentile(&sorted, 0.95),
        allocs_per_compile: allocs as f64 / n.max(1) as f64,
        alloc_kb_per_compile: bytes as f64 / 1024.0 / n.max(1) as f64,
    }
}

fn main() {
    let scale = scale_arg();
    banner(
        "CompileMicro",
        "single-compile latency + allocations: arena/interner path vs the frozen classic oracle",
    );
    let w = workload(WorkloadTag::A, scale);
    let jobs = w.day(0);
    let default = RuleConfig::default_config();
    let budget = CompileBudget::default();

    // Pre-derive everything that is not the compile itself, and keep only
    // jobs that compile cleanly under the default config (both paths must
    // agree on which those are — asserted below for every job).
    let prepared: Vec<_> = jobs
        .iter()
        .map(|job: &Job| {
            let obs = job.catalog.observe();
            let config = effective_config(job, &default);
            (job, obs, config)
        })
        .collect();

    // ── Bit-identity gate ───────────────────────────────────────────────
    let mut reused = CompileScratch::new();
    let mut ok_idx: Vec<usize> = Vec::new();
    for (i, (job, obs, config)) in prepared.iter().enumerate() {
        let classic = compile_classic(&job.plan, obs, config)
            .map(|p| p.fingerprint())
            .map_err(|e| e.to_string());
        let fresh =
            compile_with_scratch(&job.plan, obs, config, &budget, &mut CompileScratch::new())
                .map(|p| p.fingerprint())
                .map_err(|e| e.to_string());
        let warm = compile_with_scratch(&job.plan, obs, config, &budget, &mut reused)
            .map(|p| p.fingerprint())
            .map_err(|e| e.to_string());
        assert_eq!(classic, fresh, "arena (fresh) diverged on job {}", job.id);
        assert_eq!(classic, warm, "arena (reused) diverged on job {}", job.id);
        if classic.is_ok() {
            ok_idx.push(i);
        }
    }
    let n = ok_idx.len();
    println!(
        "{} jobs, {} compile under the default config; all {} fingerprints identical across paths",
        jobs.len(),
        n,
        3 * jobs.len(),
    );
    assert!(n > 0, "vacuous: no job compiled");

    // ── Allocation counts (one full pass per path, after the warm-up the
    // identity gate already provided) ───────────────────────────────────
    let (a0, b0) = alloc_snapshot();
    for &i in &ok_idx {
        let (job, obs, config) = &prepared[i];
        let _ = compile_classic(&job.plan, obs, config);
    }
    let (a1, b1) = alloc_snapshot();
    for &i in &ok_idx {
        let (job, obs, config) = &prepared[i];
        let _ = compile_with_scratch(&job.plan, obs, config, &budget, &mut CompileScratch::new());
    }
    let (a2, b2) = alloc_snapshot();
    for &i in &ok_idx {
        let (job, obs, config) = &prepared[i];
        let _ = compile_with_scratch(&job.plan, obs, config, &budget, &mut reused);
    }
    let (a3, b3) = alloc_snapshot();
    let allocs = [(a1 - a0, b1 - b0), (a2 - a1, b2 - b1), (a3 - a2, b3 - b2)];

    // ── Latency: interleaved min-of-reps per job ────────────────────────
    let mut min_classic = vec![f64::INFINITY; n];
    let mut min_fresh = vec![f64::INFINITY; n];
    let mut min_reused = vec![f64::INFINITY; n];
    for _rep in 0..REPS {
        for (slot, &i) in ok_idx.iter().enumerate() {
            let (job, obs, config) = &prepared[i];

            let t = Instant::now();
            let r = compile_classic(&job.plan, obs, config);
            let dt = t.elapsed().as_secs_f64() * 1e6;
            assert!(r.is_ok());
            min_classic[slot] = min_classic[slot].min(dt);

            let mut scratch = CompileScratch::new();
            let t = Instant::now();
            let r = compile_with_scratch(&job.plan, obs, config, &budget, &mut scratch);
            let dt = t.elapsed().as_secs_f64() * 1e6;
            assert!(r.is_ok());
            min_fresh[slot] = min_fresh[slot].min(dt);

            let t = Instant::now();
            let r = compile_with_scratch(&job.plan, obs, config, &budget, &mut reused);
            let dt = t.elapsed().as_secs_f64() * 1e6;
            assert!(r.is_ok());
            min_reused[slot] = min_reused[slot].min(dt);
        }
    }

    let paths = [
        stats_for("classic", &min_classic, allocs[0].0, allocs[0].1, n),
        stats_for("arena_fresh", &min_fresh, allocs[1].0, allocs[1].1, n),
        stats_for("arena_reused", &min_reused, allocs[2].0, allocs[2].1, n),
    ];

    let table: Vec<Vec<String>> = paths
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.1}", p.mean_us),
                format!("{:.1}", p.p50_us),
                format!("{:.1}", p.p95_us),
                format!("{:.1}", p.allocs_per_compile),
                format!("{:.1}", p.alloc_kb_per_compile),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "path",
                "mean (µs)",
                "p50 (µs)",
                "p95 (µs)",
                "allocs/compile",
                "alloc KiB/compile"
            ],
            &table
        )
    );

    let classic = &paths[0];
    let reused_stats = &paths[2];
    let latency_reduction_pct = 100.0 * (1.0 - reused_stats.mean_us / classic.mean_us.max(1e-9));
    let alloc_reduction_pct =
        100.0 * (1.0 - reused_stats.allocs_per_compile / classic.allocs_per_compile.max(1e-9));
    println!(
        "arena_reused vs classic: {latency_reduction_pct:.1}% mean latency reduction, {alloc_reduction_pct:.1}% fewer allocations"
    );

    let path_rows: Vec<String> = paths
        .iter()
        .map(|p| {
            json_object(&[
                ("path", format!("\"{}\"", p.name)),
                ("mean_us", format!("{:.3}", p.mean_us)),
                ("p50_us", format!("{:.3}", p.p50_us)),
                ("p95_us", format!("{:.3}", p.p95_us)),
                ("allocs_per_compile", format!("{:.2}", p.allocs_per_compile)),
                (
                    "alloc_kib_per_compile",
                    format!("{:.2}", p.alloc_kb_per_compile),
                ),
            ])
        })
        .collect();
    let body = json_object(&[
        ("experiment", "\"compile_micro\"".into()),
        ("scale", format!("{scale}")),
        ("n_jobs", jobs.len().to_string()),
        ("n_compiled", n.to_string()),
        ("reps", REPS.to_string()),
        ("all_fingerprints_identical", "true".into()),
        (
            "latency_reduction_pct_reused_vs_classic",
            format!("{latency_reduction_pct:.2}"),
        ),
        (
            "alloc_reduction_pct_reused_vs_classic",
            format!("{alloc_reduction_pct:.2}"),
        ),
        ("paths", json_array(&path_rows)),
    ]);
    let out = write_json("BENCH_compile.json", &body);
    println!("wrote {}", out.display());

    // Performance gates: only at real scale — sub-0.1 smoke runs (CI) have
    // too few jobs for stable percentiles, and their job is the identity
    // assert above, which already ran unconditionally.
    if scale >= 0.1 {
        assert!(
            reused_stats.allocs_per_compile < classic.allocs_per_compile,
            "arena path must allocate strictly less than classic ({:.1} vs {:.1} allocs/compile)",
            reused_stats.allocs_per_compile,
            classic.allocs_per_compile
        );
        assert!(
            latency_reduction_pct >= 25.0,
            "arena path must be ≥25% faster than classic (got {latency_reduction_pct:.1}%)"
        );
    }
}
