//! **steer-audit**: the repository's source-hygiene gate, replacing the
//! four inline `grep` chains CI used to carry. Each historical gate keeps
//! its exact intent, but matching happens on *lexed Rust tokens* — string
//! literals, char literals, and comments are scrubbed first — so a banned
//! pattern quoted in a doc comment or an error message can never produce
//! a false hit, and a real violation split across whitespace or lines can
//! never hide.
//!
//! The five checks:
//!
//! 1. `unbounded-queue` — no unbounded channels or grow-forever queues in
//!    the serving layer (`crates/core/src/serve.rs`). Admission control is
//!    a ceiling-checked `BinaryHeap`; anything else regresses the
//!    overload-bounded-allocation invariant.
//! 2. `direct-install` — every hint enters production through the
//!    `FlightController` (journaled + staged); `.install(` is allowed
//!    only in the flight layer itself and in tests.
//! 3. `panicking-float-cmp` — no `partial_cmp(..).unwrap()/.expect()`
//!    comparators; use `f64::total_cmp` or the `nan_{last,first}_cmp`
//!    orderings.
//! 4. `rule-vec-hot-path` — no `Vec<RuleId>` materialization in the
//!    explore/implement hot path (`search.rs`/`transform.rs`/`memo.rs`);
//!    iterate `RuleSet` masks. `classic.rs` keeps the old shape on
//!    purpose — it is the frozen differential oracle — and is simply not
//!    in the checked file set.
//! 5. `raw-cost-compare` — no raw `.cost <` / `.cost >` scalar
//!    comparisons anywhere: ranking a candidate must go through
//!    `CostWeights::scalarize` / `CostModel::scalar` so weight configs
//!    and promoted runtime corrections apply at every comparison point.
//!    (Token matching makes this precise: post-migration sites such as
//!    `candidate_cost < w.cost` keep `.cost` on the right-hand side and
//!    never match; `>=`/`<=` lex with a leading `>`/`<` and do.)
//!
//! Exceptions live in one table (`ALLOWLIST`), not in per-check shell
//! pipelines. Zero dependencies beyond `std`.
//!
//! Run from the repo root: `cargo run -p scope-steer-bench --release --bin steer_audit`

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Which files a check scans.
#[derive(Clone, Copy)]
enum Scope {
    /// Exactly one file (repo-relative, forward slashes).
    File(&'static str),
    /// Every `.rs` file under the walked roots.
    All,
    /// Any file whose repo-relative path ends with one of these suffixes.
    Suffixes(&'static [&'static str]),
}

/// A token sequence to forbid: identifiers match whole lexed words,
/// single-character strings match punctuation verbatim.
type Seq = &'static [&'static str];

struct Check {
    id: &'static str,
    scope: Scope,
    /// Plain forbidden token sequences (any match is a violation).
    seqs: &'static [Seq],
    /// Also run the `partial_cmp(..).unwrap()/.expect()` matcher, which
    /// needs balanced-paren skipping a fixed sequence can't express.
    panicking_float_cmp: bool,
    message: &'static str,
}

const CHECKS: &[Check] = &[
    Check {
        id: "unbounded-queue",
        scope: Scope::File("crates/core/src/serve.rs"),
        seqs: &[
            &["mpsc", ":", ":", "channel", "("],
            &["channel", ":", ":", "<"],
            &["VecDeque", ":", ":", "new", "("],
            &["LinkedList", ":", ":", "new", "("],
        ],
        panicking_float_cmp: false,
        message: "unbounded queue/channel in the serving layer — use a bounded structure checked against ServiceConfig::max_inflight",
    },
    Check {
        id: "direct-install",
        scope: Scope::All,
        seqs: &[&[".", "install", "("]],
        panicking_float_cmp: false,
        message: "direct HintStore::install call outside the flight layer — use FlightController::ingest/ingest_deployed",
    },
    Check {
        id: "panicking-float-cmp",
        scope: Scope::All,
        seqs: &[],
        panicking_float_cmp: true,
        message: "partial_cmp(..).unwrap()/expect() comparator — use f64::total_cmp or scope_ir::stats::nan_{last,first}_cmp",
    },
    Check {
        id: "rule-vec-hot-path",
        scope: Scope::Suffixes(&[
            "crates/scope-optimizer/src/search.rs",
            "crates/scope-optimizer/src/transform.rs",
            "crates/scope-optimizer/src/memo.rs",
        ]),
        seqs: &[
            &["Vec", "<", "RuleId", ">"],
            &["Vec", "<", "ruleset", ":", ":", "RuleId", ">"],
        ],
        panicking_float_cmp: false,
        message: "Vec<RuleId> in the explore hot path — iterate a RuleSet mask instead",
    },
    Check {
        id: "raw-cost-compare",
        scope: Scope::All,
        seqs: &[&[".", "cost", "<"], &[".", "cost", ">"]],
        panicking_float_cmp: false,
        message: "raw scalar .cost comparison — rank through CostWeights::scalarize / CostModel::scalar so weights and corrections apply",
    },
];

/// The single exception table: (check id, repo-relative path prefix).
/// A violation is waived when its file path starts with the prefix.
const ALLOWLIST: &[(&str, &str)] = &[
    ("direct-install", "crates/core/src/flight.rs"),
    ("direct-install", "crates/core/src/deploy.rs"),
    ("direct-install", "crates/core/src/testutil.rs"),
    ("direct-install", "crates/core/tests/"),
];

/// Replace comments, string literals, and char literals with spaces,
/// preserving byte-for-byte line structure so token line numbers survive.
/// Handles line and (nested) block comments, plain/byte strings with
/// escapes, raw strings with any `#` count, and the lifetime-vs-char-
/// literal ambiguity (`<'a>` is code, `'a'` is scrubbed).
fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    // Emit one scrubbed byte: newlines survive so line numbers hold.
    let blank = |out: &mut Vec<u8>, c: u8| out.push(if c == b'\n' { b'\n' } else { b' ' });
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br##"..."##.
        let raw_start = if c == b'r' {
            Some(i + 1)
        } else if c == b'b' && b.get(i + 1) == Some(&b'r') {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            // Only if preceded by a non-identifier byte (so `attr` ∌ `r"`).
            let boundary = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if boundary && b.get(j) == Some(&b'"') {
                // Scrub from i through the closing `"` + hashes.
                j += 1;
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if b[j] == b'"'
                        && b[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == b'#')
                            .count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                while i < j.min(b.len()) {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain (byte) string with escapes.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            if c == b'b' {
                blank(&mut out, c);
                i += 1;
            }
            blank(&mut out, b[i]);
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == b'"' {
                    blank(&mut out, b[i]);
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'`/`'\n'` scrub, `'a` (lifetime)
        // passes through as code.
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                blank(&mut out, b[i]);
                i += 1;
                if b.get(i) == Some(&b'\\') {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                while i < b.len() && b[i] != b'\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                if i < b.len() {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A lexed token: an identifier/number word or a single punctuation byte,
/// with its 1-based source line.
struct Token<'a> {
    text: &'a str,
    line: usize,
}

fn lex(scrubbed: &str) -> Vec<Token<'_>> {
    let b = scrubbed.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                text: &scrubbed[start..i],
                line,
            });
        } else {
            tokens.push(Token {
                text: &scrubbed[i..i + 1],
                line,
            });
            i += 1;
        }
    }
    tokens
}

/// Find every occurrence of a token sequence. Identifier elements must
/// match whole tokens, so `reinstall(` never matches `.install(`.
fn find_seq(tokens: &[Token<'_>], seq: Seq) -> Vec<usize> {
    let mut hits = Vec::new();
    if tokens.len() < seq.len() {
        return hits;
    }
    for start in 0..=tokens.len() - seq.len() {
        if seq
            .iter()
            .zip(&tokens[start..])
            .all(|(want, tok)| tok.text == *want)
        {
            hits.push(start);
        }
    }
    hits
}

/// `partial_cmp ( <balanced> ) . unwrap|expect (` — the balanced-paren
/// skip catches nested calls and line breaks the old per-line grep never
/// could.
fn find_panicking_float_cmp(tokens: &[Token<'_>]) -> Vec<usize> {
    let mut hits = Vec::new();
    for start in 0..tokens.len() {
        if tokens[start].text != "partial_cmp" {
            continue;
        }
        let Some(open) = tokens.get(start + 1) else {
            continue;
        };
        if open.text != "(" {
            continue;
        }
        let mut depth = 1usize;
        let mut j = start + 2;
        while j < tokens.len() && depth > 0 {
            match tokens[j].text {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            continue;
        }
        if tokens.get(j).map(|t| t.text) == Some(".")
            && matches!(tokens.get(j + 1).map(|t| t.text), Some("unwrap" | "expect"))
            && tokens.get(j + 2).map(|t| t.text) == Some("(")
        {
            hits.push(start);
        }
    }
    hits
}

struct Violation {
    check: &'static str,
    file: String,
    line: usize,
    message: &'static str,
}

/// Run every applicable check over one file's source text.
fn audit_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let scrubbed = scrub(src);
    let tokens = lex(&scrubbed);
    let mut out = Vec::new();
    for check in CHECKS {
        let in_scope = match check.scope {
            Scope::File(f) => rel_path == f,
            Scope::All => true,
            Scope::Suffixes(sfx) => sfx.iter().any(|s| rel_path.ends_with(s)),
        };
        if !in_scope {
            continue;
        }
        if ALLOWLIST
            .iter()
            .any(|(id, prefix)| *id == check.id && rel_path.starts_with(prefix))
        {
            continue;
        }
        let mut starts: Vec<usize> = check
            .seqs
            .iter()
            .flat_map(|seq| find_seq(&tokens, seq))
            .collect();
        if check.panicking_float_cmp {
            starts.extend(find_panicking_float_cmp(&tokens));
        }
        starts.sort_unstable();
        starts.dedup();
        for s in starts {
            out.push(Violation {
                check: check.id,
                file: rel_path.to_string(),
                line: tokens[s].line,
                message: check.message,
            });
        }
    }
    out
}

/// Collect every `.rs` file under the walked roots, repo-relative with
/// forward slashes, in sorted order for stable output.
fn rust_files(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "src"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                // Build output never holds sources we own.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    out
}

fn main() {
    let root = std::env::current_dir().expect("cwd");
    let files = rust_files(&root);
    if files.is_empty() {
        eprintln!(
            "steer-audit: no Rust sources found under crates/ or src/ — run from the repo root"
        );
        std::process::exit(2);
    }
    let mut violations = Vec::new();
    for (rel, path) in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        violations.extend(audit_source(rel, &src));
    }
    if violations.is_empty() {
        println!(
            "steer-audit: {} files clean across {} checks",
            files.len(),
            CHECKS.len()
        );
        return;
    }
    let mut report = String::new();
    for v in &violations {
        // `::error` annotations surface in the GitHub Actions UI exactly
        // like the old grep steps' did.
        let _ = writeln!(
            report,
            "::error file={},line={}::[{}] {}",
            v.file, v.line, v.check, v.message
        );
    }
    eprint!("{report}");
    eprintln!("steer-audit: {} violations", violations.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_ids(rel: &str, src: &str) -> Vec<&'static str> {
        audit_source(rel, src)
            .into_iter()
            .map(|v| v.check)
            .collect()
    }

    /// Every violation class the four historical grep gates caught, seeded
    /// as source fixtures: the lexer must reproduce each hit.
    #[test]
    fn reproduces_every_historical_grep_violation() {
        let serve = "crates/core/src/serve.rs";
        let cases: &[(&str, &str, &str)] = &[
            ("unbounded-queue", serve, "let (tx, rx) = mpsc::channel();"),
            (
                "unbounded-queue",
                serve,
                "let (tx, rx) = channel::<Request>();",
            ),
            ("unbounded-queue", serve, "let mut q = VecDeque::new();"),
            ("unbounded-queue", serve, "let mut l = LinkedList::new();"),
            (
                "direct-install",
                "crates/core/src/pipeline.rs",
                "store.install(hint);",
            ),
            (
                "panicking-float-cmp",
                "crates/core/src/report.rs",
                "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());",
            ),
            (
                "panicking-float-cmp",
                "crates/core/src/report.rs",
                "xs.sort_by(|a, b| a.partial_cmp(b).expect(\"nan\"));",
            ),
            (
                "rule-vec-hot-path",
                "crates/scope-optimizer/src/search.rs",
                "let rules: Vec<RuleId> = Vec::new();",
            ),
            (
                "rule-vec-hot-path",
                "crates/scope-optimizer/src/memo.rs",
                "fn f(v: Vec< ruleset::RuleId >) {}",
            ),
        ];
        for (id, rel, src) in cases {
            assert_eq!(
                check_ids(rel, src),
                vec![*id],
                "fixture not caught: {src:?}"
            );
        }
    }

    /// The lexer catches what per-line grep structurally could not:
    /// whitespace, line breaks, and nested parens inside the pattern.
    #[test]
    fn catches_what_grep_missed() {
        assert_eq!(
            check_ids(
                "crates/core/src/report.rs",
                "let o = a.partial_cmp(f(b, c))\n    .unwrap();"
            ),
            vec!["panicking-float-cmp"]
        );
        assert_eq!(
            check_ids(
                "crates/scope-optimizer/src/search.rs",
                "let rules: Vec<\n    RuleId\n> = Vec::new();"
            ),
            vec!["rule-vec-hot-path"]
        );
    }

    /// Banned patterns quoted in strings, comments, or doc comments are
    /// not violations — the whole point of lexing over grepping.
    #[test]
    fn no_false_hits_in_strings_or_comments() {
        let quiet: &[(&str, &str)] = &[
            (
                "crates/core/src/serve.rs",
                "// mpsc::channel( is banned here",
            ),
            (
                "crates/core/src/serve.rs",
                "/* VecDeque::new() */ let x = 1;",
            ),
            (
                "crates/core/src/serve.rs",
                "let msg = \"don't use channel::<T>() or LinkedList::new()\";",
            ),
            (
                "crates/core/src/pipeline.rs",
                "let doc = r#\"store.install(hint)\"#;",
            ),
            (
                "crates/core/src/pipeline.rs",
                "/// Call `store.install(hint)` only from the flight layer.\nfn f() {}",
            ),
            (
                "crates/core/src/report.rs",
                "let s = \"partial_cmp(b).unwrap()\";",
            ),
            (
                "crates/scope-optimizer/src/search.rs",
                "// Vec<RuleId> was the old shape.",
            ),
        ];
        for (rel, src) in quiet {
            assert!(
                check_ids(rel, src).is_empty(),
                "false hit on scrubbed text: {src:?}"
            );
        }
    }

    /// Identifier boundaries, non-panicking continuations, and the
    /// allowlist all suppress matches exactly as the grep pipelines did.
    #[test]
    fn boundaries_allowlist_and_scope_hold() {
        // `reinstall` is not `.install(`; `fn install(` has no dot.
        assert!(check_ids("crates/core/src/x.rs", "obj.reinstall(a);").is_empty());
        assert!(check_ids("crates/core/src/x.rs", "fn install(a: u8) {}").is_empty());
        // partial_cmp followed by a non-panicking method is fine.
        assert!(check_ids(
            "crates/core/src/x.rs",
            "a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal);"
        )
        .is_empty());
        // Allowlisted paths for direct-install: the flight layer and tests.
        for rel in [
            "crates/core/src/flight.rs",
            "crates/core/src/deploy.rs",
            "crates/core/src/testutil.rs",
            "crates/core/tests/flighting.rs",
        ] {
            assert!(check_ids(rel, "store.install(hint);").is_empty(), "{rel}");
        }
        // Scope: unbounded-queue only fires in serve.rs; rule-vec only in
        // the three hot-path files (classic.rs keeps the old shape).
        assert!(check_ids("crates/core/src/pipeline.rs", "let q = VecDeque::new();").is_empty());
        assert!(check_ids(
            "crates/scope-optimizer/src/classic.rs",
            "let rules: Vec<RuleId> = Vec::new();"
        )
        .is_empty());
    }

    /// The cost-model migration gate: any `.cost` on the *left* of a
    /// scalar comparison is a bypass of the weight/correction scalarizer;
    /// the blessed shapes (scalarize first, or `.cost` on the right-hand
    /// side of an already-scalarized value) pass untouched.
    #[test]
    fn raw_cost_compare_catches_bypasses_and_spares_scalarized_sites() {
        for src in [
            "if a.cost < b.cost { swap(a, b); }",
            "if oc.cost > threshold { return None; }",
            "while best.cost >= cand.cost {}",
            "let worse = x.cost\n    > y;",
        ] {
            assert!(
                check_ids("crates/scope-optimizer/src/search.rs", src)
                    .contains(&"raw-cost-compare"),
                "bypass not caught: {src:?}"
            );
        }
        for src in [
            "if model.scalar(&oc.cost) < best { best = model.scalar(&oc.cost); }",
            "if candidate_cost < w.cost { w.cost = candidate_cost; }",
            "let total = a.cost.add(&b.cost);",
            "// a.cost < b.cost is the banned shape",
            "let s = \"a.cost > b.cost\";",
        ] {
            assert!(
                check_ids("crates/scope-optimizer/src/search.rs", src).is_empty(),
                "false hit: {src:?}"
            );
        }
    }

    /// The scrubber preserves line structure, so reported line numbers
    /// point at the real source line.
    #[test]
    fn line_numbers_survive_scrubbing() {
        let src = "// comment line\nlet s = \"text\";\nstore.install(hint);\n";
        let v = audit_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    /// Lifetimes are code, char literals are not: `<'a>` must lex through
    /// while `'(' ` must scrub (else a stray quote could unbalance the
    /// paren matcher).
    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a f64, y: char) -> bool {\n    y == '(' && x.partial_cmp(x).unwrap().is_eq()\n}";
        assert_eq!(
            check_ids("crates/core/src/x.rs", src),
            vec!["panicking-float-cmp"]
        );
    }
}
