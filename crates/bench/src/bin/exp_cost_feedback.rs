//! **Multi-objective cost model + runtime feedback**: the two claims the
//! decomposed [`CostEstimate`] / [`CostWeights`] / [`CorrectionStore`]
//! stack makes, measured end to end:
//!
//! 1. **Weight sweep** — scaling the IO/network weights steers plan choice
//!    along the IO-vs-runtime axis: at least one job's winning plan must
//!    change across the sweep, and the chosen plans' *true* IO seconds
//!    must move monotonically-in-spirit (heavier IO weight ⇒ no more IO
//!    than the lighter weights picked). The default weights must
//!    reproduce the classic model's plans bit for bit.
//! 2. **Feedback loop** — recurring templates across simulated days: each
//!    day compiles every job under its template's corrected model,
//!    executes it, ingests observed/estimated ratios into a
//!    [`CorrectionStore`], and promotes smoothed corrections at the day
//!    boundary. The mean relative error between the model's scalar
//!    prediction and the observed total work must shrink from the first
//!    day to the last.
//!
//! Emits `results/BENCH_cost.json`.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_cost_feedback -- [--scale=1.0]`
//!
//! [`CostEstimate`]: scope_optimizer::CostEstimate
//! [`CostWeights`]: scope_optimizer::CostWeights
//! [`CorrectionStore`]: steer_core::CorrectionStore

use scope_exec::ABTester;
use scope_optimizer::{
    compile_job_with_model, CompileBudget, CostCorrections, CostModel, CostWeights, RuleConfig,
};
use scope_steer_bench::harness::{workload, AB_SEED};
use scope_steer_bench::reporting::{banner, json_array, json_object, scale_arg, write_json};
use scope_workload::WorkloadTag;
use steer_core::CorrectionStore;

/// IO-axis sweep points: the io *and* net weights scaled together (the
/// simulator's observed io metric aggregates both).
const IO_SWEEP: [f64; 3] = [0.25, 1.0, 4.0];

/// Simulated days the feedback loop runs over.
const N_DAYS: u32 = 6;

fn io_weighted(f: f64) -> CostModel {
    CostModel {
        weights: CostWeights {
            io: f,
            net: f,
            ..CostWeights::DEFAULT
        },
        corrections: CostCorrections::IDENTITY,
    }
}

fn main() {
    let scale = scale_arg();
    banner(
        "Cost",
        "multi-objective cost model: IO-weight plan steering (Workload A, day 0) and runtime-feedback error convergence across days",
    );
    let w = workload(WorkloadTag::A, scale);
    let config = RuleConfig::default_config();
    let budget = CompileBudget::default();
    let ab = ABTester::new(AB_SEED);

    // ── 1: the weight sweep ─────────────────────────────────────────────
    let jobs = w.day(0);
    let sampled: Vec<_> = jobs.iter().take(60).collect();
    println!(
        "weight sweep: {} jobs x io-weight in {IO_SWEEP:?}",
        sampled.len()
    );
    // Per sweep point: plan fingerprints, mean true io seconds, mean true
    // runtime (noise-free replay so the axis numbers are exact).
    let mut sweep_rows = Vec::new();
    let mut fingerprints: Vec<Vec<u64>> = Vec::new();
    let mut est_io_means = Vec::new();
    for &f in &IO_SWEEP {
        let model = io_weighted(f);
        let mut fps = Vec::new();
        let mut est_io = 0.0;
        let mut io_s = 0.0;
        let mut runtime_s = 0.0;
        let mut cpu_s = 0.0;
        let mut n = 0usize;
        for job in &sampled {
            let Ok(c) = compile_job_with_model(job, &config, &budget, &model) else {
                fps.push(0);
                continue;
            };
            let m = ab.run_true(&job.catalog, &c.plan);
            fps.push(c.fingerprint());
            est_io += c.est_cost_vec.io + c.est_cost_vec.net;
            io_s += m.io_time;
            cpu_s += m.cpu_time;
            runtime_s += m.runtime;
            n += 1;
        }
        let n = n.max(1) as f64;
        est_io_means.push(est_io / n);
        sweep_rows.push(json_object(&[
            ("io_weight", format!("{f}")),
            ("mean_est_io", format!("{:.4}", est_io / n)),
            ("mean_io_s", format!("{:.4}", io_s / n)),
            ("mean_cpu_s", format!("{:.4}", cpu_s / n)),
            ("mean_runtime_s", format!("{:.4}", runtime_s / n)),
        ]));
        fingerprints.push(fps);
    }
    let baseline_idx = IO_SWEEP.iter().position(|&f| f == 1.0).unwrap();
    let mut plans_changed = 0usize;
    for (i, fps) in fingerprints.iter().enumerate() {
        if i == baseline_idx {
            continue;
        }
        plans_changed += fps
            .iter()
            .zip(&fingerprints[baseline_idx])
            .filter(|(a, b)| a != b && **a != 0 && **b != 0)
            .count();
    }
    // The default-weight model must also be bit-identical to the classic
    // compile path (CostModel::DEFAULT delegation).
    let mut default_divergences = 0usize;
    for (job, &fp) in sampled.iter().zip(&fingerprints[baseline_idx]) {
        let Ok(c) = scope_optimizer::compile_job(job, &config) else {
            continue;
        };
        if c.fingerprint() != fp {
            default_divergences += 1;
        }
    }
    println!(
        "sweep: {plans_changed} plan changes off the default weights; {default_divergences} default-weight divergences"
    );
    for row in &sweep_rows {
        println!("  {row}");
    }

    // ── 2: the feedback loop over recurring days ────────────────────────
    // A wide (still bounded) band: the abstract cost units and the
    // simulator's seconds disagree by a large constant factor on the IO
    // axis, and absorbing cross-layer unit mismatch is exactly what the
    // corrections are for. The conservative default band is a production
    // safety rail, not a measurement choice.
    let mut store = CorrectionStore::with_params(
        0.3,
        steer_core::CorrectionBand {
            lo: 1.0 / 64.0,
            hi: 64.0,
        },
        3,
    );
    let mut day_rows = Vec::new();
    let mut first_err = 0.0;
    let mut last_corrected_err = 0.0;
    let mut last_corrected_n = 0usize;
    for day in 0..N_DAYS {
        let jobs = w.day(day);
        let mut err_sum = 0.0;
        let mut n = 0usize;
        // Error over jobs whose template already carries a promoted
        // correction — the population the feedback claim is about.
        let mut corr_err_sum = 0.0;
        let mut corr_n = 0usize;
        for (i, job) in jobs.iter().enumerate() {
            let model = store.model_for(job.template.0, CostWeights::DEFAULT);
            let corrected = !model.corrections.is_identity();
            let Ok(c) = compile_job_with_model(job, &config, &budget, &model) else {
                continue;
            };
            // Observed total work (cpu + io seconds) is what the scalar
            // under DEFAULT weights predicts, up to the vertex overhead
            // term; per-metric ratios feed the correction store. Noise-free
            // replay isolates the *systematic* estimation gap corrections
            // target (noise robustness is the EWMA unit suite's job); the
            // day-to-day drift of recurring inputs still varies the truth.
            let m = ab.run_true(&job.catalog, &c.plan);
            let observed = m.cpu_time + m.io_time;
            if observed > 0.0 {
                let err = (c.est_cost - observed).abs() / observed;
                err_sum += err;
                n += 1;
                if corrected {
                    corr_err_sum += err;
                    corr_n += 1;
                }
            }
            let token = (day as u64) << 32 | i as u64;
            store.ingest(job.template.0, token, &c.est_cost_vec, &m, false);
        }
        // Day boundary: promote every smoothed correction (the guardrail /
        // flighting vet is exercised in the unit suites; here every
        // template passes so convergence is observable).
        let promoted = store.end_of_day(|_, _| true).len();
        let mean_err = err_sum / n.max(1) as f64;
        let corr_err = corr_err_sum / corr_n.max(1) as f64;
        println!(
            "day {day}: {n} jobs, mean |est-obs|/obs = {mean_err:.4} (corrected templates: {corr_err:.4} over {corr_n}), \
             {promoted} promoted ({} active)",
            store.active_count()
        );
        day_rows.push(json_object(&[
            ("day", day.to_string()),
            ("jobs", n.to_string()),
            ("mean_rel_error", format!("{mean_err:.6}")),
            ("corrected_rel_error", format!("{corr_err:.6}")),
            ("corrected_jobs", corr_n.to_string()),
            ("promoted", promoted.to_string()),
            ("active_templates", store.active_count().to_string()),
        ]));
        if day == 0 {
            first_err = mean_err;
        }
        if day == N_DAYS - 1 {
            last_corrected_err = corr_err;
            last_corrected_n = corr_n;
        }
    }
    println!(
        "feedback: uncorrected day-0 error {first_err:.4} -> corrected-template error {last_corrected_err:.4} \
         over {last_corrected_n} jobs on day {}",
        N_DAYS - 1
    );

    let body = json_object(&[
        ("experiment", "\"cost_feedback\"".into()),
        ("scale", format!("{scale}")),
        ("sweep_jobs", sampled.len().to_string()),
        ("io_sweep", json_array(&sweep_rows)),
        ("plans_changed", plans_changed.to_string()),
        ("default_divergences", default_divergences.to_string()),
        ("feedback_days", json_array(&day_rows)),
        ("first_day_error", format!("{first_err:.6}")),
        (
            "last_day_corrected_error",
            format!("{last_corrected_err:.6}"),
        ),
        ("last_day_corrected_jobs", last_corrected_n.to_string()),
    ]);
    let path = write_json("BENCH_cost.json", &body);
    println!("wrote {}", path.display());

    let mut failed = false;
    if plans_changed == 0 {
        eprintln!("FAIL: no plan ever changed across the IO-weight sweep");
        failed = true;
    }
    if default_divergences > 0 {
        eprintln!("FAIL: default weights diverged from the classic compile path");
        failed = true;
    }
    // The scalarization argument: for a fixed candidate space, raising the
    // IO weight can never make the winner's estimated IO component grow.
    for pair in est_io_means.windows(2) {
        if pair[1] > pair[0] * (1.0 + 1e-9) {
            eprintln!(
                "FAIL: estimated IO grew under a heavier IO weight ({} -> {})",
                pair[0], pair[1]
            );
            failed = true;
        }
    }
    if last_corrected_n == 0 {
        eprintln!("FAIL: no recurring template ever earned a correction");
        failed = true;
    }
    // NaN must fail too, so spell the negation out instead of `!(a < b)`.
    if last_corrected_err.is_nan() || last_corrected_err >= first_err {
        eprintln!(
            "FAIL: feedback did not shrink the estimated-vs-true error ({first_err:.4} -> {last_corrected_err:.4})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
