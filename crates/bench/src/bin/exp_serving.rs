//! **Serving**: the failure-hardened online steering daemon replaying a
//! multi-day workload under a deterministic chaos matrix. For every
//! [`ServeFaultProfile`] — none, slow lookups, torn snapshot swaps,
//! flighting-journal stalls, burst overload — the run must demonstrate:
//!
//! 1. *Bounded tail latency* — every decision (p99 and max) lands within
//!    the per-request deadline; expiry serves the default *at* the
//!    deadline, never later.
//! 2. *Failure is the default config, never an error* — every shed or
//!    deadline-expired request is answered with the default `RuleConfig`.
//! 3. *No zombie hints* — after a hint is quarantined / rolled back
//!    mid-run, zero subsequent decisions steer onto it, even across torn
//!    snapshot publishes.
//! 4. *Bit-identical decisions* — the full decision stream fingerprints
//!    identically at 1, 2, and 4 serving threads.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_serving -- [--scale=1.0]`

use std::collections::{BTreeMap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::{ABTester, ArrivalCurve, ServeFaultProfile};
use scope_optimizer::{CompileCache, RuleConfig};
use scope_steer_bench::harness::{compile_day_cached, pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{
    banner, json_array, json_object, markdown_table, scale_arg, write_json,
};
use scope_workload::{Workload, WorkloadTag};
use steer_core::{
    minimize_config, winning_configs, DecisionReason, DegradedMode, FlightConfig, FlightController,
    GroupConfig, HintStatus, Lookup, Pipeline, ServeRequest, ServiceConfig, SteeringService,
};

/// Virtual serving days replayed through the daemon (day 0 is discovery).
const DAYS: u32 = 5;
/// Serving-thread counts whose decision streams must fingerprint equal.
const THREADS: [usize; 3] = [1, 2, 4];
/// Compressed virtual day (µs). Decision latencies are O(100µs), so a
/// short day keeps admission control and the mode ladder exercisable at
/// bench scale: ~20 ticks/day and arrival gaps comparable to latency.
const BENCH_DAY_US: u64 = 1_000_000;
/// Day after which the victim hints are quarantined / rolled back.
const RETIRE_AFTER_DAY: u32 = 2;
/// Mean arrival spacing (µs) targeted inside a tuned burst window; with
/// `max_inflight = 2` and 120µs decisions, anything bunched this tight
/// must shed.
const BURST_SPACING_US: f64 = 25.0;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        // 20 maintenance ticks per compressed day.
        tick_us: 50_000,
        // The breaker half-opens within the same day it tripped.
        breaker_cooldown_us: 120_000,
        // Tight admission ceiling so burst overload actually sheds.
        max_inflight: 2,
        seed: AB_SEED,
        ..ServiceConfig::default()
    }
}

struct Discovered {
    workload: Workload,
    winners: Vec<GroupConfig>,
}

fn discover(scale: f64) -> Discovered {
    let ab = ABTester::new(AB_SEED);
    let p = Pipeline::new(ab, pipeline_params(scale));
    let w = workload(WorkloadTag::A, scale);
    let day0 = w.day(0);
    let mut rng = StdRng::seed_from_u64(0x5E24E);
    let report = p.discover(&day0, &mut rng);
    let mut minimized = Vec::new();
    for winner in &winning_configs(&report.outcomes, 10.0) {
        let Some(job) = day0.iter().find(|j| j.id == winner.base_job) else {
            continue;
        };
        if let Some(min) = minimize_config(job, &winner.config) {
            let mut m = winner.clone();
            m.config = min.config;
            minimized.push(m);
        }
    }
    Discovered {
        workload: w,
        winners: minimized,
    }
}

/// `(job id, group key)` per job for each serving day, in day-list order
/// — the stream the daemon sees, independent of any fault profile.
fn day_keys(d: &Discovered, ab: &ABTester) -> Vec<Vec<(u64, String)>> {
    let cache = CompileCache::new(64);
    (1..=DAYS)
        .map(|day| {
            compile_day_cached(&d.workload, day, ab, Some(&cache))
                .iter()
                .map(|cj| (cj.job.id.0, cj.compiled.signature.to_bit_string()))
                .collect()
        })
        .collect()
}

/// Scale a burst profile's window to the workload: the spike width is set
/// so arrivals inside it average [`BURST_SPACING_US`] apart, guaranteeing
/// the admission ceiling sheds regardless of how few jobs a smoke run has.
fn tune_burst(mut p: ServeFaultProfile, max_day_jobs: usize) -> ServeFaultProfile {
    if let Some(b) = p.burst.as_mut() {
        let burst_jobs = (max_day_jobs as f64 * b.fraction).max(2.0);
        b.width_frac = (BURST_SPACING_US * burst_jobs / BENCH_DAY_US as f64).min(0.5);
    }
    p
}

/// Every group the table will actually serve, in sorted order.
fn served_groups(d: &Discovered) -> Vec<String> {
    let mut reference = FlightController::new(FlightConfig::default());
    reference.ingest_deployed(&d.winners, 0);
    let mut groups: Vec<String> = reference
        .store
        .hints()
        .filter(|h| h.status == HintStatus::Active)
        .map(|h| h.group.clone())
        .collect();
    groups.sort();
    groups
}

/// The two most-requested groups the table actually serves — the hints a
/// mid-run incident quarantines (first) and rolls back (second).
fn pick_victims(groups: &[String], keys: &[Vec<(u64, String)>]) -> Vec<String> {
    let served: HashSet<&String> = groups.iter().collect();
    let mut counts: BTreeMap<&String, usize> = BTreeMap::new();
    for day in keys {
        for (_, key) in day {
            if served.contains(key) {
                *counts.entry(key).or_default() += 1;
            }
        }
    }
    let mut ranked: Vec<(&String, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    ranked.into_iter().take(2).map(|(g, _)| g.clone()).collect()
}

/// One full multi-day run of the daemon under a fault profile.
struct ProfileRun {
    requests: usize,
    steered: usize,
    defaults: usize,
    shed: usize,
    deadline_expired: usize,
    torn_entries: usize,
    /// Torn entries *detected* by probing every served group after each
    /// snapshot publish — the corruption-refusal path, exercised even
    /// when the live request stream happens to miss the corrupt group.
    torn_probes: usize,
    breaker_trips: u64,
    mode_transitions: u64,
    p99_max_us: u64,
    final_mode: DegradedMode,
    fingerprints: Vec<u64>,
}

fn run_profile(
    d: &Discovered,
    keys: &[Vec<(u64, String)>],
    groups: &[String],
    victims: &[String],
    profile: &ServeFaultProfile,
    n_threads: usize,
) -> ProfileRun {
    let mut flights = FlightController::new(FlightConfig::default());
    flights.ingest_deployed(&d.winners, 0);
    flights.advance(0);
    let mut service = SteeringService::new(service_config());
    service.publish_from(&flights, profile);

    let curve = ArrivalCurve {
        seed: AB_SEED,
        day_us: BENCH_DAY_US,
    };
    let default = RuleConfig::default_config();
    let deadline = service.config.deadline_us;
    let mut banned: HashSet<&str> = HashSet::new();
    let mut run = ProfileRun {
        requests: 0,
        steered: 0,
        defaults: 0,
        shed: 0,
        deadline_expired: 0,
        torn_entries: 0,
        torn_probes: 0,
        breaker_trips: 0,
        mode_transitions: 0,
        p99_max_us: 0,
        final_mode: DegradedMode::Healthy,
        fingerprints: Vec::new(),
    };

    for day in 1..=DAYS {
        let day_keys = &keys[(day - 1) as usize];
        let requests: Vec<ServeRequest> = day_keys
            .iter()
            .enumerate()
            .map(|(idx, (job_id, key))| ServeRequest {
                job_id: *job_id,
                group_key: key.clone(),
                arrival_us: curve.arrival_us(day, idx as u64, profile.burst.as_ref()),
            })
            .collect();
        let report = service.serve_day(&requests, profile, day, n_threads);

        // The three structural invariants, checked per decision at any
        // scale — a smoke run is as load-bearing as the full one.
        for dec in &report.decisions {
            assert!(
                dec.latency_us <= deadline,
                "decision latency {}µs exceeds the {}µs deadline",
                dec.latency_us,
                deadline
            );
            if matches!(
                dec.reason,
                DecisionReason::Shed | DecisionReason::DeadlineExpired
            ) {
                assert!(
                    !dec.steered && dec.config == default,
                    "a {} request was not served the default config",
                    dec.reason.name()
                );
            }
            if dec.steered {
                let group = dec.group.as_deref().expect("steered decision has a group");
                assert!(
                    !banned.contains(group),
                    "day {day}: steered onto retired hint {group}"
                );
            }
        }
        assert!(
            report.max_latency_us <= deadline,
            "day {day}: max latency {}µs breaks the deadline bound",
            report.max_latency_us
        );

        run.requests += report.requests;
        run.steered += report.steered;
        run.defaults += report.defaults;
        run.shed += report.shed;
        run.deadline_expired += report.deadline_expired;
        run.torn_entries += report.torn_entries;
        run.breaker_trips += report.breaker_trips;
        run.mode_transitions += report.mode_transitions;
        run.p99_max_us = run.p99_max_us.max(report.p99_latency_us);
        run.final_mode = report.final_mode;
        run.fingerprints.push(report.fingerprint);

        // Mid-run incident: quarantine the hottest hint and roll back the
        // runner-up. The synchronous retire is what the zombie-hint
        // invariant above verifies from here on.
        if day == RETIRE_AFTER_DAY {
            for (i, victim) in victims.iter().enumerate() {
                let status = if i == 0 {
                    HintStatus::Quarantined
                } else {
                    HintStatus::Suspended
                };
                flights.store.set_status(victim, status);
                service.retire(victim);
                banned.insert(victim.as_str());
            }
        }
        // Nightly snapshot refresh (suspended automatically while
        // degraded; torn by the profile at its configured publish index).
        service.publish_from(&flights, profile);
        // Probe every served group against the fresh snapshot: any torn
        // entry write must surface as a detected-and-refused lookup, not
        // a served half-written hint.
        run.torn_probes += groups
            .iter()
            .filter(|g| matches!(service.table.lookup(g), Lookup::Torn))
            .count();
    }
    run
}

fn main() {
    let scale = scale_arg();
    banner(
        "Serving",
        "online steering under chaos: deadlines, shedding, breakers, degraded modes",
    );
    let d = discover(scale);
    println!("discovered {} minimized winners", d.winners.len());
    let ab = ABTester::new(AB_SEED);
    let keys = day_keys(&d, &ab);
    let max_day_jobs = keys.iter().map(Vec::len).max().unwrap_or(0);
    let total_jobs: usize = keys.iter().map(Vec::len).sum();
    let groups = served_groups(&d);
    let victims = pick_victims(&groups, &keys);
    println!(
        "serving {total_jobs} requests over {DAYS} days (max {max_day_jobs}/day); retiring {} hints after day {RETIRE_AFTER_DAY}",
        victims.len()
    );
    let gate = scale >= 0.5;

    let mut rows = Vec::new();
    let mut profile_objects = Vec::new();
    for base in ServeFaultProfile::all() {
        let profile = tune_burst(base, max_day_jobs);
        let runs: Vec<ProfileRun> = THREADS
            .iter()
            .map(|&t| run_profile(&d, &keys, &groups, &victims, &profile, t))
            .collect();
        let identical = runs.iter().all(|r| r.fingerprints == runs[0].fingerprints);
        assert!(
            identical,
            "profile {}: decision streams diverge across thread counts",
            profile.name
        );
        let r = &runs[0];

        // Profile-specific dynamics that must actually fire once the
        // workload is big enough to make them statistically certain.
        if profile.burst.is_some() && max_day_jobs >= 10 {
            assert!(r.shed > 0, "burst overload produced no shedding");
        }
        if profile.slow_lookup_prob > 0.0 && total_jobs >= 20 {
            assert!(
                r.deadline_expired > 0,
                "slow lookups never expired a deadline"
            );
        }
        if profile.journal_stall_prob >= 0.5 {
            assert!(
                r.breaker_trips > 0,
                "journal stalls never tripped the breaker"
            );
        }
        // With a full-scale table (many groups spread over 8 shards) a
        // torn swap is all but guaranteed to land a corrupt entry in a
        // completed shard, and the probe must catch it.
        if profile.torn_swap.is_some() && gate {
            assert!(
                r.torn_probes > 0,
                "torn swap was never detected by the lookup checksum"
            );
        }
        if gate {
            assert_eq!(
                r.requests, total_jobs,
                "every arriving request must be answered"
            );
        }

        println!(
            "{:<16} steered {:>5} default {:>5} shed {:>4} expired {:>4} torn {:>2}/{:<2} trips {:>2} p99 {:>5}µs final {}",
            profile.name,
            r.steered,
            r.defaults,
            r.shed,
            r.deadline_expired,
            r.torn_entries,
            r.torn_probes,
            r.breaker_trips,
            r.p99_max_us,
            r.final_mode.name()
        );
        rows.push(vec![
            profile.name.to_string(),
            r.requests.to_string(),
            r.steered.to_string(),
            r.shed.to_string(),
            r.deadline_expired.to_string(),
            format!("{}/{}", r.torn_entries, r.torn_probes),
            r.breaker_trips.to_string(),
            r.mode_transitions.to_string(),
            format!("{}µs", r.p99_max_us),
            "yes".to_string(),
        ]);
        profile_objects.push(json_object(&[
            ("profile", format!("\"{}\"", profile.name)),
            ("requests", r.requests.to_string()),
            ("steered", r.steered.to_string()),
            ("defaults", r.defaults.to_string()),
            ("shed", r.shed.to_string()),
            ("deadline_expired", r.deadline_expired.to_string()),
            ("torn_entries", r.torn_entries.to_string()),
            ("torn_probes", r.torn_probes.to_string()),
            ("breaker_trips", r.breaker_trips.to_string()),
            ("mode_transitions", r.mode_transitions.to_string()),
            ("p99_us", r.p99_max_us.to_string()),
            ("final_mode", format!("\"{}\"", r.final_mode.name())),
            ("identical_across_threads", "true".to_string()),
        ]));
    }

    println!(
        "{}",
        markdown_table(
            &[
                "profile",
                "requests",
                "steered",
                "shed",
                "expired",
                "torn served/detected",
                "trips",
                "mode Δ",
                "p99",
                "bit-identical",
            ],
            &rows
        )
    );

    let body = json_object(&[
        ("scale", format!("{scale}")),
        ("winners", d.winners.len().to_string()),
        ("serving_days", DAYS.to_string()),
        ("requests_per_run", total_jobs.to_string()),
        ("retired_hints", victims.len().to_string()),
        ("threads", json_array(&THREADS.map(|t| t.to_string()))),
        ("profiles", json_array(&profile_objects)),
        ("deadline_us", service_config().deadline_us.to_string()),
        ("all_failures_served_default", "true".to_string()),
        ("zero_retired_hints_served", "true".to_string()),
        ("bit_identical_across_threads", "true".to_string()),
    ]);
    let path = write_json("BENCH_serving.json", &body);
    println!("wrote {}", path.display());
}
