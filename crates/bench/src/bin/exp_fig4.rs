//! **Figure 4** — default estimated cost versus the estimated costs of all
//! candidate rule configurations, for 15 randomly selected Workload A jobs.
//! Despite the Cascades lowest-cost guarantee, many candidates come back
//! *cheaper* than the default because rule configurations change how node
//! properties (and hence costs) are derived (§5.3).
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_fig4 -- [--scale=0.1]`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_optimizer::compile;
use scope_steer_bench::harness::{compile_day, pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{approximate_span, candidate_configs};

fn main() {
    let scale = scale_arg();
    banner(
        "Figure 4",
        "default vs candidate estimated costs (15 random jobs, Workload A)",
    );
    let w = workload(WorkloadTag::A, scale);
    let ab = ABTester::new(AB_SEED);
    let compiled = compile_day(&w, 0, &ab);
    let params = pipeline_params(scale);

    let mut rng = StdRng::seed_from_u64(4);
    let mut candidates_jobs: Vec<_> = compiled
        .iter()
        .filter(|c| c.metrics.runtime > 300.0)
        .collect();
    candidates_jobs.shuffle(&mut rng);
    candidates_jobs.truncate(15);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut jobs_with_cheaper = 0;
    for (qi, c) in candidates_jobs.iter().enumerate() {
        let obs = c.job.catalog.observe();
        let span = approximate_span(&c.job.plan, &obs);
        let configs = candidate_configs(&span, params.m_candidates, &mut rng);
        let mut costs = Vec::new();
        for config in &configs {
            if let Ok(alt) = compile(&c.job.plan, &obs, config) {
                costs.push(alt.est_cost);
            }
        }
        let cheaper = costs.iter().filter(|&&x| x < c.compiled.est_cost).count();
        if cheaper > 0 {
            jobs_with_cheaper += 1;
        }
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        for cost in &costs {
            csv.push(format!("Q{qi},{:.3},{:.3}", c.compiled.est_cost, cost));
        }
        rows.push(vec![
            format!("Q{qi}"),
            format!("{:.0}", c.compiled.est_cost),
            costs.len().to_string(),
            cheaper.to_string(),
            format!("{:.0}", min),
            format!("{:.0}", max),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "job",
                "default cost",
                "#candidates",
                "#cheaper",
                "min cand cost",
                "max cand cost"
            ],
            &rows
        )
    );
    println!(
        "{jobs_with_cheaper}/15 jobs have candidate configurations with estimated cost below the default — the paper's 'paradox' (most jobs in their Figure 4 do)."
    );
    let path = write_csv("fig4_costs.csv", "job,default_cost,candidate_cost", &csv);
    println!("wrote {}", path.display());
}
