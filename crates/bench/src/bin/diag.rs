//! Diagnostic smoke tool: generates a small Workload A, compiles and
//! executes a day under the default configuration, and probes whether
//! random steering can improve representative jobs. Not a paper experiment
//! — a development aid for calibrating the simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_exec::ABTester;
use scope_ir::stats::{mean, percentile};
use scope_optimizer::{compile_job, RuleCatalog, RuleConfig};
use scope_workload::{Workload, WorkloadProfile};
use std::collections::HashMap;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let w = Workload::generate(WorkloadProfile::workload_a(scale));
    let jobs = w.day(0);
    println!("jobs: {}", jobs.len());

    let ab = ABTester::new(1);
    let default = RuleConfig::default_config();
    let mut runtimes = Vec::new();
    let mut sig_sizes = Vec::new();
    let mut sig_groups: HashMap<u64, usize> = HashMap::new();
    let mut costs = Vec::new();
    let mut compiled_jobs = Vec::new();
    let t0 = std::time::Instant::now();
    for job in &jobs {
        let c = match compile_job(job, &default) {
            Ok(c) => c,
            Err(e) => {
                println!("job {} failed: {e}", job.id);
                continue;
            }
        };
        let m = ab.run(job, &c.plan, 0);
        runtimes.push(m.runtime);
        sig_sizes.push(c.signature.len() as f64);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&c.signature.to_bit_string(), &mut h);
        *sig_groups.entry(std::hash::Hasher::finish(&h)).or_insert(0) += 1;
        costs.push((job.id, c.est_cost, m.runtime));
        compiled_jobs.push((job, c, m));
    }
    println!("compile+exec took {:?}", t0.elapsed());
    println!(
        "runtime s: p10={:.0} p50={:.0} p90={:.0} p99={:.0} max={:.0}",
        percentile(&runtimes, 10.0),
        percentile(&runtimes, 50.0),
        percentile(&runtimes, 90.0),
        percentile(&runtimes, 99.0),
        percentile(&runtimes, 100.0)
    );
    let over5min = runtimes.iter().filter(|&&r| r > 300.0).count();
    println!(
        "jobs >5min: {} ({:.0}%)",
        over5min,
        100.0 * over5min as f64 / runtimes.len() as f64
    );
    println!(
        "signature size: mean={:.1} p10={:.0} p90={:.0}",
        mean(&sig_sizes),
        percentile(&sig_sizes, 10.0),
        percentile(&sig_sizes, 90.0)
    );
    println!(
        "distinct signatures: {} / {} jobs; largest group {}",
        sig_groups.len(),
        runtimes.len(),
        sig_groups.values().max().unwrap_or(&0)
    );

    // Steering probe: for 20 medium jobs, try 30 random configs built by
    // disabling subsets of fired rules / enabling off-by-default rules.
    let cat = RuleCatalog::global();
    let mut probe_jobs: Vec<&(
        &scope_ir::Job,
        scope_optimizer::CompiledPlan,
        scope_exec::RunMetrics,
    )> = compiled_jobs
        .iter()
        .filter(|(_, _, m)| m.runtime > 300.0 && m.runtime < 20_000.0)
        .collect();
    probe_jobs.truncate(20);
    let mut rng = StdRng::seed_from_u64(99);
    let mut improvements = Vec::new();
    for (job, c0, m0) in probe_jobs.iter().map(|x| (&x.0, &x.1, &x.2)) {
        let fired: Vec<_> = c0
            .signature
            .on_rules()
            .filter(|id| !cat.required().contains(*id))
            .collect();
        let mut best = m0.runtime;
        let mut cheaper_cost = 0;
        for _ in 0..30 {
            let mut cfg = RuleConfig::default_config();
            for &r in &fired {
                if rng.gen_bool(0.3) {
                    cfg.disable(r);
                }
            }
            for r in cat.off_by_default().iter() {
                if rng.gen_bool(0.1) {
                    cfg.enable(r);
                }
            }
            if let Ok(c) = compile_job(job, &cfg) {
                if c.est_cost < c0.est_cost {
                    cheaper_cost += 1;
                }
                let m = ab.run(job, &c.plan, 0);
                if m.runtime < best {
                    best = m.runtime;
                }
            }
        }
        let pct = 100.0 * (best - m0.runtime) / m0.runtime;
        improvements.push(pct);
        println!(
            "job {}: default {:.0}s best {:.0}s ({:+.0}%), cheaper-cost configs {}/30",
            job.id, m0.runtime, best, pct, cheaper_cost
        );
    }
    println!(
        "probe: mean improvement {:.1}%, improved jobs {}/{}",
        mean(&improvements),
        improvements.iter().filter(|&&p| p < -1.0).count(),
        improvements.len()
    );
}
