//! **Table 5 + Figure 8** — learning to choose rule configurations (§7):
//! pick three Workload B job groups, discover K candidate configurations
//! from a few base jobs, execute every candidate on every group job over
//! two weeks, train the per-group neural model, and report Best / Default /
//! Learned runtimes (mean, 90P, 99P) plus per-query deltas.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_learning -- [--scale=1.0] [--hidden=256]`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_ir::Job;
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, markdown_table, scale_arg, write_csv};
use scope_workload::WorkloadTag;
use steer_core::{group_of, Pipeline};
use steer_learn::{build_group_dataset, evaluate, train_group, TrainParams};

fn hidden_arg() -> usize {
    std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--hidden=").and_then(|v| v.parse().ok()))
        .unwrap_or(256)
}

fn main() {
    let scale = scale_arg();
    let hidden = hidden_arg();
    banner(
        "Table 5 / Figure 8",
        &format!("learned configuration choice for three Workload B job groups (hidden={hidden})"),
    );
    let w = workload(WorkloadTag::B, scale);
    let ab = ABTester::new(AB_SEED);

    // Collect two weeks of jobs, keep the resource-relevant ones (the
    // paper restricts to long-running jobs), and group them by default
    // signature.
    let days: Vec<Vec<Job>> = (0..14).map(|d| w.day(d)).collect();
    let quick_ab = ABTester::new(AB_SEED);
    let mut groups: HashMap<String, Vec<&Job>> = HashMap::new();
    for job in days.iter().flatten() {
        let Ok(compiled) =
            scope_optimizer::compile_job(job, &scope_optimizer::RuleConfig::default_config())
        else {
            continue;
        };
        let runtime = quick_ab.run(job, &compiled.plan, 0).runtime;
        if !(120.0..=7200.0).contains(&runtime) {
            continue;
        }
        if let Some(g) = group_of(job) {
            groups.entry(g.to_bit_string()).or_default().push(job);
        }
    }
    // The paper selects groups with more than a dozen jobs per day and no
    // single always-winning configuration; we take the three largest groups
    // of substantial jobs.
    let mut ranked: Vec<(&String, &Vec<&Job>)> =
        groups.iter().filter(|(_, jobs)| jobs.len() >= 12).collect();
    // Total order: size descending, then group key — HashMap iteration
    // order must not leak into results.
    ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(b.0)));
    ranked.truncate(3);
    assert!(
        ranked.len() == 3,
        "need three job groups with ≥12 long-running jobs; got {} (increase --scale)",
        ranked.len()
    );

    let mut params = pipeline_params(scale);
    params.sample_frac = 1.0;
    params.min_runtime_s = 60.0;
    params.max_runtime_s = f64::INFINITY;
    let pipeline = Pipeline::new(ab.clone(), params);
    let mut rng = StdRng::seed_from_u64(0x7EA2);

    let mut table_rows = Vec::new();
    let mut fig8_csv = Vec::new();
    for (gi, (key, jobs)) in ranked.iter().enumerate() {
        // Discover candidate configurations from up to three base jobs.
        let mut alt_configs = Vec::new();
        for base in jobs.iter().take(3) {
            let Some((compiled, metrics)) = pipeline.default_run(base) else {
                continue;
            };
            if let Some(outcome) = pipeline.analyze_job(base, &compiled, metrics, &mut rng) {
                let mut executed = outcome.executed;
                executed.sort_by(|a, b| a.metrics.runtime.total_cmp(&b.metrics.runtime));
                for cand in executed.into_iter().take(3) {
                    if !alt_configs.contains(&cand.config) {
                        alt_configs.push(cand.config);
                    }
                }
            }
        }
        alt_configs.truncate(9); // default + up to 9 ⇒ K ≤ 10 (paper: 7-10)
        println!(
            "group {}: {} jobs over two weeks, K = {} configurations (signature {}...)",
            gi + 1,
            jobs.len(),
            alt_configs.len() + 1,
            &key[..24]
        );

        // Build the dataset (execute every configuration on every job).
        let ds = build_group_dataset(jobs, &alt_configs, &ab);
        assert!(!ds.is_empty(), "group {} dataset is empty", gi + 1);

        // Train.
        let params = TrainParams {
            hidden,
            seed: gi as u64,
            ..TrainParams::default()
        };
        let (chooser, split) = train_group(&ds, &params, &mut rng);
        let eval = evaluate(&ds, &chooser, &split);
        println!(
            "group {}: trained (lr {}, val loss {:.4}); test queries: {}",
            gi + 1,
            chooser.lr,
            chooser.val_loss,
            eval.per_query.len()
        );

        for stat in ["mean", "90P", "99P"] {
            let pick = |s: &steer_learn::RuntimeStats| match stat {
                "mean" => s.mean,
                "90P" => s.p90,
                _ => s.p99,
            };
            table_rows.push(vec![
                format!("group {} {stat}", gi + 1),
                format!("{:.0}", pick(&eval.best)),
                format!("{:.0}", pick(&eval.default)),
                format!("{:.0}", pick(&eval.learned)),
            ]);
        }
        for q in &eval.per_query {
            fig8_csv.push(format!(
                "{},{},{:.1},{:.1},{:.1},{:.2},{}",
                gi + 1,
                q.job_id,
                q.default_runtime,
                q.learned_runtime,
                q.best_runtime,
                q.change_pct(),
                q.chosen
            ));
        }
        let improved = eval
            .per_query
            .iter()
            .filter(|q| q.change_s() < -1.0)
            .count();
        let regressed = eval.per_query.iter().filter(|q| q.change_s() > 1.0).count();
        let default_picked = eval.per_query.iter().filter(|q| q.chosen == 0).count();
        println!(
            "group {}: learned improved {improved}, regressed {regressed}, picked default {default_picked} of {} test queries",
            gi + 1,
            eval.per_query.len()
        );
    }

    println!(
        "{}",
        markdown_table(&["Runtimes (s)", "Best", "Default", "Learned"], &table_rows)
    );
    println!("Paper Table 5 (seconds): g1 5458/6461/5724, g2 19.8K/20.7K/20.2K, g3 2966/3304/3252 (means) — Learned sits between Default and Best on every statistic.");
    let path = write_csv(
        "fig8_learned_choices.csv",
        "group,job,default_s,learned_s,best_s,change_pct,chosen_config",
        &fig8_csv,
    );
    println!("wrote {}", path.display());
}
