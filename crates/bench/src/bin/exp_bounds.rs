//! **Abstract-interpretation bounds**: soundness and payoff of the
//! `scope-lint::bounds` interval analysis over the plan IR. Three hard
//! checks and two payoff measurements:
//!
//! 1. **Interval soundness** — for every sampled job and candidate config
//!    that compiles, the whole-plan cost interval must bracket the
//!    compiled winner's estimated cost: `cost_lo(enabled) ≤ est_cost`,
//!    and `est_cost ≤ cost_hi(enabled)` whenever the upper bound is
//!    claimed. A single escape fails the run (exit 1).
//! 2. **Estimator audit** — replaying `Estimator::derive` bottom-up over
//!    every sampled plan must produce zero `EstimateOutOfBounds`
//!    violations; the memo search and the `classic` oracle consume the
//!    same derivation, so this covers both.
//! 3. **Discovery identity** — a full discovery run with the bounds gate
//!    on must reproduce the gate-off run bit-for-bit (static counters and
//!    per-job candidate tallies aside) while retiring a measurable
//!    fraction of candidate compiles statically.
//!
//! Payoff: the statically-retired candidate fraction beyond the PR 4 lint
//! gate, and the memo-task reduction from branch-and-bound pruning
//! (`CompileBudget::with_branch_and_bound`), which must also pick
//! bit-identical plans, costs, and signatures.
//!
//! Emits `results/BENCH_bounds.json`.
//!
//! Run: `cargo run -p scope-steer-bench --release --bin exp_bounds -- [--scale=1.0]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_lint::{audit_estimates, PlanBounds};
use scope_optimizer::{
    compile_job, compile_job_with_budget, effective_config, CompileBudget, RuleConfig,
};
use scope_steer_bench::harness::{pipeline_params, workload, AB_SEED};
use scope_steer_bench::reporting::{banner, json_object, scale_arg, write_json};
use scope_workload::WorkloadTag;
use steer_core::{
    approximate_span, candidate_configs, CandidateFilterStats, DiscoveryReport, JobOutcome,
    Pipeline, PipelineParams,
};

/// Everything result-bearing in a report with the static-analyzer counters
/// and per-job candidate tallies zeroed, so gate-on and gate-off runs can
/// be compared bit-exactly. The bounds gate legitimately changes only how
/// many candidates were *counted* (pruned ones never reach the pool), not
/// anything that is executed, selected, or costed.
fn bounds_insensitive_fingerprint(r: &DiscoveryReport) -> String {
    let strip = |mut v: CandidateFilterStats| {
        v.static_invalid = 0;
        v.static_redundant = 0;
        v.static_bounded = 0;
        v
    };
    let vetting = strip(r.vetting);
    let outcomes: Vec<JobOutcome> = r
        .outcomes
        .iter()
        .map(|o| {
            let mut o = o.clone();
            o.vetting = strip(o.vetting);
            o.n_candidates = 0;
            o.n_duplicate_plans = 0;
            o
        })
        .collect();
    format!(
        "{:?}|{}|{}|{}|{}|{:?}",
        outcomes, r.not_selected, r.out_of_window, r.failed_defaults, r.failed_candidates, vetting,
    )
}

fn main() {
    let scale = scale_arg();
    banner(
        "Bounds",
        "abstract-interpretation cost intervals: soundness sweep, bounds-gated discovery, branch-and-bound pruning (Workload A, day 0)",
    );
    let w = workload(WorkloadTag::A, scale);
    let jobs = w.day(0);
    let sampled: Vec<_> = jobs.iter().take(40).collect();
    let m = pipeline_params(scale).m_candidates.min(200);
    println!(
        "{} jobs in the day; soundness-sweeping {} jobs x up to {} candidates",
        jobs.len(),
        sampled.len(),
        m
    );

    // ── 1+2: interval soundness and the estimator audit ─────────────────
    let mut rng = StdRng::seed_from_u64(0xb04d);
    let mut compiles_checked = 0usize;
    let mut lo_escapes = 0usize;
    let mut hi_checked = 0usize;
    let mut hi_escapes = 0usize;
    let mut audit_violations = 0usize;
    for job in &sampled {
        let obs = job.catalog.observe();
        audit_violations += audit_estimates(&job.plan, &obs).len();
        let bounds = PlanBounds::analyze(&job.plan, &obs);
        let span = approximate_span(&job.plan, &obs);
        let mut configs = candidate_configs(&span, m, &mut rng);
        configs.push(RuleConfig::default_config());
        for config in &configs {
            let Ok(c) = compile_job(job, config) else {
                continue;
            };
            compiles_checked += 1;
            let ec = effective_config(job, config);
            let lo = bounds.cost_lo(ec.enabled());
            if lo > c.est_cost {
                eprintln!(
                    "SOUNDNESS ESCAPE: cost_lo {lo} > compiled cost {} (job {})",
                    c.est_cost, job.id.0
                );
                lo_escapes += 1;
            }
            if let Some(hi) = bounds.cost_hi(ec.enabled()) {
                hi_checked += 1;
                if c.est_cost > hi {
                    eprintln!(
                        "SOUNDNESS ESCAPE: compiled cost {} > cost_hi {hi} (job {})",
                        c.est_cost, job.id.0
                    );
                    hi_escapes += 1;
                }
            }
        }
    }
    println!(
        "soundness: {compiles_checked} compiled costs inside their lower bound ({lo_escapes} escapes); \
         {hi_checked} upper bounds claimed ({hi_escapes} escapes); estimator audit: {audit_violations} violations"
    );

    // ── 3: bounds-gated discovery vs the ungated baseline ───────────────
    let run = |bounds_gate: bool| {
        let p = Pipeline::new(
            ABTester::new(AB_SEED),
            PipelineParams {
                bounds_gate,
                ..pipeline_params(scale)
            },
        );
        let mut rng = StdRng::seed_from_u64(0xb04d);
        let started = Instant::now();
        let report = p.discover(&jobs, &mut rng);
        (report, started.elapsed().as_secs_f64())
    };
    let (gated, gated_s) = run(true);
    let (ungated, ungated_s) = run(false);
    let identical =
        bounds_insensitive_fingerprint(&gated) == bounds_insensitive_fingerprint(&ungated);
    // Fraction of the ungated candidate pool the gate retired statically.
    let pool: usize = ungated.outcomes.iter().map(|o| o.n_candidates).sum();
    let bounds_pruned = gated.vetting.static_bounded;
    let pruned_frac = bounds_pruned as f64 / pool.max(1) as f64;
    println!(
        "discovery: gate on {gated_s:.2}s (bounds_pruned {bounds_pruned}, lint static_invalid {}, static_redundant {}), \
         gate off {ungated_s:.2}s ({pool} candidates); retired {:.1}% beyond the lint gate; identical results: {identical}",
        gated.vetting.static_invalid,
        gated.vetting.static_redundant,
        100.0 * pruned_frac,
    );

    // ── payoff: branch-and-bound task reduction with identity ───────────
    let exhaustive = CompileBudget::UNLIMITED;
    let pruned = CompileBudget::UNLIMITED.with_branch_and_bound();
    let mut tasks_exhaustive = 0u64;
    let mut tasks_pruned = 0u64;
    let mut bnb_pairs = 0usize;
    let mut bnb_divergences = 0usize;
    let config = RuleConfig::default_config();
    for job in &sampled {
        let off = compile_job_with_budget(job, &config, &exhaustive);
        let on = compile_job_with_budget(job, &config, &pruned);
        match (off, on) {
            (Ok(a), Ok(b)) => {
                bnb_pairs += 1;
                if format!("{:?}", a.plan) != format!("{:?}", b.plan)
                    || a.est_cost.to_bits() != b.est_cost.to_bits()
                    || a.signature != b.signature
                {
                    eprintln!("B&B DIVERGENCE on job {}", job.id.0);
                    bnb_divergences += 1;
                }
                tasks_exhaustive += a.stats.tasks;
                tasks_pruned += b.stats.tasks;
            }
            (Err(a), Err(b)) if a == b => {}
            _ => {
                eprintln!("B&B changed compilability on job {}", job.id.0);
                bnb_divergences += 1;
            }
        }
    }
    let task_reduction = 1.0 - tasks_pruned as f64 / tasks_exhaustive.max(1) as f64;
    println!(
        "branch-and-bound: {bnb_pairs} compile pairs, {tasks_exhaustive} → {tasks_pruned} memo tasks \
         ({:.1}% fewer), {bnb_divergences} divergences",
        100.0 * task_reduction
    );

    let body = json_object(&[
        ("experiment", "\"bounds\"".into()),
        ("scale", format!("{scale}")),
        ("jobs_sampled", sampled.len().to_string()),
        ("compiles_checked", compiles_checked.to_string()),
        ("cost_lo_escapes", lo_escapes.to_string()),
        ("cost_hi_claimed", hi_checked.to_string()),
        ("cost_hi_escapes", hi_escapes.to_string()),
        ("estimator_audit_violations", audit_violations.to_string()),
        ("identical_discovery_results", identical.to_string()),
        ("candidate_pool", pool.to_string()),
        ("bounds_pruned", bounds_pruned.to_string()),
        ("bounds_pruned_frac", format!("{pruned_frac:.4}")),
        (
            "lint_static_invalid",
            gated.vetting.static_invalid.to_string(),
        ),
        (
            "lint_static_redundant",
            gated.vetting.static_redundant.to_string(),
        ),
        ("discovery_gated_s", format!("{gated_s:.4}")),
        ("discovery_ungated_s", format!("{ungated_s:.4}")),
        ("bnb_pairs", bnb_pairs.to_string()),
        ("bnb_tasks_exhaustive", tasks_exhaustive.to_string()),
        ("bnb_tasks_pruned", tasks_pruned.to_string()),
        ("bnb_task_reduction", format!("{task_reduction:.4}")),
        ("bnb_divergences", bnb_divergences.to_string()),
    ]);
    let path = write_json("BENCH_bounds.json", &body);
    println!("wrote {}", path.display());

    let mut failed = false;
    if lo_escapes > 0 || hi_escapes > 0 {
        eprintln!(
            "FAIL: {} compiled costs escaped their interval (bounds unsound)",
            lo_escapes + hi_escapes
        );
        failed = true;
    }
    if audit_violations > 0 {
        eprintln!("FAIL: {audit_violations} point estimates escaped their intervals");
        failed = true;
    }
    if !identical {
        eprintln!("FAIL: the bounds gate changed discovery results");
        failed = true;
    }
    if bounds_pruned == 0 {
        eprintln!("FAIL: the bounds gate never retired a candidate");
        failed = true;
    }
    if bnb_divergences > 0 {
        eprintln!("FAIL: branch-and-bound changed a compile result");
        failed = true;
    }
    if tasks_pruned >= tasks_exhaustive {
        eprintln!("FAIL: branch-and-bound never skipped a task");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
