//! Shared experiment plumbing: compiled-and-executed days, parallel
//! fan-out (re-exported from `steer_core::par`, its home since the
//! pipeline itself went parallel), and the default experiment-scale
//! pipeline parameters.

use std::sync::Arc;

use scope_exec::{ABTester, RunMetrics};
use scope_ir::Job;
use scope_optimizer::{
    compile_job, effective_config, plan_catalog_fingerprint, CompileCache, CompiledPlan, RuleConfig,
};
use scope_workload::{Workload, WorkloadProfile, WorkloadTag};
use steer_core::{Pipeline, PipelineParams};

pub use steer_core::par::{available_threads, run_chunked, run_chunked_on};

/// A job together with its default compilation and A/B execution. The
/// compilation is shared (`Arc`) so cache hits across recurring days don't
/// duplicate plans.
pub struct CompiledJob {
    pub job: Job,
    pub compiled: Arc<CompiledPlan>,
    pub metrics: RunMetrics,
}

/// The seed used by every experiment's A/B harness.
pub const AB_SEED: u64 = 2021;

/// Generate a workload for a tag at the given scale.
pub fn workload(tag: WorkloadTag, scale: f64) -> Workload {
    Workload::generate(WorkloadProfile::for_tag(tag, scale))
}

/// Compile and execute one day under the default configuration, in
/// parallel across available cores. Jobs in a chunk whose worker panics
/// are logged and skipped rather than aborting the experiment.
pub fn compile_day(w: &Workload, day: u32, ab: &ABTester) -> Vec<CompiledJob> {
    compile_day_cached(w, day, ab, None)
}

/// [`compile_day`] consulting an optional shared [`CompileCache`]:
/// recurring jobs across days (and re-runs of the same day) become cache
/// hits instead of fresh compiles. Results are bit-identical either way.
pub fn compile_day_cached(
    w: &Workload,
    day: u32,
    ab: &ABTester,
    cache: Option<&CompileCache>,
) -> Vec<CompiledJob> {
    let jobs = w.day(day);
    let default = RuleConfig::default_config();
    run_chunked(
        &jobs,
        |job| {
            let compiled = match cache {
                Some(cache) => {
                    let obs = job.catalog.observe();
                    let config = effective_config(job, &default);
                    let fp = plan_catalog_fingerprint(&job.plan, &obs);
                    cache
                        .get_or_compile(fp, &config, || compile_job(job, &default))
                        .ok()?
                }
                None => Arc::new(compile_job(job, &default).ok()?),
            };
            let metrics = ab.run(job, &compiled.plan, 0);
            Some(CompiledJob {
                job: job.clone(),
                compiled,
                metrics,
            })
        },
        |job| format!("job {}", job.id.0),
    )
}

/// Pipeline parameters scaled for experiment runs: candidate counts shrink
/// with the workload scale so quick runs stay quick, while `--scale=1.0`
/// uses the paper's M = 1000.
pub fn pipeline_params(scale: f64) -> PipelineParams {
    let m = ((1000.0 * scale.max(0.05)).round() as usize).clamp(100, 1000);
    PipelineParams {
        m_candidates: m,
        execute_top_k: 10,
        sample_frac: 0.5,
        ..PipelineParams::default()
    }
}

/// The standard pipeline for experiments.
pub fn pipeline(scale: f64) -> Pipeline {
    Pipeline::new(ABTester::new(AB_SEED), pipeline_params(scale))
}

/// Run the full discovery pipeline (§5–§6) over day 0 of a workload.
/// Deterministic for a given (tag, scale).
pub fn run_discovery(tag: WorkloadTag, scale: f64) -> steer_core::DiscoveryReport {
    use rand::SeedableRng;
    let w = workload(tag, scale);
    let jobs = w.day(0);
    let p = pipeline(scale);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED ^ tag as u64);
    p.discover(&jobs, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_day_is_deterministic_and_parallel_safe() {
        let w = workload(WorkloadTag::B, 0.2);
        let ab = ABTester::new(AB_SEED);
        let a = compile_day(&w, 0, &ab);
        let b = compile_day(&w, 0, &ab);
        assert_eq!(a.len(), b.len());
        let sum_a: f64 = a.iter().map(|c| c.metrics.runtime).sum();
        let sum_b: f64 = b.iter().map(|c| c.metrics.runtime).sum();
        assert!((sum_a - sum_b).abs() < 1e-9);
    }

    #[test]
    fn params_scale_with_workload_scale() {
        assert_eq!(pipeline_params(1.0).m_candidates, 1000);
        assert_eq!(pipeline_params(0.1).m_candidates, 100);
    }

    #[test]
    fn run_chunked_survives_a_panicking_worker() {
        // Many items → many chunks; a panic on one item loses only its own
        // chunk, never the whole run.
        let items: Vec<u32> = (0..64).collect();
        let out = run_chunked_on(
            &items,
            8,
            |&i| {
                if i == 13 {
                    panic!("poisoned item");
                }
                Some(i * 2)
            },
            |&i| format!("item {i}"),
        );
        assert!(!out.is_empty(), "surviving chunks must be kept");
        assert!(out.len() < items.len(), "the poisoned chunk is dropped");
        assert!(out.iter().all(|&v| v % 2 == 0));
        assert!(
            !out.contains(&26),
            "results from the poisoned chunk are gone"
        );
    }

    #[test]
    fn run_chunked_handles_empty_and_filtered_input() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_chunked(&empty, |&i| Some(i), ToString::to_string).is_empty());
        let items = [1u32, 2, 3, 4];
        let odd_only = run_chunked(&items, |&i| (i % 2 == 1).then_some(i), ToString::to_string);
        assert_eq!(odd_only, vec![1, 3]);
    }
}
