//! Shared experiment plumbing: compiled-and-executed days, parallel
//! fan-out, and the default experiment-scale pipeline parameters.

use crossbeam::thread;
use scope_exec::{ABTester, RunMetrics};
use scope_ir::Job;
use scope_optimizer::{compile_job, CompiledPlan, RuleConfig};
use scope_workload::{Workload, WorkloadProfile, WorkloadTag};
use steer_core::{Pipeline, PipelineParams};

/// A job together with its default compilation and A/B execution.
pub struct CompiledJob {
    pub job: Job,
    pub compiled: CompiledPlan,
    pub metrics: RunMetrics,
}

/// The seed used by every experiment's A/B harness.
pub const AB_SEED: u64 = 2021;

/// Generate a workload for a tag at the given scale.
pub fn workload(tag: WorkloadTag, scale: f64) -> Workload {
    Workload::generate(WorkloadProfile::for_tag(tag, scale))
}

/// Compile and execute one day under the default configuration, in
/// parallel across available cores.
pub fn compile_day(w: &Workload, day: u32, ab: &ABTester) -> Vec<CompiledJob> {
    let jobs = w.day(day);
    let default = RuleConfig::default_config();
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let chunks: Vec<&[Job]> = jobs.chunks(jobs.len().div_ceil(n_threads).max(1)).collect();
    let mut out: Vec<CompiledJob> = Vec::with_capacity(jobs.len());
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let default = &default;
                s.spawn(move |_| {
                    chunk
                        .iter()
                        .filter_map(|job| {
                            let compiled = compile_job(job, default).ok()?;
                            let metrics = ab.run(job, &compiled.plan, 0);
                            Some(CompiledJob {
                                job: job.clone(),
                                compiled,
                                metrics,
                            })
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
    })
    .expect("scoped threads");
    out
}

/// Pipeline parameters scaled for experiment runs: candidate counts shrink
/// with the workload scale so quick runs stay quick, while `--scale=1.0`
/// uses the paper's M = 1000.
pub fn pipeline_params(scale: f64) -> PipelineParams {
    let m = ((1000.0 * scale.max(0.05)).round() as usize).clamp(100, 1000);
    PipelineParams {
        m_candidates: m,
        execute_top_k: 10,
        sample_frac: 0.5,
        ..PipelineParams::default()
    }
}

/// The standard pipeline for experiments.
pub fn pipeline(scale: f64) -> Pipeline {
    Pipeline::new(ABTester::new(AB_SEED), pipeline_params(scale))
}

/// Run the full discovery pipeline (§5–§6) over day 0 of a workload.
/// Deterministic for a given (tag, scale).
pub fn run_discovery(tag: WorkloadTag, scale: f64) -> steer_core::DiscoveryReport {
    use rand::SeedableRng;
    let w = workload(tag, scale);
    let jobs = w.day(0);
    let p = pipeline(scale);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED ^ tag as u64);
    p.discover(&jobs, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_day_is_deterministic_and_parallel_safe() {
        let w = workload(WorkloadTag::B, 0.2);
        let ab = ABTester::new(AB_SEED);
        let a = compile_day(&w, 0, &ab);
        let b = compile_day(&w, 0, &ab);
        assert_eq!(a.len(), b.len());
        let sum_a: f64 = a.iter().map(|c| c.metrics.runtime).sum();
        let sum_b: f64 = b.iter().map(|c| c.metrics.runtime).sum();
        assert!((sum_a - sum_b).abs() < 1e-9);
    }

    #[test]
    fn params_scale_with_workload_scale() {
        assert_eq!(pipeline_params(1.0).m_candidates, 1000);
        assert_eq!(pipeline_params(0.1).m_candidates, 100);
    }
}
