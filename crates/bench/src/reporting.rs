//! CSV/markdown emission helpers shared by the experiment binaries.

use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SCOPE_STEER_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = fs::create_dir_all(&p);
    p
}

/// Write a CSV file with a header row.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = results_dir().join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Write a JSON document (already serialized) to the results directory.
/// The repo vendors no serde, so callers assemble the JSON text themselves
/// (see `json_kv` for the common flat-object case).
pub fn write_json(name: &str, body: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Render a flat JSON object from key → already-serialized-value pairs.
/// Values are emitted verbatim, so strings must arrive pre-quoted and
/// nested arrays/objects pre-rendered.
pub fn json_object(pairs: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Render a JSON array from already-serialized elements.
pub fn json_array(elems: &[String]) -> String {
    format!("[{}]", elems.join(","))
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Standard experiment banner.
pub fn banner(id: &str, caption: &str) {
    println!("==== {id}: {caption} ====");
}

/// Resolve the workload scale from args/env (default 0.1 for quick runs;
/// the full-scale experiments in EXPERIMENTS.md use 1.0).
pub fn scale_arg() -> f64 {
    std::env::args()
        .skip(1)
        .find_map(|a| a.strip_prefix("--scale=").and_then(|v| v.parse().ok()))
        .or_else(|| {
            std::env::var("SCOPE_STEER_SCALE")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0.1)
}

/// Write `path` if absent helper for goldens (used by tests).
pub fn path_of(name: &str) -> PathBuf {
    results_dir().join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }
}
