//! Quickstart: build a job by hand, compile it under the default rule
//! configuration, inspect its rule signature, steer the optimizer by
//! disabling a rule, and compare simulated executions.
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::ABTester;
use scope_steer::ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_steer::ir::ids::{DomainId, JobId};
use scope_steer::ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_steer::ir::{InputRef, Job, PlanGraph, TrueCatalog};
use scope_steer::optimizer::{compile_job, RuleCatalog, RuleConfig};

fn main() {
    // ── 1. Describe the world: two inputs, one skewed join key. ──────────
    let mut catalog = TrueCatalog::new();
    let clicks_key = catalog.add_column(50_000, 0.35, DomainId(0)); // skewed!
    let clicks_attr = catalog.add_column(200, 0.0, DomainId(1));
    let users_key = catalog.add_column(50_000, 0.0, DomainId(0));
    let users_attr = catalog.add_column(1_000, 0.0, DomainId(2));
    let clicks = catalog.add_table(800_000_000, 120, 0xC11C5, vec![clicks_key, clicks_attr]);
    let users = catalog.add_table(5_000_000, 80, 0x05E25, vec![users_key, users_attr]);
    // The filter's *true* selectivity is 0.2 — fifty times what the
    // optimizer's shape heuristic will estimate for an equality predicate.
    let campaign_pred = catalog.add_pred(0.2, None);

    // ── 2. Write the script: filter clicks, join users, aggregate. ───────
    let mut plan = PlanGraph::new();
    let scan_clicks = plan.add_unchecked(LogicalOp::Get { table: clicks }, vec![]);
    let filtered = plan.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom {
                col: clicks_attr,
                op: CmpOp::Eq,
                literal: Literal::Int(42),
                pred: campaign_pred,
            }),
        },
        vec![scan_clicks],
    );
    let scan_users = plan.add_unchecked(LogicalOp::Get { table: users }, vec![]);
    let joined = plan.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(clicks_key, users_key)],
        },
        vec![filtered, scan_users],
    );
    let agg = plan.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![users_attr],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![joined],
    );
    let output = plan.add_unchecked(LogicalOp::Output { stream: 0xFEED }, vec![agg]);
    plan.set_root(output);

    let job = Job::new(
        JobId(1),
        plan,
        catalog,
        vec![
            InputRef {
                name_hash: 0xC11C5,
                bytes: 800_000_000 * 120,
            },
            InputRef {
                name_hash: 0x05E25,
                bytes: 50_000 * 80,
            },
        ],
        0,
        50,
    );

    // ── 3. Compile with the default configuration. ───────────────────────
    let default = compile_job(&job, &RuleConfig::default_config()).expect("compiles");
    let rules = RuleCatalog::global();
    println!("default plan (estimated cost {:.1}):", default.est_cost);
    println!("{}", default.plan.render());
    println!("rule signature ({} rules):", default.signature.len());
    for id in default.signature.on_rules() {
        println!("  {} [{:?}]", rules.rule(id).name, rules.rule(id).category);
    }

    // ── 4. Execute on the simulated cluster (A/B harness, 50 tokens). ────
    let ab = ABTester::new(7);
    let m_default = ab.run(&job, &default.plan, 0);
    println!(
        "\ndefault execution: runtime {:.0}s, cpu {:.0}s, io {:.0}s",
        m_default.runtime, m_default.cpu_time, m_default.io_time
    );

    // ── 5. Steer: a miniature version of the paper's pipeline — compute
    //       the job span (Algorithm 1), sample candidate configurations
    //       from it (§5.2), recompile, and execute the candidates.
    let obs = job.catalog.observe();
    let span = scope_steer::steer::approximate_span(&job.plan, &obs);
    println!(
        "
job span: {} rules can affect this plan (found in {} compiles)",
        span.len(),
        span.iterations
    );
    let mut rng = StdRng::seed_from_u64(9);
    let candidates = scope_steer::steer::candidate_configs(&span, 60, &mut rng);
    let mut best: Option<(RuleConfig, f64)> = None;
    let mut compile_failures = 0;
    for config in candidates {
        let Ok(candidate) = compile_job(&job, &config) else {
            compile_failures += 1; // some configurations do not compile — expected
            continue;
        };
        let m = ab.run(&job, &candidate.plan, 0);
        if best.as_ref().is_none_or(|(_, rt)| m.runtime < *rt) {
            best = Some((config, m.runtime));
        }
    }
    println!("({compile_failures} sampled configurations failed to compile)");
    let (best_config, best_runtime) = best.expect("some candidate compiled");
    let steered = compile_job(&job, &best_config).expect("best config compiles");
    println!("\nbest of 60 sampled configurations:");
    println!("{}", steered.plan.render());
    println!(
        "steered execution: runtime {:.0}s ({:+.1}% vs default)",
        best_runtime,
        100.0 * (best_runtime - m_default.runtime) / m_default.runtime
    );
    let diff = scope_steer::optimizer::RuleDiff::between(&default.signature, &steered.signature);
    println!("RuleDiff: {}", diff.render());
}
