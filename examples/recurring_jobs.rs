//! Recurring jobs and rule-signature job groups: generate a week of a
//! workload, show templates recurring with drifting inputs, group jobs by
//! their default rule signature (Definition 6.2), and extrapolate a
//! discovered configuration to unseen same-group jobs (§6.4 / Figure 1).
//!
//! Run: `cargo run --release --example recurring_jobs`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::ABTester;
use scope_steer::ir::Job;
use scope_steer::steer::{extrapolate, group_jobs, winning_configs, Pipeline, PipelineParams};
use scope_steer::workload::{Workload, WorkloadProfile};

fn main() {
    let workload = Workload::generate(WorkloadProfile::workload_b(0.6));
    let days: Vec<Vec<Job>> = (0..7).map(|d| workload.day(d)).collect();

    // ── Recurrence: the same template across days, different inputs. ─────
    let mut by_template: HashMap<_, Vec<&Job>> = HashMap::new();
    for job in days.iter().flatten() {
        by_template.entry(job.template).or_default().push(job);
    }
    let (template, instances) = by_template
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("jobs exist");
    println!(
        "most recurrent template {template}: {} instances over 7 days",
        instances.len()
    );
    for job in instances.iter().take(5) {
        println!(
            "  day {}: job {} reads {:.1} GB (literals refreshed, same template hash)",
            job.day,
            job.id,
            job.total_input_bytes() as f64 / 1e9
        );
    }

    // ── Job groups: cluster day 0 by default rule signature. ─────────────
    let groups = group_jobs(&days[0]);
    let mut sizes: Vec<usize> = groups.values().map(Vec::len).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\nday 0: {} jobs fall into {} signature groups; largest groups: {:?}",
        days[0].len(),
        groups.len(),
        &sizes[..sizes.len().min(5)]
    );

    // ── Discover on day 0, extrapolate over the rest of the week. ────────
    let ab = ABTester::new(2021);
    let pipeline = Pipeline::new(
        ab.clone(),
        PipelineParams {
            m_candidates: 200,
            sample_frac: 1.0,
            min_runtime_s: 120.0,
            ..PipelineParams::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    let report = pipeline.discover(&days[0], &mut rng);
    let winners = winning_configs(&report.outcomes, 10.0);
    println!(
        "\ndiscovered {} winning configurations on day 0",
        winners.len()
    );

    let later_jobs: Vec<&Job> = days[1..].iter().flatten().collect();
    let runs = extrapolate(&winners, &later_jobs, &ab);
    let improved = runs.iter().filter(|r| r.change_pct < 0.0).count();
    println!(
        "extrapolated to {} unseen same-group jobs on days 1–6: {} improved",
        runs.len(),
        improved
    );
    for r in runs.iter().take(8) {
        println!(
            "  day {} job {}: {:.0}s → {:.0}s ({:+.1}%)",
            r.day, r.job_id, r.default_runtime, r.steered_runtime, r.change_pct
        );
    }
}
