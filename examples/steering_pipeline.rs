//! The paper's offline discovery pipeline end to end on one day of a
//! synthetic production workload: job selection, span computation,
//! candidate search, recompilation, A/B execution of the ten cheapest
//! alternatives, and RuleDiff analysis of the winners (§5–§6).
//!
//! Run: `cargo run --release --example steering_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::{ABTester, Metric};
use scope_steer::optimizer::{RuleCatalog, RuleDiff};
use scope_steer::steer::{Pipeline, PipelineParams};
use scope_steer::workload::{Workload, WorkloadProfile};

fn main() {
    // A 1/10-scale Workload A day (~95 jobs).
    let workload = Workload::generate(WorkloadProfile::workload_a(0.1));
    let jobs = workload.day(0);
    println!("generated {} jobs for day 0", jobs.len());

    let pipeline = Pipeline::new(
        ABTester::new(2021),
        PipelineParams {
            m_candidates: 200,
            sample_frac: 1.0,
            ..PipelineParams::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(42);
    let report = pipeline.discover(&jobs, &mut rng);
    println!(
        "selected {} jobs for execution ({} in-window but not selected, {} outside the 5min–1h window)",
        report.outcomes.len(),
        report.not_selected,
        report.out_of_window
    );

    let rules = RuleCatalog::global();
    for outcome in &report.outcomes {
        let change = outcome.best_runtime_change_pct();
        println!(
            "\njob {} (span {} rules, {} candidates, {} cheaper than default, selected by {:?})",
            outcome.job_id,
            outcome.span_size,
            outcome.n_candidates,
            outcome.n_cheaper,
            outcome.reason
        );
        println!(
            "  default: {:.0}s (est cost {:.0}); best alternative: {:+.1}%",
            outcome.default_metrics.runtime, outcome.default_cost, change
        );
        if change < -5.0 {
            let best = outcome.best_by(Metric::Runtime).expect("executed");
            let diff = RuleDiff::between(&outcome.group, &best.signature);
            let names = |set: &scope_steer::optimizer::RuleSet| {
                set.iter()
                    .map(|id| rules.rule(id).name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "  RuleDiff — only in default plan: [{}]",
                names(&diff.only_in_default)
            );
            println!(
                "  RuleDiff — only in best plan:    [{}]",
                names(&diff.only_in_new)
            );
        }
    }

    let summary = scope_steer::steer::best_known_summary(&report.outcomes);
    println!(
        "\nalways choosing the best-known configuration: {:.0}s mean saving ({:+.0}%) over {} jobs",
        -summary.mean_delta_runtime_s, summary.mean_delta_pct, summary.n_jobs
    );
}
