//! Learned configuration choice (§7) end to end for one job group:
//! discover candidate configurations, execute them on every group job over
//! two weeks, train the per-group neural model, and evaluate it on the
//! held-out test split.
//!
//! Run: `cargo run --release --example learned_steering`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::ABTester;
use scope_steer::ir::Job;
use scope_steer::learn::{build_group_dataset, evaluate, train_group, TrainParams};
use scope_steer::steer::{group_of, Pipeline, PipelineParams};
use scope_steer::workload::{Workload, WorkloadProfile};

fn main() {
    let workload = Workload::generate(WorkloadProfile::workload_b(1.0));
    let ab = ABTester::new(2021);

    // Two weeks of jobs, grouped by default rule signature; keep the
    // largest group of non-trivial jobs.
    let days: Vec<Vec<Job>> = (0..14).map(|d| workload.day(d)).collect();
    let mut groups: HashMap<String, Vec<&Job>> = HashMap::new();
    for job in days.iter().flatten() {
        if let Some(g) = group_of(job) {
            if job.total_input_bytes() > 1_000_000_000 {
                groups.entry(g.to_bit_string()).or_default().push(job);
            }
        }
    }
    let mut ranked: Vec<(&String, &Vec<&Job>)> = groups.iter().collect();
    // Total order (size desc, then key) so HashMap iteration order does not
    // leak into the choice of group.
    ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(b.0)));

    // Candidate configurations from one base job (three fastest of the ten
    // cheapest executed alternatives).
    let pipeline = Pipeline::new(
        ab.clone(),
        PipelineParams {
            m_candidates: 300,
            sample_frac: 1.0,
            min_runtime_s: 0.0,
            max_runtime_s: f64::INFINITY,
            ..PipelineParams::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    // Not every base job is selected by the §6.1 heuristics; walk the
    // groups from largest to smallest until one yields an outcome.
    let (jobs, outcome) = ranked
        .iter()
        .filter(|(_, v)| v.len() >= 25)
        .find_map(|(_, group_jobs)| {
            group_jobs.iter().take(6).find_map(|base| {
                let (compiled, metrics) = pipeline.default_run(base)?;
                pipeline
                    .analyze_job(base, &compiled, metrics, &mut rng)
                    .map(|o| (*group_jobs, o))
            })
        })
        .expect("a steerable job group exists");
    println!("job group: {} jobs over two weeks", jobs.len());
    let mut executed = outcome.executed;
    executed.sort_by(|a, b| a.metrics.runtime.partial_cmp(&b.metrics.runtime).unwrap());
    let alt_configs: Vec<_> = executed.into_iter().take(3).map(|c| c.config).collect();
    println!(
        "K = {} configurations (default + {})",
        alt_configs.len() + 1,
        alt_configs.len()
    );

    // Dataset: every configuration executed on every group job.
    let ds = build_group_dataset(jobs, &alt_configs, &ab);
    println!(
        "dataset: {} samples × {} features, {} runtime columns ({} jobs skipped on compile failures)",
        ds.len(),
        ds.feature_dim,
        ds.k(),
        ds.skipped
    );

    // Train the §7.3 model (small hidden layer keeps the example snappy).
    let params = TrainParams {
        hidden: 64,
        ..TrainParams::default()
    };
    let (chooser, split) = train_group(&ds, &params, &mut rng);
    println!(
        "trained: lr {}, validation BCE {:.4} ({} train / {} val / {} test samples)",
        chooser.lr,
        chooser.val_loss,
        split.train.len(),
        split.val.len(),
        split.test.len()
    );

    // Evaluate on the held-out test split (Table 5 statistics).
    let eval = evaluate(&ds, &chooser, &split);
    println!("\n              Best    Default  Learned");
    println!(
        "mean runtime  {:>7.0} {:>8.0} {:>8.0}",
        eval.best.mean, eval.default.mean, eval.learned.mean
    );
    println!(
        "90P runtime   {:>7.0} {:>8.0} {:>8.0}",
        eval.best.p90, eval.default.p90, eval.learned.p90
    );
    println!(
        "99P runtime   {:>7.0} {:>8.0} {:>8.0}",
        eval.best.p99, eval.default.p99, eval.learned.p99
    );
    let improved = eval
        .per_query
        .iter()
        .filter(|q| q.change_s() < -1.0)
        .count();
    let default_picked = eval.per_query.iter().filter(|q| q.chosen == 0).count();
    println!(
        "\nper-query: {improved} improved, {default_picked} kept the default, of {} test queries",
        eval.per_query.len()
    );
}
