//! Cross-crate integration tests: workload generation → compilation →
//! simulated execution → steering pipeline → learning, end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::{ABTester, Metric};
use scope_steer::ir::Job;
use scope_steer::optimizer::{compile_job, RuleCatalog, RuleConfig};
use scope_steer::steer::{
    approximate_span, best_known_summary, extrapolate, winning_configs, Pipeline, PipelineParams,
};
use scope_steer::workload::{Workload, WorkloadProfile, WorkloadTag};

fn small_a() -> Workload {
    Workload::generate(WorkloadProfile::workload_a(0.06))
}

#[test]
fn every_generated_job_compiles_and_executes_under_default() {
    let w = small_a();
    let ab = ABTester::new(1);
    let jobs = w.day(0);
    assert!(!jobs.is_empty());
    for job in &jobs {
        let compiled = compile_job(job, &RuleConfig::default_config())
            .unwrap_or_else(|e| panic!("job {} failed: {e}", job.id));
        assert!(compiled.est_cost > 0.0);
        assert!(compiled.signature.len() >= 4, "too few signature rules");
        let m = ab.run(job, &compiled.plan, 0);
        assert!(m.runtime > 0.0 && m.runtime.is_finite());
        assert!(m.cpu_time > 0.0 && m.io_time >= 0.0);
    }
}

#[test]
fn signatures_are_subsets_of_effective_config() {
    let w = small_a();
    let cat = RuleCatalog::global();
    for job in w.day(0).iter().take(30) {
        let base = RuleConfig::default_config();
        let compiled = compile_job(job, &base).unwrap();
        let effective = scope_steer::optimizer::optimizer::effective_config(job, &base);
        let allowed = effective.enabled().union(cat.required());
        assert!(
            compiled.signature.0.difference(&allowed).is_empty(),
            "job {} signature outside effective config",
            job.id
        );
    }
}

#[test]
fn spans_cover_default_signatures() {
    let w = small_a();
    let cat = RuleCatalog::global();
    for job in w.day(0).iter().take(10) {
        let obs = job.catalog.observe();
        let span = approximate_span(&job.plan, &obs);
        // The span is computed from the all-enabled configuration, which is
        // a superset of the default: every *configurable, hint-free* rule
        // in the default signature that also fires under the full
        // configuration must be in the span.
        let full = RuleConfig::from_enabled(cat.non_required());
        let compiled = scope_steer::optimizer::compile(&job.plan, &obs, &full).unwrap();
        let configurable = compiled.signature.0.difference(cat.required());
        assert!(
            configurable.difference(&span.rules).is_empty(),
            "job {}: span missing full-config signature rules",
            job.id
        );
    }
}

#[test]
fn pipeline_to_extrapolation_round_trip() {
    let w = small_a();
    let ab = ABTester::new(5);
    let pipeline = Pipeline::new(
        ab.clone(),
        PipelineParams {
            m_candidates: 120,
            execute_top_k: 6,
            sample_frac: 1.0,
            ..PipelineParams::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    let day0 = w.day(0);
    let report = pipeline.discover(&day0, &mut rng);
    assert!(!report.outcomes.is_empty(), "pipeline selected nothing");

    // Summary invariants.
    let summary = best_known_summary(&report.outcomes);
    assert!(
        summary.mean_delta_runtime_s <= 0.0,
        "best-known can't be worse"
    );
    assert!(summary.mean_delta_pct <= 0.0);

    // Outcome invariants.
    for o in &report.outcomes {
        assert!(o.executed.len() <= 6);
        assert!(o.n_cheaper <= o.n_candidates);
        assert!(o.best_known_runtime() <= o.default_metrics.runtime);
        if let Some(best) = o.best_by(Metric::Runtime) {
            assert!(best.metrics.runtime <= o.executed[0].metrics.runtime);
        }
    }

    // Extrapolate winners to the next day.
    let winners = winning_configs(&report.outcomes, 5.0);
    if !winners.is_empty() {
        let day1 = w.day(1);
        let refs: Vec<&Job> = day1.iter().collect();
        let runs = extrapolate(&winners, &refs, &ab);
        for r in &runs {
            assert!(r.default_runtime > 0.0);
            assert!(r.steered_runtime > 0.0);
        }
    }
}

#[test]
fn workloads_differ_but_are_individually_deterministic() {
    for tag in WorkloadTag::ALL {
        let p = WorkloadProfile::for_tag(tag, 0.05);
        let a = Workload::generate(p.clone()).day(0);
        let b = Workload::generate(p).day(0);
        assert_eq!(a.len(), b.len(), "{tag:?} nondeterministic");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.plan.plan_hash(), y.plan.plan_hash());
        }
    }
    let a = Workload::generate(WorkloadProfile::workload_a(0.05)).day(0);
    let c = Workload::generate(WorkloadProfile::workload_c(0.05)).day(0);
    let a_hashes: Vec<u64> = a.iter().map(|j| j.plan.plan_hash()).collect();
    let c_hashes: Vec<u64> = c.iter().map(|j| j.plan.plan_hash()).collect();
    assert_ne!(a_hashes, c_hashes);
}

#[test]
fn steering_changes_plans_not_truth() {
    // Two configs produce different plans for the same job; the truth
    // catalog (and therefore the job) is untouched.
    let w = small_a();
    let jobs = w.day(0);
    let cat = RuleCatalog::global();
    let job = jobs
        .iter()
        .find(|j| {
            compile_job(j, &RuleConfig::default_config())
                .map(|c| c.plan.len() > 8)
                .unwrap_or(false)
        })
        .expect("a nontrivial job");
    let before = job.catalog.clone();
    let default = compile_job(job, &RuleConfig::default_config()).unwrap();
    let mut config = RuleConfig::default_config();
    for id in default.signature.on_rules() {
        if !cat.required().contains(id) {
            config.disable(id);
        }
    }
    let _ = compile_job(job, &config); // may or may not compile
    assert_eq!(
        job.catalog, before,
        "compilation must not mutate ground truth"
    );
}
