//! Property-based tests over the stack's core invariants.

use proptest::prelude::*;
use scope_steer::exec::simulate::{makespan, Stage, StageGraph};
use scope_steer::ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_steer::ir::ids::{ColId, DomainId, TableId};
use scope_steer::ir::ops::LogicalOp;
use scope_steer::ir::{PlanGraph, TrueCatalog};
use scope_steer::learn::{normalize_targets, Normalizer};
use scope_steer::optimizer::{RuleConfig, RuleId, RuleSet, NUM_RULES};
use std::collections::HashSet;

fn rule_ids() -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0u16..NUM_RULES as u16, 0..40)
}

proptest! {
    /// RuleSet behaves exactly like a HashSet<u16> model under
    /// insert/remove/union/intersection/difference.
    #[test]
    fn ruleset_matches_hashset_model(a in rule_ids(), b in rule_ids()) {
        let sa: RuleSet = a.iter().map(|&i| RuleId(i)).collect();
        let sb: RuleSet = b.iter().map(|&i| RuleId(i)).collect();
        let ha: HashSet<u16> = a.iter().copied().collect();
        let hb: HashSet<u16> = b.iter().copied().collect();

        let to_model = |s: &RuleSet| -> HashSet<u16> { s.iter().map(|r| r.0).collect() };
        prop_assert_eq!(to_model(&sa), ha.clone());
        prop_assert_eq!(sa.len(), ha.len());
        prop_assert_eq!(
            to_model(&sa.union(&sb)),
            ha.union(&hb).copied().collect::<HashSet<u16>>()
        );
        prop_assert_eq!(
            to_model(&sa.intersection(&sb)),
            ha.intersection(&hb).copied().collect::<HashSet<u16>>()
        );
        prop_assert_eq!(
            to_model(&sa.difference(&sb)),
            ha.difference(&hb).copied().collect::<HashSet<u16>>()
        );
        // Bit-string round trip.
        prop_assert_eq!(RuleSet::from_bit_string(&sa.to_bit_string()), sa);
    }

    /// Disabling any set of rules never disables a required rule, and the
    /// enabled set shrinks monotonically.
    #[test]
    fn rule_config_clamps_required(ids in rule_ids()) {
        let cat = scope_steer::optimizer::RuleCatalog::global();
        let mut config = RuleConfig::default_config();
        let before = config.enabled().len();
        for &i in &ids {
            config.disable(RuleId(i));
        }
        prop_assert!(config.enabled().len() <= before);
        prop_assert!(config
            .enabled()
            .intersection(cat.required())
            .len() == cat.required().len());
    }

    /// Makespan is at least the critical-path lower bound and at most the
    /// serial sum of stage times.
    #[test]
    fn makespan_bounds(
        elapsed in proptest::collection::vec(0.1f64..1000.0, 1..12),
        dops in proptest::collection::vec(1u32..250, 1..12),
        tokens in 1u32..200
    ) {
        let n = elapsed.len().min(dops.len());
        // A linear chain of stages (stage i depends on i-1).
        let stages: Vec<Stage> = (0..n)
            .map(|i| Stage {
                elapsed: elapsed[i],
                dop: dops[i],
                deps: if i == 0 { vec![] } else { vec![i - 1] },
            })
            .collect();
        let graph = StageGraph {
            stages,
            node_stage: vec![],
            root_stage: n - 1,
        };
        let m = makespan(&graph, tokens);
        let serial_upper: f64 = elapsed[..n]
            .iter()
            .zip(&dops[..n])
            .map(|(e, &d)| {
                let waves = (d as f64 / tokens as f64).ceil().max(1.0);
                e * waves + 2.0 + 0.8 * waves
            })
            .sum();
        let lower: f64 = elapsed[..n].iter().sum();
        prop_assert!(m >= lower, "makespan {m} below lower bound {lower}");
        prop_assert!(m <= serial_upper + 1e-6, "makespan {m} above serial {serial_upper}");
        // More tokens never slow the job down.
        prop_assert!(makespan(&graph, tokens + 50) <= m + 1e-9);
    }

    /// True conjunction selectivity is within [min-atom, 1] and never
    /// exceeds any independent product's weakest member.
    #[test]
    fn true_selectivity_bounds(sels in proptest::collection::vec(0.001f64..1.0, 1..6), strength in 0.0f64..1.0) {
        let mut cat = TrueCatalog::new();
        let g = cat.add_corr_group(strength);
        let atoms: Vec<PredAtom> = sels
            .iter()
            .map(|&s| {
                let pred = cat.add_pred(s, Some(g));
                PredAtom { col: ColId(0), op: CmpOp::Eq, literal: Literal::Int(0), pred }
            })
            .collect();
        let combined = cat.true_conj_selectivity(&atoms);
        let min = sels.iter().cloned().fold(1.0f64, f64::min);
        prop_assert!(combined <= min + 1e-12, "combined {combined} > min {min}");
        prop_assert!(combined > 0.0);
    }

    /// Normalizer output always lies in [0, 1]; target normalization puts
    /// the minimum at 0.
    #[test]
    fn encoders_stay_in_unit_interval(rows in proptest::collection::vec(
        proptest::collection::vec(-1e6f64..1e6, 5), 2..20
    )) {
        let norm = Normalizer::fit(&rows);
        for row in &rows {
            for v in norm.transform(row) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        let targets = normalize_targets(&rows[0]);
        let min = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(min.abs() < 1e-12);
    }

    /// Random literal values never change a plan's template hash, and any
    /// structural difference (an extra filter) always does.
    #[test]
    fn template_hash_stability(lit1 in any::<i64>(), lit2 in any::<i64>(), extra_col in 0u32..5) {
        let build = |lit: i64, extra: bool| {
            let mut g = PlanGraph::new();
            let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
            let mut node = g.add_unchecked(
                LogicalOp::Select {
                    predicate: Predicate::atom(PredAtom::unknown(
                        ColId(0),
                        CmpOp::Eq,
                        Literal::Int(lit),
                    )),
                },
                vec![s],
            );
            if extra {
                node = g.add_unchecked(
                    LogicalOp::Select {
                        predicate: Predicate::atom(PredAtom::unknown(
                            ColId(extra_col),
                            CmpOp::Range,
                            Literal::Int(0),
                        )),
                    },
                    vec![node],
                );
            }
            let o = g.add_unchecked(LogicalOp::Output { stream: 9 }, vec![node]);
            g.set_root(o);
            g
        };
        let base1 = build(lit1, false);
        let base2 = build(lit2, false);
        let bigger = build(lit1, true);
        prop_assert_eq!(base1.template_hash(&[1]), base2.template_hash(&[1]));
        prop_assert_ne!(base1.template_hash(&[1]), bigger.template_hash(&[1]));
    }

    /// The hash-share of a partitioning is at least uniform and at most 1.
    #[test]
    fn hash_share_bounds(skew in 0.0f64..1.0, dop in 1u32..300) {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1000, skew, DomainId(0));
        let share = scope_steer::exec::truth::hash_share(&cat, &[col], dop);
        prop_assert!(share >= 1.0 / dop as f64 - 1e-12);
        prop_assert!(share <= 1.0);
    }
}
