//! Collection strategies (`proptest::collection::vec`).

use rand::Rng;

use crate::Strategy;

/// Size specification for [`vec`]: a fixed length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max_exclusive {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
