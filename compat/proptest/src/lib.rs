//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Supports the `proptest!` macro, `prop_assert*`/`prop_assume!`, range and
//! tuple strategies, `any::<T>()`, `collection::vec`, `prop_map`, and
//! `ProptestConfig::with_cases`. Cases are generated from per-test
//! deterministic seeds (a hash of the test name and case index), so runs
//! are reproducible; failing cases are reported with their case index and
//! message but are **not** shrunk. `proptest-regressions` files from the
//! upstream crate are ignored.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};

pub mod collection;

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values (used to build composite inputs).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Full-range strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The result of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Deterministic per-test, per-case RNG.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Drive one property test: run `config.cases` generated cases, skipping
/// rejected ones, and panic on the first failure.
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut ran = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(16);
    while ran < config.cases && attempts < max_attempts {
        let mut rng = case_rng(test_name, attempts);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest '{test_name}' failed at case {} (seed index {}): {msg}",
                ran,
                attempts - 1
            ),
        }
    }
}

/// The `proptest!` macro: each contained function becomes a `#[test]`
/// running [`run_cases`] over its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                stringify!($name),
                $cfg,
                |__rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property test without aborting the whole process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
}

/// `prop_assert!` for inequality, printing the offending value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Skip the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_vec_and_map(
            v in crate::collection::vec((0u8..4, crate::any::<i64>()), 1..10)
                .prop_map(|pairs| pairs.into_iter().map(|(a, _)| a).collect::<Vec<u8>>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&a| a < 4));
        }

        #[test]
        fn assume_rejects_without_failing(a in crate::any::<u64>(), b in crate::any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u16..100, 5..20);
        let a = crate::Strategy::generate(&strat, &mut crate::case_rng("t", 3));
        let b = crate::Strategy::generate(&strat, &mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        crate::run_cases("always_fails", ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
