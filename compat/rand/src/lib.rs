//! Offline stand-in for the subset of `rand 0.8` used by this workspace.
//!
//! The build environment cannot fetch crates.io dependencies, so the
//! workspace vendors a small, fully deterministic implementation of the API
//! surface it actually consumes: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`/`choose`). The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for the
//! simulators and property tests here, though the streams are *not*
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`.
//!
//! Everything in the repository funnels randomness through explicit seeds,
//! so determinism (same seed → same stream) is the property that matters,
//! and this crate guarantees it.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words. Every higher-level method is derived
/// from [`RngCore::next_u64`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (the only constructor the workspace uses is
/// [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full value range via `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniform-samplable from a `start..end` range via `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128;
                // Widening-multiply range reduction (Lemire); bias is
                // < 2^-64 per draw, irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open, `start..end`).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_cover_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
