//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, SampleUniform};

/// Random slice operations (the workspace uses `shuffle` and `choose`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let xs = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
