//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! `cargo bench` still runs every bench target and prints a per-benchmark
//! best-of-N wall-clock time, but there is no warm-up calibration, outlier
//! analysis, or HTML report. The goal is to keep the bench code compiling
//! and producing usable numbers without network access to crates.io.

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility and
/// otherwise ignored by this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The per-benchmark timing driver.
pub struct Bencher {
    best: Option<Duration>,
    rounds: u32,
    iters_per_round: u32,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            best: None,
            rounds: 5,
            iters_per_round: 3,
        }
    }

    fn record(&mut self, total: Duration, iters: u32) {
        let per_iter = total / iters.max(1);
        self.best = Some(match self.best {
            Some(b) if b <= per_iter => b,
            _ => per_iter,
        });
    }

    /// Time a routine: best per-iteration time over a few rounds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            for _ in 0..self.iters_per_round {
                std::hint::black_box(routine());
            }
            self.record(start.elapsed(), self.iters_per_round);
        }
    }

    /// Time a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.rounds {
            let inputs: Vec<I> = (0..self.iters_per_round).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.record(start.elapsed(), self.iters_per_round);
        }
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    match b.best {
        Some(d) => println!("bench {name:<45} {:>12.3?}/iter", d),
        None => println!("bench {name:<45} (no measurement)"),
    }
}

/// A named group of benchmarks (prefixes the benchmark names).
pub struct BenchmarkGroup<'c> {
    prefix: String,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.prefix, name), |b| f(b));
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            _parent: self,
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// The bench-target entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 40, |x| x + 2, BatchSize::SmallInput);
        });
        g.finish();
    }
}
