//! `scope-steer` — command-line interface to the steering stack.
//!
//! ```text
//! scope-steer workload --tag A --scale 0.1 --day 0      # day statistics
//! scope-steer compile  --tag A --job 3                  # plan + signature
//! scope-steer span     --tag A --job 3                  # Algorithm 1
//! scope-steer search   --tag A --job 3 --m 200          # candidate configs
//! scope-steer explain  --tag A --job 3                  # EXPLAIN ANALYZE trace
//! scope-steer pipeline --tag A --scale 0.1              # §6.1 discovery
//! scope-steer hints    --tag A --scale 0.1 --days 3     # discover + revalidate + print hint file
//! scope-steer serve    --tag A --scale 0.1 --days 5 --fault slow_lookups   # online serving daemon
//! ```
//!
//! All subcommands are deterministic for fixed arguments.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_steer::exec::{ABTester, ArrivalCurve, ServeFaultProfile};
use scope_steer::ir::Job;
use scope_steer::optimizer::{compile_job, RuleCatalog, RuleConfig};
use scope_steer::steer::{
    approximate_span, candidate_configs, discover_independent_groups, winning_configs,
    FlightConfig, FlightController, Pipeline, PipelineParams, ServeRequest, ServiceConfig,
    SteeringService,
};
use scope_steer::workload::{Workload, WorkloadProfile, WorkloadTag};

struct Args {
    cmd: String,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut argv = std::env::args().skip(1);
        let cmd = argv.next()?;
        let mut flags = HashMap::new();
        let mut key: Option<String> = None;
        for a in argv {
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else {
                    key = Some(stripped.to_string());
                    flags.insert(stripped.to_string(), "true".to_string());
                }
            } else if let Some(k) = key.take() {
                flags.insert(k, a);
            }
        }
        Some(Args { cmd, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn tag(&self) -> WorkloadTag {
        match self.flags.get("tag").map(String::as_str) {
            Some("B") | Some("b") => WorkloadTag::B,
            Some("C") | Some("c") => WorkloadTag::C,
            _ => WorkloadTag::A,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: scope-steer <workload|compile|span|search|independence|explain|pipeline|hints|serve> \
         [--tag A|B|C] [--scale 0.1] [--day 0] [--job N] [--m 200] [--days 3] \
         [--fault none|slow_lookups|torn_swaps|journal_stalls|burst_overload] [--threads 2]"
    );
    std::process::exit(2)
}

fn load_day(args: &Args) -> (Workload, Vec<Job>) {
    let scale: f64 = args.get("scale", 0.1);
    let day: u32 = args.get("day", 0);
    let w = Workload::generate(WorkloadProfile::for_tag(args.tag(), scale));
    let jobs = w.day(day);
    (w, jobs)
}

fn pick_job<'a>(args: &Args, jobs: &'a [Job]) -> &'a Job {
    let idx: usize = args.get("job", 0);
    jobs.get(idx).unwrap_or_else(|| {
        eprintln!("--job {idx} out of range (day has {} jobs)", jobs.len());
        std::process::exit(2)
    })
}

fn main() {
    let Some(args) = Args::parse() else { usage() };
    let rules = RuleCatalog::global();
    match args.cmd.as_str() {
        "workload" => {
            let (w, jobs) = load_day(&args);
            let templates: std::collections::HashSet<_> = jobs.iter().map(|j| j.template).collect();
            println!(
                "workload {} scale {}: {} jobs, {} templates, {} recurring pool templates",
                w.profile.tag.name(),
                args.get::<f64>("scale", 0.1),
                jobs.len(),
                templates.len(),
                w.templates.len()
            );
            let mut sizes: Vec<usize> = jobs.iter().map(Job::plan_size).collect();
            sizes.sort_unstable();
            println!(
                "plan sizes: min {} / median {} / max {} operators",
                sizes.first().unwrap_or(&0),
                sizes.get(sizes.len() / 2).unwrap_or(&0),
                sizes.last().unwrap_or(&0)
            );
        }
        "compile" => {
            let (_, jobs) = load_day(&args);
            let job = pick_job(&args, &jobs);
            let compiled = compile_job(job, &RuleConfig::default_config()).expect("compiles");
            println!("job {} (template {})", job.id, job.template);
            println!("estimated cost: {:.1}", compiled.est_cost);
            println!("{}", compiled.plan.render());
            println!("rule signature ({} rules):", compiled.signature.len());
            for id in compiled.signature.on_rules() {
                println!(
                    "  {:>3} {} [{:?}]",
                    id,
                    rules.rule(id).name,
                    rules.rule(id).category
                );
            }
        }
        "span" => {
            let (_, jobs) = load_day(&args);
            let job = pick_job(&args, &jobs);
            let obs = job.catalog.observe();
            let span = approximate_span(&job.plan, &obs);
            println!(
                "job {}: span has {} of 219 non-required rules ({} compiles, compile-failure hit: {})",
                job.id,
                span.len(),
                span.iterations,
                span.hit_compile_failure
            );
            for id in span.rules.iter() {
                println!(
                    "  {:>3} {} [{:?}]",
                    id,
                    rules.rule(id).name,
                    rules.rule(id).category
                );
            }
        }
        "search" => {
            let (_, jobs) = load_day(&args);
            let job = pick_job(&args, &jobs);
            let obs = job.catalog.observe();
            let span = approximate_span(&job.plan, &obs);
            let m: usize = args.get("m", 200);
            let mut rng = StdRng::seed_from_u64(args.get("seed", 7u64));
            let configs = candidate_configs(&span, m, &mut rng);
            let default = compile_job(job, &RuleConfig::default_config()).expect("compiles");
            let mut cheaper = 0usize;
            let mut failed = 0usize;
            let mut best: Option<(f64, RuleConfig)> = None;
            for config in &configs {
                match compile_job(job, config) {
                    Ok(c) => {
                        if c.est_cost < default.est_cost {
                            cheaper += 1;
                        }
                        if best.as_ref().is_none_or(|(cost, _)| c.est_cost < *cost) {
                            best = Some((c.est_cost, config.clone()));
                        }
                    }
                    Err(_) => failed += 1,
                }
            }
            println!(
                "job {}: {} candidates, {} cheaper than default (cost {:.1}), {} failed to compile",
                job.id,
                configs.len(),
                cheaper,
                default.est_cost,
                failed
            );
            if let Some((cost, config)) = best {
                let (disabled, enabled) = config.delta_from_default();
                println!("cheapest candidate: cost {:.1}", cost);
                println!(
                    "  disables: {}",
                    disabled
                        .iter()
                        .map(|id| rules.rule(id).name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                if !enabled.is_empty() {
                    println!(
                        "  enables:  {}",
                        enabled
                            .iter()
                            .map(|id| rules.rule(id).name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        "independence" => {
            let (_, jobs) = load_day(&args);
            let job = pick_job(&args, &jobs);
            let obs = job.catalog.observe();
            let span = approximate_span(&job.plan, &obs);
            let groups =
                discover_independent_groups(&job.plan, &obs, &span, args.get("pairs", 400));
            println!(
                "job {}: span {} rules → {} independent groups in {} compiles (search space 2^{:.1} vs 2^{})",
                job.id,
                span.len(),
                groups.groups.len(),
                groups.compiles,
                groups.search_space_log2(),
                span.len()
            );
            for g in &groups.groups {
                let names: Vec<_> = g.iter().map(|id| rules.rule(id).name.clone()).collect();
                println!("  [{}]", names.join(", "));
            }
        }
        "explain" => {
            let (_, jobs) = load_day(&args);
            let job = pick_job(&args, &jobs);
            let compiled = compile_job(job, &RuleConfig::default_config()).expect("compiles");
            let cluster = scope_steer::exec::ClusterConfig::ab_testing();
            let trace = scope_steer::exec::explain(&compiled.plan, &job.catalog, &cluster);
            println!("job {} — default plan execution trace:", job.id);
            print!("{}", trace.render());
            println!("\nworst cardinality estimates:");
            for r in trace.worst_estimates(3) {
                println!(
                    "  node {} {}: est {:.0} vs true {:.0} rows (q-error {:.1})",
                    r.node.index(),
                    r.op,
                    r.est_rows,
                    r.true_rows,
                    r.q_error()
                );
            }
            println!("hottest operators:");
            for r in trace.hottest_nodes(3) {
                println!(
                    "  node {} {}: {:.1}s elapsed (share {:.3}, dop {})",
                    r.node.index(),
                    r.op,
                    r.work.elapsed,
                    r.share,
                    r.dop
                );
            }
        }
        "pipeline" => {
            let (_, jobs) = load_day(&args);
            let pipeline = Pipeline::new(
                ABTester::new(args.get("seed", 2021u64)),
                PipelineParams {
                    m_candidates: args.get("m", 200),
                    sample_frac: 1.0,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(args.get("seed", 2021u64));
            let report = pipeline.discover(&jobs, &mut rng);
            println!(
                "selected {} jobs ({} in-window not selected, {} outside 5min-1h window)",
                report.outcomes.len(),
                report.not_selected,
                report.out_of_window
            );
            for o in &report.outcomes {
                println!(
                    "  job {}: default {:.0}s, best alternative {:+.1}% ({} candidates, {} cheaper)",
                    o.job_id,
                    o.default_metrics.runtime,
                    o.best_runtime_change_pct(),
                    o.n_candidates,
                    o.n_cheaper
                );
            }
            let summary = scope_steer::steer::best_known_summary(&report.outcomes);
            println!(
                "best-known: {:+.0}s / {:+.0}% mean over {} jobs",
                summary.mean_delta_runtime_s, summary.mean_delta_pct, summary.n_jobs
            );
        }
        "hints" => {
            let scale: f64 = args.get("scale", 0.1);
            let days: u32 = args.get("days", 3);
            let w = Workload::generate(WorkloadProfile::for_tag(args.tag(), scale));
            let ab = ABTester::new(args.get("seed", 2021u64));
            let pipeline = Pipeline::new(
                ab.clone(),
                PipelineParams {
                    m_candidates: args.get("m", 200),
                    sample_frac: 1.0,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(args.get("seed", 2021u64));
            let report = pipeline.discover(&w.day(0), &mut rng);
            let winners = winning_configs(&report.outcomes, 10.0);
            let mut flights = FlightController::new(FlightConfig::default());
            flights.ingest_deployed(&winners, 0);
            let mut store = flights.store;
            println!("day 0: installed {} hints", store.len());
            for day in 1..days {
                let r = store.revalidate(&w.day(day), &ab, day, 2.0);
                println!(
                    "day {day}: checked {} groups over {} jobs, mean change {:+.1}%, suspended {}",
                    r.groups_checked, r.jobs_executed, r.mean_change_pct, r.groups_suspended
                );
            }
            println!("\n# hint file (signature -> disabled/enabled rule ids)");
            println!("{}", store.to_hint_text());
        }
        "serve" => {
            let scale: f64 = args.get("scale", 0.1);
            let days: u32 = args.get("days", 5);
            let threads: usize = args.get("threads", 2);
            let seed: u64 = args.get("seed", 2021u64);
            let fault_name = args
                .flags
                .get("fault")
                .cloned()
                .unwrap_or_else(|| "none".to_string());
            let Some(fault) = ServeFaultProfile::all()
                .into_iter()
                .find(|p| p.name == fault_name)
            else {
                eprintln!("unknown --fault {fault_name} (see usage)");
                std::process::exit(2)
            };
            let w = Workload::generate(WorkloadProfile::for_tag(args.tag(), scale));
            let ab = ABTester::new(seed);
            let pipeline = Pipeline::new(
                ab,
                PipelineParams {
                    m_candidates: args.get("m", 200),
                    sample_frac: 1.0,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let report = pipeline.discover(&w.day(0), &mut rng);
            let winners = winning_configs(&report.outcomes, 10.0);
            let mut flights = FlightController::new(FlightConfig::default());
            flights.ingest_deployed(&winners, 0);
            flights.advance(0);
            let mut service = SteeringService::new(ServiceConfig {
                // Compressed virtual day so shedding and the mode ladder
                // are visible in a short interactive run.
                tick_us: 50_000,
                breaker_cooldown_us: 120_000,
                max_inflight: 2,
                seed,
                ..ServiceConfig::default()
            });
            let published = service.publish_from(&flights, &fault);
            println!(
                "serving table: {published} hints published; fault profile {}",
                fault.name
            );
            let curve = ArrivalCurve {
                seed,
                day_us: 1_000_000,
            };
            for day in 1..=days {
                let jobs = w.day(day);
                let requests: Vec<ServeRequest> = jobs
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, job)| {
                        let compiled = compile_job(job, &RuleConfig::default_config()).ok()?;
                        Some(ServeRequest {
                            job_id: job.id.0,
                            group_key: compiled.signature.to_bit_string(),
                            arrival_us: curve.arrival_us(day, idx as u64, fault.burst.as_ref()),
                        })
                    })
                    .collect();
                let r = service.serve_day(&requests, &fault, day, threads);
                println!(
                    "day {day}: {:>4} requests — steered {:>3} default {:>3} shed {:>3} expired {:>3} torn {:>2} | p99 {:>5}µs mode {}",
                    r.requests,
                    r.steered,
                    r.defaults,
                    r.shed,
                    r.deadline_expired,
                    r.torn_entries,
                    r.p99_latency_us,
                    r.final_mode.name()
                );
                service.publish_from(&flights, &fault);
            }
            println!(
                "breaker: {} trips, {} half-opens; {} mode transitions over {} days",
                service.breaker.trips,
                service.breaker.half_opens,
                service.mode_transitions(),
                days
            );
        }
        _ => usage(),
    }
}
