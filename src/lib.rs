//! # scope-steer
//!
//! Facade crate re-exporting the whole stack of the SIGMOD 2021 paper
//! reproduction *"Steering Query Optimizers: A Practical Take on Big Data
//! Workloads"*:
//!
//! * [`ir`] — plan IR, jobs, the true/observable catalog split,
//! * [`optimizer`] — the Cascades-style optimizer with 256 steerable rules,
//! * [`exec`] — the distributed execution simulator and A/B harness,
//! * [`workload`] — production-shaped workload generators (A, B, C),
//! * [`steer`] — job spans, configuration search, the discovery pipeline,
//!   RuleDiff and rule-signature job groups,
//! * [`learn`] — featurization and the learned configuration chooser.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use scope_exec as exec;
pub use scope_ir as ir;
pub use scope_optimizer as optimizer;
pub use scope_workload as workload;
pub use steer_core as steer;
pub use steer_learn as learn;
